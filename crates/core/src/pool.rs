//! Persistent worker pool with hot-team reuse ("hot teams").
//!
//! Under per-region spawning, every `parallel` directive pays OS thread
//! creation and teardown — hundreds of microseconds that put a hard floor
//! under region entry and cap fine-grained scaling (the paper's §IV overhead
//! story). libgomp and LLVM's OpenMP runtime instead keep the previous
//! region's workers parked between regions and re-bind them to the next
//! region's fresh team state ("hot teams"). This module is that pool:
//!
//! * `dispatch` hands one job per worker to idle pooled threads, spawning
//!   new ones only when the idle list runs dry — the `omp4rs.pool.reuse` /
//!   `omp4rs.pool.spawn` counters tell the two apart;
//! * between regions each worker waits at its own *dock* eventcount (no
//!   tick-polling). Dispatch fills a worker's mailbox and then wakes that
//!   worker alone — never the pool. The docks are deliberately *not*
//!   shared: with one pool-wide eventcount, a 4-thread region dispatched
//!   while 31 workers from an earlier 32-thread region sit docked would
//!   wake all 31, and under an active wait policy each un-chosen worker
//!   burns its full spin budget before re-parking — measured at ~8x the
//!   region-entry cost on this host. Per-worker docks make dispatch wake
//!   exactly the gang. While the dock spin budget
//!   (`OMP_WAIT_POLICY`/`OMP4RS_SPIN`) lasts, a worker catches the next
//!   region's mail during its spin phase and the wake hits the notifier's
//!   zero-waiters fast path — no futex traffic at all;
//! * each dispatching (master) thread keeps *gang affinity*: it remembers
//!   the workers that served its previous region and may post their next
//!   job before they have even finished unwinding out of that region's
//!   final barrier — a worker's region-exit scheduling slot then flows
//!   straight into the next region's work. Posting to a busy worker is only
//!   allowed when that worker is finishing *this master's* previous region
//!   (`Mailbox::owner`); posting to a worker busy with a different
//!   master would chain two independent regions' completions together and
//!   can deadlock (A's barrier waits on a worker held by B whose barrier
//!   waits on a worker held by A);
//! * a panicking job cannot take the pool down: the worker loop catches the
//!   unwind and recycles the thread into the idle list regardless. Region
//!   poisoning — cancelling the team, waking its waiters, capturing the
//!   panic for re-raise — is the job's own responsibility (see
//!   `exec::run_worker`), so a poisoned *region* never implies a poisoned
//!   *pool*.
//!
//! Only top-level, multi-thread, non-serialized regions are dispatched here
//! (`exec::parallel_region` gates on nesting level): nested regions spawn
//! scoped threads as before, which keeps the pool's thread count bounded by
//! the sum of concurrent top-level team sizes rather than growing with
//! nesting depth.
//!
//! Team identity stays per-region: the pool reuses *threads*, never `Team`
//! state. Every region still gets a fresh [`crate::team::Team`] — fresh
//! barrier generations, task queue, cancellation flags — so the established
//! "teams are created fresh per parallel region" invariants (cancellation
//! latching, residual barrier counts) are untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::sync::{self, Notifier};

/// A region job handed to a pooled worker.
///
/// `'static` by the time it reaches the pool: `exec::parallel_region`
/// transmutes its scoped closure after arranging the [`RegionLatch`] wait
/// that keeps every borrow alive until the job has completed.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Worker stacks match the scoped-spawn path: Pure/Hybrid-mode workers run a
/// tree-walking interpreter with deep recursion.
const WORKER_STACK: usize = 16 * 1024 * 1024;

/// Completion latch for one region dispatch: the master parks on it until
/// every pooled worker has finished (and dropped) its job.
///
/// Reference-counted so a worker's final `complete` may touch the latch
/// after the master has already been released — the master's stack frame is
/// not the latch's home.
#[derive(Debug)]
pub(crate) struct RegionLatch {
    remaining: AtomicU64,
    wake: Notifier,
}

impl RegionLatch {
    pub(crate) fn new(count: usize) -> Arc<RegionLatch> {
        Arc::new(RegionLatch {
            remaining: AtomicU64::new(count as u64),
            wake: Notifier::new(),
        })
    }

    /// Worker-side: the final decrement releases the master.
    ///
    /// Saturating: on the normal path the final barrier's releaser has
    /// already zeroed the latch for the whole gang ([`complete_all`]) and
    /// the per-worker decrements that follow must be no-ops. On abnormal
    /// paths (cancellation, poisoning — no barrier release ever happens)
    /// these decrements are what release the master.
    ///
    /// [`complete_all`]: RegionLatch::complete_all
    fn complete(&self) {
        let prior = self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
        if prior == Ok(1) {
            self.wake.notify_all();
        }
    }

    /// Whether the master is still (or will still be) waiting on this
    /// latch. While any job has neither returned nor been covered by
    /// [`complete_all`], the count is positive and the master's stack is
    /// guaranteed alive; `0` means the final barrier released and the
    /// master may already be gone.
    ///
    /// [`complete_all`]: RegionLatch::complete_all
    pub(crate) fn armed(&self) -> bool {
        self.remaining.load(Ordering::Acquire) > 0
    }

    /// Releaser-side: zero the latch on behalf of the whole gang.
    ///
    /// Called by whichever thread releases the region's *final* barrier
    /// (see `Team::barrier` and the `finalists` count). At that instant
    /// every team thread has arrived — its body has returned, its panic (if
    /// any) is recorded, and all region tasks have drained — so no worker
    /// will touch the master's stack again and the master may proceed
    /// without waiting for the workers' post-barrier bookkeeping to be
    /// scheduled.
    pub(crate) fn complete_all(&self) {
        if self.remaining.swap(0, Ordering::AcqRel) != 0 {
            self.wake.notify_all();
        }
    }

    /// Master-side wait: a short yield-only grace period, then the policy's
    /// spin-then-park.
    ///
    /// The yield budget is unconditional (even under a parks-immediately
    /// passive policy) because of *when* this runs: the master has just left
    /// the region's final barrier, so every worker is already runnable and
    /// within a few instructions of completing. Donating one or two quanta
    /// usually lets them finish, and the last completion then hits the
    /// notifier's zero-waiters fast path — the whole join costs no futex
    /// traffic at all.
    pub(crate) fn wait(&self) {
        for _ in 0..8 {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::thread::yield_now();
        }
        sync::wait_until(&self.wake, || self.remaining.load(Ordering::Acquire) == 0);
    }
}

/// One pooled worker's delivery state, all under one lock so a post and the
/// worker's take/dock transitions can never interleave inconsistently.
#[derive(Default)]
struct Mailbox {
    /// The pending job, if any. Only the owning worker ever takes it.
    work: Option<(Job, Arc<RegionLatch>)>,
    /// True only while the worker is actually waiting at the dock (between
    /// finishing one job and taking the next). A docked worker accepts mail
    /// from anyone.
    docked: bool,
    /// Id of the master whose job this worker last accepted. A *busy*
    /// worker accepts mail only from this master — it is guaranteed to dock
    /// as soon as that master's previous region finishes, whereas a worker
    /// busy with a different master's region could hold the post for an
    /// unbounded time (and posting across masters can deadlock their
    /// barriers against each other).
    owner: u64,
}

/// One pooled worker: its mailbox, its private dock eventcount, and its
/// membership bit for the idle list (guarded by the idle-list lock; prevents
/// duplicate idle entries when a gang-affinity post bypasses the list).
#[derive(Default)]
struct WorkerSlot {
    mailbox: Mutex<Mailbox>,
    /// Where this worker (and only this worker) parks between jobs; the
    /// dispatcher bumps it after filling the mailbox.
    dock: Notifier,
    listed: std::sync::atomic::AtomicBool,
}

struct Pool {
    /// Docked workers, LIFO: the most recently docked worker has the
    /// warmest cache and is handed out first. Entries may be stale (the
    /// worker took a gang-affinity post without being popped); `try_post`'s
    /// preconditions make stale entries harmless.
    idle: Mutex<Vec<Arc<WorkerSlot>>>,
    reuse: AtomicU64,
    spawn: AtomicU64,
    next_id: AtomicU64,
    next_master: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
        reuse: AtomicU64::new(0),
        spawn: AtomicU64::new(0),
        next_id: AtomicU64::new(0),
        next_master: AtomicU64::new(0),
    })
}

thread_local! {
    /// This (master) thread's dispatch identity and remembered gang: the
    /// workers that served its previous top-level region, in arrival order.
    static GANG: (u64, std::cell::RefCell<Vec<Arc<WorkerSlot>>>) = (
        pool().next_master.fetch_add(1, Ordering::Relaxed) + 1,
        std::cell::RefCell::new(Vec::new()),
    );
}

/// Post a job to `slot` if the worker can be relied on to take it promptly:
/// it is docked, or it is busy finishing `master`'s own previous region.
/// Returns the job on refusal (mail already pending, or busy with a
/// different master). On success the worker's private dock is bumped — a
/// parked worker wakes, a spinning or still-busy one catches the mail
/// through the notifier's zero-waiters fast path at no futex cost.
fn try_post(slot: &WorkerSlot, job: Job, latch: &Arc<RegionLatch>, master: u64) -> Result<(), Job> {
    {
        let mut mb = slot.mailbox.lock();
        if mb.work.is_some() || !(mb.docked || mb.owner == master) {
            return Err(job);
        }
        mb.work = Some((job, Arc::clone(latch)));
        mb.owner = master;
    }
    slot.dock.notify_all();
    Ok(())
}

/// Dispatch one job per worker and return the latch that releases when all
/// of them have completed.
///
/// # Aborts
///
/// Aborts the process if the OS refuses to create a needed worker thread:
/// at that point some jobs are already running against borrows the caller
/// must outlive, so unwinding out of a half-dispatched region would be
/// unsound. (The scoped-spawn path historically treated spawn failure as
/// fatal too, via its `expect`.)
pub(crate) fn dispatch(jobs: Vec<Job>, latch: &Arc<RegionLatch>) {
    let p = pool();
    let mut pending = jobs;
    pending.reverse();
    let mut assigned: Vec<Arc<WorkerSlot>> = Vec::with_capacity(pending.len());
    let (master, gang) = GANG.with(|(id, g)| (*id, g.borrow().clone()));
    // 1. Gang affinity: post to this master's previous workers first — they
    //    are either docked already or a few instructions from docking, and
    //    their caches are warm with this master's data.
    for slot in gang {
        let Some(job) = pending.pop() else { break };
        match try_post(&slot, job, latch, master) {
            Ok(()) => assigned.push(slot),
            Err(job) => pending.push(job),
        }
    }
    // 2. The idle list. Popped entries can be stale (busy workers with a
    //    live gang-affinity post); `try_post` refuses those and they are
    //    simply dropped — a busy worker re-lists itself when it next docks.
    while !pending.is_empty() {
        let slot = {
            let mut idle = p.idle.lock();
            match idle.pop() {
                Some(s) => {
                    s.listed.store(false, Ordering::Relaxed);
                    s
                }
                None => break,
            }
        };
        if assigned.iter().any(|s| Arc::ptr_eq(s, &slot)) {
            continue;
        }
        let job = pending.pop().expect("loop guard: pending non-empty");
        match try_post(&slot, job, latch, master) {
            Ok(()) => assigned.push(slot),
            Err(job) => pending.push(job),
        }
    }
    p.reuse.fetch_add(assigned.len() as u64, Ordering::Relaxed);
    // 3. Spawn fresh workers for whatever is left.
    while let Some(job) = pending.pop() {
        p.spawn.fetch_add(1, Ordering::Relaxed);
        assigned.push(spawn_worker(job, latch, master));
    }
    GANG.with(|(_, g)| *g.borrow_mut() = assigned);
}

fn spawn_worker(job: Job, latch: &Arc<RegionLatch>, master: u64) -> Arc<WorkerSlot> {
    let p = pool();
    let id = p.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = Arc::new(WorkerSlot::default());
    {
        let mut mb = slot.mailbox.lock();
        mb.work = Some((job, Arc::clone(latch)));
        mb.owner = master;
    }
    let worker_slot = Arc::clone(&slot);
    let spawned = std::thread::Builder::new()
        .name(format!("omp4rs-pool-{id}"))
        .stack_size(WORKER_STACK)
        .spawn(move || worker_loop(worker_slot));
    if let Err(e) = spawned {
        eprintln!("omp4rs: failed to spawn pool worker: {e}");
        std::process::abort();
    }
    slot
}

fn worker_loop(slot: Arc<WorkerSlot>) {
    let p = pool();
    loop {
        let (job, latch) = wait_for_mail(p, &slot);
        // A panicking job must not take the worker down: region poisoning
        // and panic capture happen inside the job (exec::run_worker and its
        // dispatch wrapper); the pool recycles the thread no matter what.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        // On the normal path the region's final-barrier releaser has
        // already zeroed this latch (`complete_all`); this decrement is the
        // release only on cancelled/poisoned paths.
        latch.complete();
    }
}

/// The dock: take pending mail immediately (gang-affinity fast path — the
/// post may have arrived while this worker was still finishing the previous
/// region), otherwise mark the slot docked, list it idle, and spin-then-park
/// on this worker's private dock eventcount.
fn wait_for_mail(p: &'static Pool, slot: &Arc<WorkerSlot>) -> (Job, Arc<RegionLatch>) {
    {
        let mut mb = slot.mailbox.lock();
        if let Some(work) = mb.work.take() {
            return work;
        }
        mb.docked = true;
    }
    {
        let mut idle = p.idle.lock();
        if !slot.listed.swap(true, Ordering::Relaxed) {
            idle.push(Arc::clone(slot));
        }
    }
    // Epoch before the mailbox check, so a post racing with the check falls
    // through the park. The spin budget lets a worker catch an immediately
    // following region with no futex traffic; only this worker's own posts
    // bump this dock, so a wake always means mail (no herd re-parks).
    let mut spins = sync::spin_iters();
    loop {
        let epoch = slot.dock.epoch();
        {
            let mut mb = slot.mailbox.lock();
            if let Some(work) = mb.work.take() {
                mb.docked = false;
                return work;
            }
        }
        if spins > 0 {
            spins -= 1;
            sync::spin_hint(spins);
            continue;
        }
        slot.dock.park(epoch);
    }
}

/// A snapshot of the pool's counters, as published to the profiler under
/// `omp4rs.pool.*`.
///
/// `park`/`spin_exit` are runtime-wide wait statistics (every eventcount
/// park and every wait satisfied within its spin budget — barriers, events,
/// task waits, and the pool's own mailbox parks), reported here because the
/// pool is where the wait policy's effect concentrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Dispatches served by re-binding an already-parked worker.
    pub reuse: u64,
    /// Dispatches that had to create a new OS thread.
    pub spawn: u64,
    /// Untimed parks performed by runtime waits.
    pub park: u64,
    /// Waits satisfied during their bounded spin phase.
    pub spin_exit: u64,
}

/// Read the current [`PoolStats`].
pub fn stats() -> PoolStats {
    let p = pool();
    PoolStats {
        reuse: p.reuse.load(Ordering::Relaxed),
        spawn: p.spawn.load(Ordering::Relaxed),
        park: sync::park_count(),
        spin_exit: sync::spin_exit_count(),
    }
}

/// Number of currently parked (idle) workers. Racy, advisory — for tests
/// and diagnostics.
pub fn idle_workers() -> usize {
    pool().idle.lock().len()
}

/// Publish the pool counters to the [`crate::ompt`] profiler (no-op when it
/// is disabled). `exec` calls this at region exit on the pooled path.
pub(crate) fn publish_counters() {
    if !crate::ompt::enabled() {
        return;
    }
    let s = stats();
    crate::ompt::set_counter("omp4rs.pool.reuse", s.reuse);
    crate::ompt::set_counter("omp4rs.pool.spawn", s.spawn);
    crate::ompt::set_counter("omp4rs.pool.park", s.park);
    crate::ompt::set_counter("omp4rs.pool.spin_exit", s.spin_exit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Dispatch and wait, as `exec::parallel_region` does.
    fn run(jobs: Vec<Job>) {
        let latch = RegionLatch::new(jobs.len());
        dispatch(jobs, &latch);
        latch.wait();
    }

    #[test]
    fn dispatch_runs_jobs_and_latch_releases() {
        let hits = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..3)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        run(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let before = stats();
        run(vec![Box::new(|| panic!("boom")) as Job]);
        // The same (or another pooled) worker must happily run the next job.
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        run(vec![Box::new(move || {
            ok2.fetch_add(1, Ordering::SeqCst);
        }) as Job]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
        let after = stats();
        assert!(
            after.reuse + after.spawn >= before.reuse + before.spawn + 2,
            "both dispatches must be accounted"
        );
    }

    #[test]
    fn back_to_back_dispatches_reuse_workers() {
        // Gang affinity plus the idle list must make a hot re-dispatch find
        // the previous round's workers. Other tests share the global pool
        // and may race workers away between rounds, so allow retries — but
        // systematic failure to ever reuse means the hot path is broken.
        for round in 0.. {
            let warm: Vec<Job> = (0..2).map(|_| Box::new(|| {}) as Job).collect();
            run(warm);
            let before = stats();
            let again: Vec<Job> = (0..2).map(|_| Box::new(|| {}) as Job).collect();
            run(again);
            let after = stats();
            if after.reuse > before.reuse {
                return;
            }
            assert!(round < 20, "no dispatch ever reused a parked worker");
        }
    }
}
