//! Persistent worker pool with hot-team reuse ("hot teams"), sharded for
//! contention-free dispatch.
//!
//! Under per-region spawning, every `parallel` directive pays OS thread
//! creation and teardown — hundreds of microseconds that put a hard floor
//! under region entry and cap fine-grained scaling (the paper's §IV overhead
//! story). libgomp and LLVM's OpenMP runtime instead keep the previous
//! region's workers parked between regions and re-bind them to the next
//! region's fresh team state ("hot teams"). This module is that pool:
//!
//! * `dispatch` hands one job per worker to idle pooled threads, spawning
//!   new ones only when every shard runs dry — the `omp4rs.pool.reuse` /
//!   `omp4rs.pool.spawn` counters tell the two apart;
//! * the idle workers are **sharded** (`OMP4RS_POOL_SHARDS`, default the
//!   host's available parallelism): each shard owns its own idle stack and
//!   its own slice of the admission budget, and each dispatching (master)
//!   thread has a sticky *home shard* derived from its dispatch identity.
//!   The hot path — gang-affinity posts plus home-shard pops — therefore
//!   never touches a lock any other shard's masters contend on. Only when
//!   the home shard runs dry does dispatch go cross-shard: it picks two
//!   random sibling shards (per-master xorshift), steals from the one whose
//!   advisory idle count is larger, then sweeps the rest, and only then
//!   spawns. A stolen worker *migrates*: its home-shard hint is rewritten to
//!   the stealing master's shard, so it re-docks where it was last wanted.
//!   The `omp4rs.pool.shard.{local,steal,spawn,rebalance}` counters expose
//!   the balance; `OMP4RS_POOL_SHARDS=1` restores the single-pool behaviour
//!   exactly (for A/B);
//! * between regions each worker waits at its own *dock* eventcount (no
//!   tick-polling). Dispatch fills a worker's mailbox and then wakes that
//!   worker alone — never the pool. The docks are deliberately *not*
//!   shared: with one pool-wide eventcount, a 4-thread region dispatched
//!   while 31 workers from an earlier 32-thread region sit docked would
//!   wake all 31, and under an active wait policy each un-chosen worker
//!   burns its full spin budget before re-parking — measured at ~8x the
//!   region-entry cost on this host. Per-worker docks make dispatch wake
//!   exactly the gang. While the dock spin budget
//!   (`OMP_WAIT_POLICY`/`OMP4RS_SPIN`) lasts, a worker catches the next
//!   region's mail during its spin phase and the wake hits the notifier's
//!   zero-waiters fast path — no futex traffic at all;
//! * each dispatching (master) thread keeps *gang affinity*: it remembers
//!   the workers that served its previous top-level region and may post
//!   their next job before they have even finished unwinding out of that
//!   region's final barrier — a worker's region-exit scheduling slot then
//!   flows straight into the next region's work. Gang posts go straight to
//!   the worker's mailbox and never consult any shard, so affinity survives
//!   shard migration for free. Posting to a busy worker is only allowed
//!   when that worker is finishing *this master's* previous region
//!   (`Mailbox::owner`); posting to a worker busy with a different
//!   master would chain two independent regions' completions together and
//!   can deadlock (A's barrier waits on a worker held by B whose barrier
//!   waits on a worker held by A);
//! * a panicking job cannot take the pool down: the worker loop catches the
//!   unwind and recycles the thread into the idle list regardless. Region
//!   poisoning — cancelling the team, waking its waiters, capturing the
//!   panic for re-raise — is the job's own responsibility (see
//!   `exec::run_worker`), so a poisoned *region* never implies a poisoned
//!   *pool*, and certainly not a poisoned *shard*.
//!
//! Only top-level, multi-thread, non-serialized regions are dispatched here
//! (`exec::parallel_region` gates on nesting level): nested regions spawn
//! scoped threads as before, which keeps the pool's thread count bounded by
//! the sum of concurrent top-level team sizes rather than growing with
//! nesting depth.
//!
//! Team identity stays per-region: the pool reuses *threads*, never `Team`
//! state. Every region still gets a fresh [`crate::team::Team`] — fresh
//! barrier generations, task queue, cancellation flags — so the established
//! "teams are created fresh per parallel region" invariants (cancellation
//! latching, residual barrier counts) are untouched.
//!
//! Admission control is likewise sharded: each shard carries a signed
//! *sloppy counter* of threads charged to in-flight regions, folded into a
//! global reservoir whenever its magnitude reaches a small batch (each fold
//! is an `omp4rs.pool.shard.rebalance`). `admit` sums reservoir plus shard
//! counters — a couple of relaxed loads, no RMW on any shared line in the
//! common case — so the shed-to-serial decision is a lock-free fast path.
//! With one shard the batch is effectively infinite and the single shard
//! counter is the exact legacy total.
//!
//! Pooled workers and the trace pipeline ([`crate::ompt`]) compose without
//! an ordering dependency: each worker drains its own event ring at region
//! exit (`exec::run_worker` calls `ompt::flush_thread` before the worker
//! docks), so a worker parked between regions — or parked forever because
//! the pool shrank — never sits on buffered events. The pipeline's
//! dedicated flusher thread is *not* a pool worker and is stopped by
//! `ompt::finalize`/`disable` alone; nothing here needs to know it exists.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::sync::{self, Notifier};

/// A region job handed to a pooled worker.
///
/// `'static` by the time it reaches the pool: `exec::parallel_region`
/// transmutes its scoped closure after arranging the [`RegionLatch`] wait
/// that keeps every borrow alive until the job has completed.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Worker stacks match the scoped-spawn path: Pure/Hybrid-mode workers run a
/// tree-walking interpreter with deep recursion.
const WORKER_STACK: usize = 16 * 1024 * 1024;

/// Hard ceiling on the shard count (`OMP4RS_POOL_SHARDS` is clamped here):
/// past this, per-shard state outweighs any contention win.
const MAX_SHARDS: usize = 64;

/// Sloppy-counter fold batch: a shard's local in-flight charge is folded
/// into the global reservoir once its magnitude reaches this. Small enough
/// that `admit`'s view lags the truth by at most `shards × (batch − 1)`
/// threads, large enough that back-to-back regions on one master touch only
/// their own shard's line.
const INFLIGHT_FOLD_BATCH: i64 = 8;

/// Completion latch for one region dispatch: the master parks on it until
/// every pooled worker has finished (and dropped) its job.
///
/// Reference-counted so a worker's final `complete` may touch the latch
/// after the master has already been released — the master's stack frame is
/// not the latch's home.
#[derive(Debug)]
pub(crate) struct RegionLatch {
    remaining: AtomicU64,
    wake: Notifier,
}

impl RegionLatch {
    pub(crate) fn new(count: usize) -> Arc<RegionLatch> {
        Arc::new(RegionLatch {
            remaining: AtomicU64::new(count as u64),
            wake: Notifier::new(),
        })
    }

    /// Worker-side: the final decrement releases the master.
    ///
    /// Saturating: on the normal path the final barrier's releaser has
    /// already zeroed the latch for the whole gang ([`complete_all`]) and
    /// the per-worker decrements that follow must be no-ops. On abnormal
    /// paths (cancellation, poisoning — no barrier release ever happens)
    /// these decrements are what release the master.
    ///
    /// [`complete_all`]: RegionLatch::complete_all
    fn complete(&self) {
        let prior = self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
        if prior == Ok(1) {
            self.wake.notify_all();
        }
    }

    /// Whether the master is still (or will still be) waiting on this
    /// latch. While any job has neither returned nor been covered by
    /// [`complete_all`], the count is positive and the master's stack is
    /// guaranteed alive; `0` means the final barrier released and the
    /// master may already be gone.
    ///
    /// [`complete_all`]: RegionLatch::complete_all
    pub(crate) fn armed(&self) -> bool {
        self.remaining.load(Ordering::Acquire) > 0
    }

    /// Releaser-side: zero the latch on behalf of the whole gang.
    ///
    /// Called by whichever thread releases the region's *final* barrier
    /// (see `Team::barrier` and the `finalists` count). At that instant
    /// every team thread has arrived — its body has returned, its panic (if
    /// any) is recorded, and all region tasks have drained — so no worker
    /// will touch the master's stack again and the master may proceed
    /// without waiting for the workers' post-barrier bookkeeping to be
    /// scheduled.
    pub(crate) fn complete_all(&self) {
        if self.remaining.swap(0, Ordering::AcqRel) != 0 {
            self.wake.notify_all();
        }
    }

    /// Master-side wait: a short yield-only grace period, then the policy's
    /// spin-then-park.
    ///
    /// The yield budget is unconditional (even under a parks-immediately
    /// passive policy) because of *when* this runs: the master has just left
    /// the region's final barrier, so every worker is already runnable and
    /// within a few instructions of completing. Donating one or two quanta
    /// usually lets them finish, and the last completion then hits the
    /// notifier's zero-waiters fast path — the whole join costs no futex
    /// traffic at all.
    pub(crate) fn wait(&self) {
        for _ in 0..8 {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::thread::yield_now();
        }
        sync::wait_until(&self.wake, || self.remaining.load(Ordering::Acquire) == 0);
    }
}

/// One pooled worker's delivery state, all under one lock so a post and the
/// worker's take/dock transitions can never interleave inconsistently.
#[derive(Default)]
struct Mailbox {
    /// The pending job, if any. Only the owning worker ever takes it.
    work: Option<(Job, Arc<RegionLatch>)>,
    /// True only while the worker is actually waiting at the dock (between
    /// finishing one job and taking the next). A docked worker accepts mail
    /// from anyone.
    docked: bool,
    /// Id of the master whose job this worker last accepted. A *busy*
    /// worker accepts mail only from this master — it is guaranteed to dock
    /// as soon as that master's previous region finishes, whereas a worker
    /// busy with a different master's region could hold the post for an
    /// unbounded time (and posting across masters can deadlock their
    /// barriers against each other).
    owner: u64,
}

/// One pooled worker: its mailbox, its private dock eventcount, its home
/// shard, and its membership bit for the idle lists.
///
/// `listed` is the cross-shard analogue of the old single-list membership
/// bit: only the worker itself sets it (`false → true`, under the shard
/// lock, when it lists itself) and only a dispatcher clears it (`true →
/// false`, having just popped the entry), so a slot sits in at most one
/// shard's idle vector at a time even while its `shard` hint is being
/// rewritten by a concurrent steal.
///
/// The atomic heartbeat fields (`busy_since`, `region`, `flagged`) are the
/// watchdog's view of this worker: written by the worker itself on job
/// take/finish and on barrier arrivals, read by the watchdog thread.
#[derive(Default)]
struct WorkerSlot {
    mailbox: Mutex<Mailbox>,
    /// Where this worker (and only this worker) parks between jobs; the
    /// dispatcher bumps it after filling the mailbox.
    dock: Notifier,
    listed: std::sync::atomic::AtomicBool,
    /// Home-shard hint: the shard whose idle stack this worker lists itself
    /// on when it next docks. Written at spawn and rewritten by a
    /// successful cross-shard steal (migration); a racy read that lists the
    /// worker on its previous shard is harmless — stealing finds it there.
    shard: AtomicUsize,
    /// Stable worker number (matches the `omp4rs-pool-N` thread name).
    id: AtomicU64,
    /// Heartbeat: nanoseconds since process start at the last observed
    /// progress point (job take or barrier arrival); `0` while idle. The
    /// watchdog flags the worker once `now - busy_since` exceeds the
    /// threshold.
    busy_since: AtomicU64,
    /// Region id of the team the current job serves (`0` between jobs), so
    /// a flagged stall can be traced back to — and poison — the right team.
    region: AtomicU64,
    /// Latched by the watchdog on the first stall observation for the
    /// current job, so one stall yields one snapshot/cancel rather than one
    /// per tick. Cleared when the worker takes its next job or makes
    /// barrier progress.
    flagged: std::sync::atomic::AtomicBool,
}

/// One pool shard: an idle stack only same-shard traffic contends on, an
/// advisory census of it, and this shard's slice of the admission charge.
#[derive(Default)]
struct Shard {
    /// Docked workers homed here, LIFO: the most recently docked worker has
    /// the warmest cache and is handed out first. Entries may be stale (the
    /// worker took a gang-affinity post without being popped); `try_post`'s
    /// preconditions make stale entries harmless.
    idle: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Advisory census of `idle` (entries, including stale ones).
    /// Maintained with relaxed increments/decrements alongside push/pop so
    /// steal victim selection and the watchdog's `idle_workers` sample read
    /// it without touching the lock.
    idle_count: AtomicU64,
    /// This shard's slice of the in-flight admission charge (signed: a
    /// guard may be dropped on a different shard than charged it). Folded
    /// into `Pool::reservoir` when `|value| ≥ INFLIGHT_FOLD_BATCH`.
    inflight: AtomicI64,
}

struct Pool {
    /// The shards; length fixed at first use (see [`pool`]). Indexed by a
    /// master's sticky home shard or a worker slot's `shard` hint.
    shards: Box<[Shard]>,
    /// Sloppy-counter fold threshold: [`INFLIGHT_FOLD_BATCH`] normally,
    /// `i64::MAX` with one shard so the single counter stays exact (legacy
    /// admission behaviour byte-for-byte).
    fold_batch: i64,
    /// Admission charges folded out of shard counters. The invariant is
    /// `reservoir + Σ shards[i].inflight == threads charged to live
    /// guards`; each summand alone may be stale or negative.
    reservoir: AtomicI64,
    /// Every worker ever spawned, for the watchdog's sweep. Pool workers
    /// are never torn down, so this only grows (bounded by peak concurrent
    /// demand).
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    reuse: AtomicU64,
    spawn: AtomicU64,
    next_id: AtomicU64,
    next_master: AtomicU64,
    /// Admission outcomes (see [`admit`]).
    granted: AtomicU64,
    shrunk: AtomicU64,
    shed: AtomicU64,
    /// Shard-path outcomes (see [`ShardStats`]).
    sh_local: AtomicU64,
    sh_steal: AtomicU64,
    sh_rebalance: AtomicU64,
    /// Watchdog outcomes: stalls flagged, teams cancelled in response.
    wd_stalls: AtomicU64,
    wd_cancels: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        // The shard count is frozen at first use: the `OMP4RS_POOL_SHARDS`
        // ICV (or the host's available parallelism) is sampled here, once,
        // and later ICV changes have no effect. Per-master home shards and
        // per-slot shard hints index into this array for the process's
        // lifetime, so resizing it is not on the table.
        let nshards = crate::icv::Icvs::current()
            .pool_shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, MAX_SHARDS);
        let shards: Box<[Shard]> = (0..nshards).map(|_| Shard::default()).collect();
        Pool {
            shards,
            fold_batch: if nshards == 1 {
                i64::MAX
            } else {
                INFLIGHT_FOLD_BATCH
            },
            reservoir: AtomicI64::new(0),
            slots: Mutex::new(Vec::new()),
            reuse: AtomicU64::new(0),
            spawn: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            next_master: AtomicU64::new(0),
            granted: AtomicU64::new(0),
            shrunk: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sh_local: AtomicU64::new(0),
            sh_steal: AtomicU64::new(0),
            sh_rebalance: AtomicU64::new(0),
            wd_stalls: AtomicU64::new(0),
            wd_cancels: AtomicU64::new(0),
        }
    })
}

/// Monotonic nanoseconds since the first call (process-lifetime clock for
/// the heartbeat fields; offset by 1 so a live heartbeat is never `0`).
fn now_ns() -> u64 {
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    let start = START.get_or_init(std::time::Instant::now);
    start.elapsed().as_nanos() as u64 + 1
}

thread_local! {
    /// The pool slot owned by this thread, when it is a pooled worker;
    /// lets the worker (and code running inside its jobs, via
    /// [`note_region`] / [`heartbeat`]) update its own heartbeat without
    /// threading the slot through every call.
    static CURRENT_SLOT: std::cell::RefCell<Option<Arc<WorkerSlot>>> =
        const { std::cell::RefCell::new(None) };
}

/// Record which region this pooled worker is currently serving (no-op on
/// threads that are not pool workers). Called by `exec::run_worker` on
/// region entry.
pub(crate) fn note_region(region: u64) {
    CURRENT_SLOT.with(|slot| {
        if let Some(slot) = slot.borrow().as_ref() {
            slot.region.store(region, Ordering::Release);
        }
    });
}

/// Refresh this worker's heartbeat (no-op off the pool): called at barrier
/// arrivals so "stalled" means *no synchronization progress* for the
/// watchdog threshold, not merely "inside a long region".
pub(crate) fn heartbeat() {
    CURRENT_SLOT.with(|slot| {
        if let Some(slot) = slot.borrow().as_ref() {
            slot.busy_since.store(now_ns(), Ordering::Release);
            slot.flagged.store(false, Ordering::Relaxed);
        }
    });
}

thread_local! {
    /// This (master) thread's dispatch identity and remembered gang: the
    /// workers that served its previous top-level region, in arrival order.
    static GANG: (u64, std::cell::RefCell<Vec<Arc<WorkerSlot>>>) = (
        pool().next_master.fetch_add(1, Ordering::Relaxed) + 1,
        std::cell::RefCell::new(Vec::new()),
    );

    /// Per-master xorshift state for randomized two-choice steal victim
    /// selection. Seeded lazily from the master id so different masters
    /// probe different victims; quality only has to beat "everyone hammers
    /// shard 0".
    static STEAL_RNG: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A master's sticky home shard: a fixed function of its dispatch identity,
/// so consecutive regions from one serving thread stay on one shard (and,
/// with at least as many shards as serving threads, on a shard of its own).
fn home_shard(master: u64, nshards: usize) -> usize {
    ((master - 1) as usize) % nshards
}

/// Next value of this master's steal RNG (xorshift64).
fn steal_rng(master: u64) -> u64 {
    STEAL_RNG.with(|cell| {
        let mut x = cell.get();
        if x == 0 {
            // SplitMix-style seed from the master id; `| 1` keeps the
            // xorshift state nonzero forever.
            x = master.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.set(x);
        x
    })
}

/// Post a job to `slot` if the worker can be relied on to take it promptly:
/// it is docked, or it is busy finishing `master`'s own previous region.
/// Returns the job on refusal (mail already pending, or busy with a
/// different master). On success the worker's private dock is bumped — a
/// parked worker wakes, a spinning or still-busy one catches the mail
/// through the notifier's zero-waiters fast path at no futex cost.
fn try_post(slot: &WorkerSlot, job: Job, latch: &Arc<RegionLatch>, master: u64) -> Result<(), Job> {
    {
        let mut mb = slot.mailbox.lock();
        if mb.work.is_some() || !(mb.docked || mb.owner == master) {
            return Err(job);
        }
        mb.work = Some((job, Arc::clone(latch)));
        mb.owner = master;
    }
    slot.dock.notify_all();
    Ok(())
}

/// Pop the warmest idle worker off one shard (and keep its census honest).
/// Popped entries can be stale — busy workers with a live gang-affinity
/// post; `try_post` refuses those and the caller simply drops them (a busy
/// worker re-lists itself when it next docks).
fn pop_idle(shard: &Shard) -> Option<Arc<WorkerSlot>> {
    let mut idle = shard.idle.lock();
    let slot = idle.pop()?;
    shard.idle_count.fetch_sub(1, Ordering::Relaxed);
    slot.listed.store(false, Ordering::Relaxed);
    Some(slot)
}

/// Dispatch one job per worker and return the latch that releases when all
/// of them have completed.
///
/// Worker acquisition order: gang-affinity posts, then the master's home
/// shard, then cross-shard stealing (randomized two-choice, then a full
/// sweep), then spawning. Everything before the steal step touches only
/// state that other shards' masters never contend on.
///
/// # Aborts
///
/// Aborts the process if the OS still refuses to create a needed worker
/// thread after [`spawn_worker`]'s retries: at that point some jobs are
/// already running against borrows the caller must outlive, so unwinding
/// out of a half-dispatched region would be unsound. (The scoped-spawn
/// path can instead poison the team and unwind, because scoped join
/// guarantees the spawned members exit first.)
pub(crate) fn dispatch(jobs: Vec<Job>, latch: &Arc<RegionLatch>) {
    let p = pool();
    if crate::icv::Icvs::current().watchdog.is_some() {
        ensure_watchdog();
    }
    let mut pending = jobs;
    pending.reverse();
    let mut assigned: Vec<Arc<WorkerSlot>> = Vec::with_capacity(pending.len());
    let (master, gang) = GANG.with(|(id, g)| (*id, g.borrow().clone()));
    let nshards = p.shards.len();
    let home = home_shard(master, nshards);
    let mut local = 0u64;
    let mut stolen = 0u64;
    // 1. Gang affinity: post to this master's previous workers first — they
    //    are either docked already or a few instructions from docking, and
    //    their caches are warm with this master's data. Mailbox posts don't
    //    consult any shard, so a migrated gang member is as reachable as
    //    ever.
    for slot in gang {
        let Some(job) = pending.pop() else { break };
        match try_post(&slot, job, latch, master) {
            Ok(()) => {
                local += 1;
                assigned.push(slot);
            }
            Err(job) => pending.push(job),
        }
    }
    // 2. The home shard's idle stack — the only lock this master's dispatch
    //    takes in the steady state, shared with nobody homed elsewhere.
    while !pending.is_empty() {
        let Some(slot) = pop_idle(&p.shards[home]) else {
            break;
        };
        if assigned.iter().any(|s| Arc::ptr_eq(s, &slot)) {
            continue;
        }
        let job = pending.pop().expect("loop guard: pending non-empty");
        match try_post(&slot, job, latch, master) {
            Ok(()) => {
                local += 1;
                assigned.push(slot);
            }
            Err(job) => pending.push(job),
        }
    }
    // 3. Cross-shard stealing: two random victims, richer (by advisory
    //    census) first, then sweep the remainder. A stolen worker migrates:
    //    its shard hint is rewritten so it docks here next time, which is
    //    what makes the home-shard fast path self-balancing under skewed
    //    masters.
    if !pending.is_empty() && nshards > 1 {
        let r = steal_rng(master);
        let a = (home + 1 + (r as usize) % (nshards - 1)) % nshards;
        let b = (home + 1 + ((r >> 32) as usize) % (nshards - 1)) % nshards;
        let (first, second) = if p.shards[a].idle_count.load(Ordering::Relaxed)
            >= p.shards[b].idle_count.load(Ordering::Relaxed)
        {
            (a, b)
        } else {
            (b, a)
        };
        let mut victims = vec![first];
        if second != first {
            victims.push(second);
        }
        victims.extend((0..nshards).filter(|&v| v != home && v != first && v != second));
        'steal: for v in victims {
            // The census is advisory but a zero read skips the lock
            // entirely — a dry sibling costs the sweep nothing.
            if p.shards[v].idle_count.load(Ordering::Relaxed) == 0 {
                continue;
            }
            while !pending.is_empty() {
                let Some(slot) = pop_idle(&p.shards[v]) else {
                    continue 'steal;
                };
                if assigned.iter().any(|s| Arc::ptr_eq(s, &slot)) {
                    continue;
                }
                let job = pending.pop().expect("loop guard: pending non-empty");
                match try_post(&slot, job, latch, master) {
                    Ok(()) => {
                        slot.shard.store(home, Ordering::Relaxed);
                        stolen += 1;
                        assigned.push(slot);
                    }
                    Err(job) => pending.push(job),
                }
            }
            break;
        }
    }
    p.reuse.fetch_add(assigned.len() as u64, Ordering::Relaxed);
    p.sh_local.fetch_add(local, Ordering::Relaxed);
    p.sh_steal.fetch_add(stolen, Ordering::Relaxed);
    // 4. Spawn fresh workers (homed here) for whatever is left.
    while let Some(job) = pending.pop() {
        p.spawn.fetch_add(1, Ordering::Relaxed);
        assigned.push(spawn_worker(job, latch, master, home));
    }
    GANG.with(|(_, g)| *g.borrow_mut() = assigned);
}

fn spawn_worker(job: Job, latch: &Arc<RegionLatch>, master: u64, shard: usize) -> Arc<WorkerSlot> {
    let p = pool();
    let id = p.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = Arc::new(WorkerSlot::default());
    slot.id.store(id, Ordering::Relaxed);
    slot.shard.store(shard, Ordering::Relaxed);
    p.slots.lock().push(Arc::clone(&slot));
    {
        let mut mb = slot.mailbox.lock();
        mb.work = Some((job, Arc::clone(latch)));
        mb.owner = master;
    }
    // Thread creation can fail transiently under load (EAGAIN while another
    // process's threads wind down) — the exact situation a saturated server
    // is in. Retry briefly before treating it as fatal; at that point jobs
    // already posted to other workers run against borrows the caller must
    // outlive, so unwinding would be unsound and abort is the only sound
    // exit.
    let mut last_err = None;
    for attempt in 0..4u32 {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(10 << attempt));
        }
        let worker_slot = Arc::clone(&slot);
        match std::thread::Builder::new()
            .name(format!("omp4rs-pool-{id}"))
            .stack_size(WORKER_STACK)
            .spawn(move || worker_loop(worker_slot))
        {
            Ok(_) => return slot,
            Err(e) => last_err = Some(e),
        }
    }
    eprintln!(
        "omp4rs: failed to spawn pool worker after retries: {}",
        last_err.expect("at least one attempt ran")
    );
    std::process::abort();
}

fn worker_loop(slot: Arc<WorkerSlot>) {
    let p = pool();
    CURRENT_SLOT.with(|s| *s.borrow_mut() = Some(Arc::clone(&slot)));
    loop {
        let (job, latch) = wait_for_mail(p, &slot);
        slot.flagged.store(false, Ordering::Relaxed);
        slot.busy_since.store(now_ns(), Ordering::Release);
        // A panicking job must not take the worker down: region poisoning
        // and panic capture happen inside the job (exec::run_worker and its
        // dispatch wrapper); the pool recycles the thread no matter what.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        slot.busy_since.store(0, Ordering::Release);
        slot.region.store(0, Ordering::Release);
        // On the normal path the region's final-barrier releaser has
        // already zeroed this latch (`complete_all`); this decrement is the
        // release only on cancelled/poisoned paths.
        latch.complete();
    }
}

/// The dock: take pending mail immediately (gang-affinity fast path — the
/// post may have arrived while this worker was still finishing the previous
/// region), otherwise mark the slot docked, list it idle on its home shard,
/// and spin-then-park on this worker's private dock eventcount.
fn wait_for_mail(p: &'static Pool, slot: &Arc<WorkerSlot>) -> (Job, Arc<RegionLatch>) {
    {
        let mut mb = slot.mailbox.lock();
        if let Some(work) = mb.work.take() {
            return work;
        }
        mb.docked = true;
    }
    {
        // The shard hint may be rewritten by a steal the instant after this
        // read — harmless: the worker is then listed on its previous shard,
        // where the sweep still finds it, and it re-reads the hint on its
        // next dock.
        let shard = &p.shards[slot.shard.load(Ordering::Relaxed) % p.shards.len()];
        let mut idle = shard.idle.lock();
        if !slot.listed.swap(true, Ordering::Relaxed) {
            idle.push(Arc::clone(slot));
            shard.idle_count.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Epoch before the mailbox check, so a post racing with the check falls
    // through the park. The spin budget lets a worker catch an immediately
    // following region with no futex traffic; only this worker's own posts
    // bump this dock, so a wake always means mail (no herd re-parks).
    let mut spins = sync::spin_iters();
    loop {
        let epoch = slot.dock.epoch();
        {
            let mut mb = slot.mailbox.lock();
            if let Some(work) = mb.work.take() {
                mb.docked = false;
                return work;
            }
        }
        if spins > 0 {
            spins -= 1;
            sync::spin_hint(spins);
            continue;
        }
        slot.dock.park(epoch);
    }
}

/// Charge (positive) or release (negative) `delta` threads against the
/// admission budget, on the calling thread's home shard, folding the shard
/// counter into the global reservoir once it reaches the fold batch.
fn charge_inflight(delta: i64) {
    let p = pool();
    let master = GANG.with(|(id, _)| *id);
    let shard = &p.shards[home_shard(master, p.shards.len())];
    let local = shard.inflight.fetch_add(delta, Ordering::AcqRel) + delta;
    if local.abs() >= p.fold_batch {
        let folded = shard.inflight.swap(0, Ordering::AcqRel);
        if folded != 0 {
            p.reservoir.fetch_add(folded, Ordering::AcqRel);
            p.sh_rebalance.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Threads currently charged to in-flight top-level regions: the reservoir
/// plus every shard's local counter. Clamped at zero — transiently, a
/// release folded into the reservoir can be visible before its charge.
fn inflight_total() -> usize {
    let p = pool();
    let mut total = p.reservoir.load(Ordering::Acquire);
    for shard in p.shards.iter() {
        total += shard.inflight.load(Ordering::Acquire);
    }
    total.max(0) as usize
}

/// Decide how many threads a top-level region may actually get when
/// `omp_set_dynamic(true)` (admission control) is on.
///
/// The capacity cap is the `thread_limit` ICV when set, otherwise twice the
/// host's available parallelism (floor 4) — generous enough that ordinary
/// nesting-free workloads always fit, tight enough that a flood of
/// concurrent top-level regions cannot pile up unbounded oversubscription.
/// Against the cap we charge the *pool workers* already granted to
/// in-flight regions ([`InflightGuard`]; masters run on their own caller
/// threads and serial regions charge nothing) and grant from the remaining
/// budget:
///
/// * budget covers the request → **granted** as asked;
/// * budget is at least 2 → team **shrunk** to the budget;
/// * otherwise → **shed**: the caller runs the region serially (size 1).
///
/// Each outcome bumps its `omp4rs.admission.*` counter. The whole decision
/// — including the shed path — is lock-free: a handful of relaxed/acquire
/// loads over the sharded in-flight counters and one counter bump.
/// Deliberately racy (load, not CAS-reserve): two regions admitted
/// concurrently may both see the same budget, and the sharded counters add
/// a bounded fold lag on top. That errs toward briefly overshooting the
/// soft cap rather than serializing every region entry through one shared
/// RMW — admission is a degradation valve, not a hard ceiling.
pub(crate) fn admit(requested: usize, thread_limit: usize) -> usize {
    let p = pool();
    let cap = if thread_limit != usize::MAX && thread_limit > 0 {
        thread_limit
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get() * 2)
            .unwrap_or(8)
            .max(4)
    };
    let budget = cap.saturating_sub(inflight_total());
    if budget >= requested {
        p.granted.fetch_add(1, Ordering::Relaxed);
        requested
    } else if budget > 1 {
        p.shrunk.fetch_add(1, Ordering::Relaxed);
        budget
    } else {
        p.shed.fetch_add(1, Ordering::Relaxed);
        1
    }
}

/// RAII charge against the admission budget: created by
/// `exec::parallel_region` for every pooled top-level region that takes
/// workers (whether or not dynamic adjustment is on, so [`admit`] sees the
/// true load), released when the region completes — including by unwind.
/// Charges the creating thread's home shard; the release lands on the home
/// shard of whichever thread drops the guard (normally the same one), and
/// the reservoir fold keeps the total honest either way.
pub(crate) struct InflightGuard {
    size: i64,
}

impl InflightGuard {
    pub(crate) fn new(size: usize) -> InflightGuard {
        let size = size as i64;
        charge_inflight(size);
        InflightGuard { size }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        charge_inflight(-self.size);
    }
}

/// Admission-control outcomes since process start (see the module notes on
/// `admit`); also published to the profiler as `omp4rs.admission.*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Regions granted their full requested team size.
    pub granted: u64,
    /// Regions granted a smaller-than-requested (but > 1) team.
    pub shrunk: u64,
    /// Regions shed to serial execution (team size 1).
    pub shed: u64,
    /// Threads currently charged to in-flight top-level regions (summed
    /// over the shards; see [`ShardStats::rebalance`] for the fold lag).
    pub inflight: u64,
}

/// Read the current [`AdmissionStats`].
pub fn admission_stats() -> AdmissionStats {
    let p = pool();
    AdmissionStats {
        granted: p.granted.load(Ordering::Relaxed),
        shrunk: p.shrunk.load(Ordering::Relaxed),
        shed: p.shed.load(Ordering::Relaxed),
        inflight: inflight_total() as u64,
    }
}

/// Stall-watchdog outcomes since process start; also published to the
/// profiler as `omp4rs.watchdog.*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Workers flagged as stalled (heartbeat older than the threshold).
    pub stalls: u64,
    /// Teams cancelled (poisoned) in response to a flagged stall.
    pub cancels: u64,
}

/// Read the current [`WatchdogStats`].
pub fn watchdog_stats() -> WatchdogStats {
    let p = pool();
    WatchdogStats {
        stalls: p.wd_stalls.load(Ordering::Relaxed),
        cancels: p.wd_cancels.load(Ordering::Relaxed),
    }
}

/// Shard-path outcomes since process start; also published to the profiler
/// as `omp4rs.pool.shard.*`.
///
/// With one shard (`OMP4RS_POOL_SHARDS=1`), `steal` and `rebalance` are
/// structurally zero: there is nobody to steal from and the fold batch is
/// infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Workers handed out without touching a sibling shard: gang-affinity
    /// posts plus home-shard pops.
    pub local: u64,
    /// Workers stolen from a sibling shard (each one also migrates its
    /// home-shard hint to the thief).
    pub steal: u64,
    /// Dispatches that fell through every shard to a fresh OS thread
    /// (equal to `omp4rs.pool.spawn` — the same events, viewed as the
    /// shard path's terminal fallback).
    pub spawn: u64,
    /// Admission-counter folds: a shard's in-flight slice reached the fold
    /// batch and was drained into the global reservoir.
    pub rebalance: u64,
}

/// Read the current [`ShardStats`].
pub fn shard_stats() -> ShardStats {
    let p = pool();
    ShardStats {
        local: p.sh_local.load(Ordering::Relaxed),
        steal: p.sh_steal.load(Ordering::Relaxed),
        spawn: p.spawn.load(Ordering::Relaxed),
        rebalance: p.sh_rebalance.load(Ordering::Relaxed),
    }
}

/// The pool's shard count. Forces pool initialization: the first caller of
/// anything pool-shaped freezes `OMP4RS_POOL_SHARDS` (or the host
/// parallelism default) for the life of the process.
pub fn shard_count() -> usize {
    pool().shards.len()
}

/// Spawn the stall-watchdog monitor thread, once per process. Called from
/// [`dispatch`] whenever the watchdog ICV (`OMP4RS_WATCHDOG`) is set, so
/// processes that never opt in never pay for the thread.
fn ensure_watchdog() {
    static WATCHDOG: OnceLock<()> = OnceLock::new();
    WATCHDOG.get_or_init(|| {
        let spawned = std::thread::Builder::new()
            .name("omp4rs-watchdog".into())
            .spawn(watchdog_loop);
        if let Err(e) = spawned {
            // Diagnostics-only thread: losing it degrades observability,
            // not correctness.
            eprintln!("omp4rs: failed to spawn watchdog thread: {e}");
        }
    });
}

/// The monitor: sample every worker's heartbeat at roughly half the stall
/// threshold. A worker whose heartbeat is older than the threshold is
/// flagged once per job: the watchdog records a `watchdog-stall` profiler
/// event and counter snapshot (per-worker state, pool queue depth), then
/// poisons the afflicted team through the deadline machinery so its master
/// observes a `RegionTimeout` instead of hanging.
///
/// The sweep reads only atomics plus the (cold) `slots` roster — never a
/// shard's idle lock — so a monitor tick cannot stall live dispatch.
fn watchdog_loop() {
    let p = pool();
    loop {
        let threshold = match crate::icv::Icvs::current().watchdog {
            Some(t) => t,
            // ICV cleared after startup: keep the thread parked cheaply.
            None => {
                std::thread::sleep(std::time::Duration::from_millis(500));
                continue;
            }
        };
        let thr_ns = threshold.as_nanos() as u64;
        let now = now_ns();
        let slots: Vec<Arc<WorkerSlot>> = p.slots.lock().clone();
        let mut busy = 0u64;
        for slot in &slots {
            let since = slot.busy_since.load(Ordering::Acquire);
            if since == 0 || since > now {
                continue;
            }
            busy += 1;
            let busy_ns = now - since;
            if busy_ns < thr_ns || slot.flagged.swap(true, Ordering::Relaxed) {
                continue;
            }
            p.wd_stalls.fetch_add(1, Ordering::Relaxed);
            let region = slot.region.load(Ordering::Acquire);
            let worker = slot.id.load(Ordering::Relaxed);
            crate::ompt::record(
                region,
                crate::ompt::EventKind::WatchdogStall { worker, busy_ns },
            );
            if let Some(team) = crate::team::find_by_region(region) {
                // Count before tripping: the trip wakes the region's master,
                // which may read `watchdog_stats` immediately — the cancel
                // must already be visible by then.
                p.wd_cancels.fetch_add(1, Ordering::Relaxed);
                team.trip_deadline("watchdog");
            }
        }
        if crate::ompt::enabled() {
            crate::ompt::set_counter(
                "omp4rs.watchdog.stalls",
                p.wd_stalls.load(Ordering::Relaxed),
            );
            crate::ompt::set_counter(
                "omp4rs.watchdog.cancels",
                p.wd_cancels.load(Ordering::Relaxed),
            );
            crate::ompt::set_counter("omp4rs.watchdog.busy_workers", busy);
            crate::ompt::set_counter("omp4rs.watchdog.idle_workers", idle_workers() as u64);
            crate::ompt::flush_thread();
        }
        // Half the threshold bounds detection latency at 1.5x the
        // threshold; clamped so a tiny threshold cannot busy-spin the
        // monitor and a huge one still notices ICV changes promptly.
        let tick = (threshold / 2)
            .max(std::time::Duration::from_millis(1))
            .min(std::time::Duration::from_millis(500));
        std::thread::sleep(tick);
    }
}

/// A snapshot of the pool's counters, as published to the profiler under
/// `omp4rs.pool.*`.
///
/// `park`/`spin_exit` are runtime-wide wait statistics (every eventcount
/// park and every wait satisfied within its spin budget — barriers, events,
/// task waits, and the pool's own mailbox parks), reported here because the
/// pool is where the wait policy's effect concentrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Dispatches served by re-binding an already-parked worker.
    pub reuse: u64,
    /// Dispatches that had to create a new OS thread.
    pub spawn: u64,
    /// Untimed parks performed by runtime waits.
    pub park: u64,
    /// Waits satisfied during their bounded spin phase.
    pub spin_exit: u64,
}

/// Read the current [`PoolStats`].
pub fn stats() -> PoolStats {
    let p = pool();
    PoolStats {
        reuse: p.reuse.load(Ordering::Relaxed),
        spawn: p.spawn.load(Ordering::Relaxed),
        park: sync::park_count(),
        spin_exit: sync::spin_exit_count(),
    }
}

/// Number of currently listed (idle) workers, summed over the shards from
/// the advisory per-shard censuses — no lock taken, so the watchdog (or a
/// test) can sample it during live dispatch without stalling anyone. Racy
/// and advisory: stale idle-list entries (workers that took a gang post
/// without being popped) are counted until a dispatcher pops them.
pub fn idle_workers() -> usize {
    pool()
        .shards
        .iter()
        .map(|s| s.idle_count.load(Ordering::Relaxed) as usize)
        .sum()
}

/// Publish the pool counters to the [`crate::ompt`] profiler (no-op when it
/// is disabled). `exec` calls this at region exit on the pooled path.
pub(crate) fn publish_counters() {
    if !crate::ompt::enabled() {
        return;
    }
    let s = stats();
    crate::ompt::set_counter("omp4rs.pool.reuse", s.reuse);
    crate::ompt::set_counter("omp4rs.pool.spawn", s.spawn);
    crate::ompt::set_counter("omp4rs.pool.park", s.park);
    crate::ompt::set_counter("omp4rs.pool.spin_exit", s.spin_exit);
    let sh = shard_stats();
    crate::ompt::set_counter("omp4rs.pool.shard.local", sh.local);
    crate::ompt::set_counter("omp4rs.pool.shard.steal", sh.steal);
    crate::ompt::set_counter("omp4rs.pool.shard.spawn", sh.spawn);
    crate::ompt::set_counter("omp4rs.pool.shard.rebalance", sh.rebalance);
    let a = admission_stats();
    crate::ompt::set_counter("omp4rs.admission.granted", a.granted);
    crate::ompt::set_counter("omp4rs.admission.shrunk", a.shrunk);
    crate::ompt::set_counter("omp4rs.admission.shed", a.shed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Dispatch and wait, as `exec::parallel_region` does.
    fn run(jobs: Vec<Job>) {
        let latch = RegionLatch::new(jobs.len());
        dispatch(jobs, &latch);
        latch.wait();
    }

    #[test]
    fn dispatch_runs_jobs_and_latch_releases() {
        let hits = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..3)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        run(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let before = stats();
        run(vec![Box::new(|| panic!("boom")) as Job]);
        // The same (or another pooled) worker must happily run the next job.
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        run(vec![Box::new(move || {
            ok2.fetch_add(1, Ordering::SeqCst);
        }) as Job]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
        let after = stats();
        assert!(
            after.reuse + after.spawn >= before.reuse + before.spawn + 2,
            "both dispatches must be accounted"
        );
    }

    #[test]
    fn every_dispatch_is_local_stolen_or_spawned() {
        // Conservation law: each of our 3 jobs lands in exactly one of the
        // shard-path buckets, all incremented on this (the dispatching)
        // thread. Concurrent tests can only add to the deltas, never
        // subtract.
        let before = shard_stats();
        run((0..3).map(|_| Box::new(|| {}) as Job).collect());
        let after = shard_stats();
        let delta = (after.local - before.local)
            + (after.steal - before.steal)
            + (after.spawn - before.spawn);
        assert!(delta >= 3, "3 jobs must be accounted, saw {delta}");
    }

    #[test]
    fn shard_count_is_positive_and_clamped() {
        let n = shard_count();
        assert!((1..=MAX_SHARDS).contains(&n));
    }

    #[test]
    fn inflight_charges_fold_and_release_cleanly() {
        // Whatever the shard layout, charging then releasing must return
        // the visible total to where it started (other tests' concurrent
        // guards can add, so compare against a floor, not equality).
        let guard = InflightGuard::new(3 * INFLIGHT_FOLD_BATCH as usize);
        assert!(admission_stats().inflight >= 3 * INFLIGHT_FOLD_BATCH as u64);
        drop(guard);
    }

    #[test]
    fn admit_grants_when_budget_covers_the_request() {
        // A practically unbounded cap always covers the request, no matter
        // what other tests have in flight.
        let before = admission_stats();
        assert_eq!(admit(4, 1 << 40), 4);
        let after = admission_stats();
        assert!(after.granted > before.granted);
    }

    #[test]
    fn admit_sheds_to_serial_when_budget_is_exhausted() {
        // Charge more than the cap ourselves: budget is zero regardless of
        // concurrent tests, so the region must run serially.
        let guard = InflightGuard::new(64);
        let before = admission_stats();
        assert!(before.inflight >= 64);
        assert_eq!(admit(8, 32), 1);
        let after = admission_stats();
        assert!(after.shed > before.shed);
        drop(guard);
    }

    #[test]
    fn admit_shrinks_an_oversized_request_to_the_budget() {
        // Leave a budget of (at most) 2 under our own load; concurrent
        // tests can only shrink it further, never extend it past 2.
        let guard = InflightGuard::new(64);
        let granted = admit(8, 66);
        assert!(granted < 8, "request must not be fully granted");
        assert!((1..=2).contains(&granted));
        drop(guard);
    }

    #[test]
    fn back_to_back_dispatches_reuse_workers() {
        // Gang affinity plus the idle lists must make a hot re-dispatch
        // find the previous round's workers. Other tests share the global
        // pool and may race workers away between rounds, so allow retries —
        // but systematic failure to ever reuse means the hot path is
        // broken.
        for round in 0.. {
            let warm: Vec<Job> = (0..2).map(|_| Box::new(|| {}) as Job).collect();
            run(warm);
            let before = stats();
            let again: Vec<Job> = (0..2).map(|_| Box::new(|| {}) as Job).collect();
            run(again);
            let after = stats();
            if after.reuse > before.reuse {
                return;
            }
            assert!(round < 20, "no dispatch ever reused a parked worker");
        }
    }
}
