//! Task dependences (`depend(in/out/inout)`) and `taskgroup`.
//!
//! OMP4Py (the paper, §V) stops at untied `task` + `taskwait`; this module
//! adds the ordering layer on top of the work-stealing queue in
//! [`crate::tasks`]. Each dependence item is a **key** — an address-like
//! `u64` the frontends derive from the storage location named in the
//! `depend` clause — and the graph tracks, per key, the *last writer* and
//! the set of *readers* still in flight, exactly the last-writer/reader-set
//! scheme compiled OpenMP runtimes use:
//!
//! - `in`    depends on the live last writer, then registers as a reader.
//! - `out` / `inout` depend on the live last writer **and** every live
//!   reader (WAW + WAR), then become the last writer and clear the readers.
//!
//! A task whose predecessor count is zero at submission goes straight to
//! the deques; otherwise its node is **held** — counted as outstanding (so
//! region barriers, deadlines, and the stall watchdog all see it) but
//! unclaimable until the release path hands it back. When a task retires
//! (its body ran, panicked, or was discarded by cancellation — the
//! `RetireGuard` fires on every one of those paths), it decrements its
//! successors' pending counts; successors that reach zero move to a ready
//! list the queue drains in front of its deques. That drain is the single
//! held→runnable funnel and carries the `dep-release` fault-injection site:
//! an injected panic discards the successor instead of stranding it, and
//! the discard retires it in turn, cascading the release.
//!
//! Edges only ever point from earlier to later submissions, so the graph is
//! acyclic by construction and every held task is released or discarded —
//! the zero-hang property the chaos tests pin via the
//! `omp4rs.task.dep.{deferred,released,edges}` counters (deferred ==
//! released once a region drains).
//!
//! `taskgroup` is the other half: a `TaskGroup` counts the live tasks
//! submitted while it is current (inherited across steals by installing the
//! group for the duration of each member's body, so grandchildren join
//! too), and `taskgroup_end` waits for that count — not the whole queue —
//! to drain.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ompt;
use crate::sync::Notifier;
use crate::tasks::TaskNode;

/// Access mode of one `depend` item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// `depend(in: …)` — reads the location; ordered after its last writer.
    In,
    /// `depend(out: …)` — writes the location; ordered after the last
    /// writer and all in-flight readers.
    Out,
    /// `depend(inout: …)` — read-modify-write; same ordering as [`Out`].
    ///
    /// [`Out`]: DepKind::Out
    Inout,
}

impl DepKind {
    /// Parse a dependence-type keyword as written in a `depend` clause.
    pub fn parse(text: &str) -> Option<DepKind> {
        match text {
            "in" => Some(DepKind::In),
            "out" => Some(DepKind::Out),
            "inout" => Some(DepKind::Inout),
            _ => None,
        }
    }

    /// The clause keyword for this kind.
    pub fn name(self) -> &'static str {
        match self {
            DepKind::In => "in",
            DepKind::Out => "out",
            DepKind::Inout => "inout",
        }
    }

    /// Whether this kind writes the location (orders against readers too).
    pub fn is_write(self) -> bool {
        !matches!(self, DepKind::In)
    }
}

/// One dependence item: a storage-location key plus its access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Address-like identity of the location (frontends hash or cast the
    /// named storage down to this).
    pub key: u64,
    /// How the task accesses it.
    pub kind: DepKind,
}

impl Dep {
    /// An `in` dependence on `key`.
    pub fn input(key: u64) -> Dep {
        Dep {
            key,
            kind: DepKind::In,
        }
    }

    /// An `out` dependence on `key`.
    pub fn output(key: u64) -> Dep {
        Dep {
            key,
            kind: DepKind::Out,
        }
    }

    /// An `inout` dependence on `key`.
    pub fn inout(key: u64) -> Dep {
        Dep {
            key,
            kind: DepKind::Inout,
        }
    }
}

/// Process-wide dependence counters, published to [`crate::ompt`] as
/// `omp4rs.task.dep.{deferred,released,edges}` at region exit.
static DEFERRED: AtomicU64 = AtomicU64::new(0);
static RELEASED: AtomicU64 = AtomicU64::new(0);
static EDGES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the cumulative dependence counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepCounters {
    /// Tasks that entered the graph held (at least one unretired
    /// predecessor at submission).
    pub deferred: u64,
    /// Held tasks handed back to the scheduler — released to the deques,
    /// or drained by cancellation/fault discard. A drained region always
    /// ends with `released == deferred`: nothing strands.
    pub released: u64,
    /// Predecessor→successor edges recorded (after liveness filtering and
    /// per-task dedup).
    pub edges: u64,
}

/// Read the cumulative process-wide dependence counters.
pub fn counters() -> DepCounters {
    DepCounters {
        deferred: DEFERRED.load(Ordering::Relaxed),
        released: RELEASED.load(Ordering::Relaxed),
        edges: EDGES.load(Ordering::Relaxed),
    }
}

/// Publish the dependence counters to the [`crate::ompt`] profiler (no-op
/// when it is disabled). `exec` calls this at region exit.
pub(crate) fn publish_counters() {
    if !ompt::enabled() {
        return;
    }
    let c = counters();
    ompt::set_counter("omp4rs.task.dep.deferred", c.deferred);
    ompt::set_counter("omp4rs.task.dep.released", c.released);
    ompt::set_counter("omp4rs.task.dep.edges", c.edges);
}

/// A held task plus the placement hints it was submitted with, carried
/// from submission to release.
pub(crate) struct Ready {
    pub(crate) node: Arc<TaskNode>,
    pub(crate) owner: Option<usize>,
    pub(crate) priority: i64,
}

/// Per-key ordering state: the last writer and the readers submitted since.
#[derive(Default)]
struct AddrState {
    last_writer: Option<u64>,
    readers: Vec<u64>,
}

/// A live (unretired) dependent task.
struct DepNode {
    /// Unretired predecessors; the task is held until this reaches zero.
    pending: usize,
    /// Successor ids to decrement when this task retires.
    succs: Vec<u64>,
    /// Keys this task touched, for address-state cleanup at retire.
    keys: Vec<u64>,
    /// The held placement, `None` once released (or never held).
    held: Option<Ready>,
}

struct GraphInner {
    nodes: HashMap<u64, DepNode>,
    addrs: HashMap<u64, AddrState>,
    /// Released, waiting for the queue to drain them to the deques.
    ready: Vec<Ready>,
}

/// The per-queue dependence graph. One per [`crate::tasks::TaskQueue`],
/// shared (`Arc`) with every task's [`RetireGuard`].
pub(crate) struct DepGraph {
    next_id: AtomicU64,
    /// Fast-path mirror of `inner.ready.len()`.
    ready_len: AtomicUsize,
    /// Held (released-pending) tasks currently in the graph.
    held_len: AtomicUsize,
    inner: Mutex<GraphInner>,
    /// The owning queue's wake notifier: parked waiters must learn when a
    /// retire makes successors ready.
    wake: Arc<Notifier>,
}

impl DepGraph {
    pub(crate) fn new(wake: Arc<Notifier>) -> DepGraph {
        DepGraph {
            next_id: AtomicU64::new(0),
            ready_len: AtomicUsize::new(0),
            held_len: AtomicUsize::new(0),
            inner: Mutex::new(GraphInner {
                nodes: HashMap::new(),
                addrs: HashMap::new(),
                ready: Vec::new(),
            }),
            wake,
        }
    }

    /// Allocate the graph id for a task about to be inserted (the caller
    /// needs it before insertion to build the task's [`RetireGuard`]).
    pub(crate) fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record `node`'s dependences and either hold it (returns `true`) or
    /// report it immediately runnable (returns `false`; the caller places
    /// it on the deques). Predecessors are resolved against the per-key
    /// last-writer/reader state, filtered to still-live tasks, and deduped,
    /// so edges always point from earlier to later submissions — the graph
    /// is acyclic by construction.
    pub(crate) fn insert(
        &self,
        id: u64,
        node: &Arc<TaskNode>,
        owner: Option<usize>,
        priority: i64,
        deps: &[Dep],
    ) -> bool {
        let mut g = self.inner.lock();
        let mut preds: Vec<u64> = Vec::new();
        for d in deps {
            let st = g.addrs.entry(d.key).or_default();
            if d.kind.is_write() {
                preds.extend(st.last_writer);
                preds.extend_from_slice(&st.readers);
            } else {
                preds.extend(st.last_writer);
            }
        }
        // Second pass so duplicate keys within one list see the *prior*
        // tasks' state, not this task's own registrations.
        for d in deps {
            let st = g.addrs.entry(d.key).or_default();
            if d.kind.is_write() {
                st.last_writer = Some(id);
                st.readers.clear();
            } else if !st.readers.contains(&id) {
                st.readers.push(id);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|p| *p != id && g.nodes.contains_key(p));
        EDGES.fetch_add(preds.len() as u64, Ordering::Relaxed);
        for p in &preds {
            g.nodes.get_mut(p).expect("retained live").succs.push(id);
        }
        let pending = preds.len();
        let held = pending > 0;
        let slot = if held {
            DEFERRED.fetch_add(1, Ordering::Relaxed);
            self.held_len.fetch_add(1, Ordering::Relaxed);
            node.hold();
            Some(Ready {
                node: Arc::clone(node),
                owner,
                priority,
            })
        } else {
            None
        };
        g.nodes.insert(
            id,
            DepNode {
                pending,
                succs: Vec::new(),
                keys: deps.iter().map(|d| d.key).collect(),
                held: slot,
            },
        );
        held
    }

    /// Retire task `id`: drop it from the address state and decrement its
    /// successors, moving the newly unblocked onto the ready list. Fired by
    /// [`RetireGuard`] on every exit path (ran, panicked, discarded);
    /// idempotent once the node is gone (cancellation clears the graph).
    pub(crate) fn retire(&self, id: u64) {
        let mut woke = false;
        {
            let mut g = self.inner.lock();
            let Some(dead) = g.nodes.remove(&id) else {
                return;
            };
            for key in dead.keys {
                if let Some(st) = g.addrs.get_mut(&key) {
                    if st.last_writer == Some(id) {
                        st.last_writer = None;
                    }
                    st.readers.retain(|r| *r != id);
                    if st.last_writer.is_none() && st.readers.is_empty() {
                        g.addrs.remove(&key);
                    }
                }
            }
            for s in dead.succs {
                let Some(sn) = g.nodes.get_mut(&s) else {
                    continue;
                };
                sn.pending -= 1;
                if sn.pending == 0 {
                    if let Some(r) = sn.held.take() {
                        RELEASED.fetch_add(1, Ordering::Relaxed);
                        self.held_len.fetch_sub(1, Ordering::Relaxed);
                        self.ready_len.fetch_add(1, Ordering::Relaxed);
                        g.ready.push(r);
                        woke = true;
                    }
                }
            }
        }
        if woke {
            // Parked barrier/taskwait/taskgroup waiters drain the ready
            // list through the queue's task-running loops.
            self.wake.notify_all();
        }
    }

    /// Number of released tasks awaiting the queue's drain (fast path for
    /// `run_one_from`: zero means skip the lock entirely).
    pub(crate) fn ready_len(&self) -> usize {
        self.ready_len.load(Ordering::Acquire)
    }

    /// Number of tasks currently held on unretired predecessors.
    pub(crate) fn held_len(&self) -> usize {
        self.held_len.load(Ordering::Acquire)
    }

    /// Take the released tasks for placement on the deques.
    pub(crate) fn take_ready(&self) -> Vec<Ready> {
        let mut g = self.inner.lock();
        self.ready_len.store(0, Ordering::Release);
        std::mem::take(&mut g.ready)
    }

    /// Cancellation: release *every* task — ready-list entries and still
    /// held ones alike — and clear the graph. The caller discards them; a
    /// cancelled graph releases, not strands, its successors.
    pub(crate) fn cancel_all(&self) -> Vec<Ready> {
        let mut g = self.inner.lock();
        self.ready_len.store(0, Ordering::Release);
        let mut out: Vec<Ready> = g.ready.drain(..).collect();
        for node in g.nodes.values_mut() {
            if let Some(r) = node.held.take() {
                RELEASED.fetch_add(1, Ordering::Relaxed);
                self.held_len.fetch_sub(1, Ordering::Relaxed);
                out.push(r);
            }
        }
        g.nodes.clear();
        g.addrs.clear();
        out
    }
}

/// Drop guard that retires a dependent task in its graph. Captured by the
/// task's body closure, so it fires when the body finishes, when it
/// unwinds, **and** when cancellation drops the body unrun — the three
/// paths that must all release successors.
pub(crate) struct RetireGuard {
    graph: Arc<DepGraph>,
    id: u64,
}

impl RetireGuard {
    pub(crate) fn new(graph: Arc<DepGraph>, id: u64) -> RetireGuard {
        RetireGuard { graph, id }
    }
}

impl Drop for RetireGuard {
    fn drop(&mut self) {
        self.graph.retire(self.id);
    }
}

// ---------------------------------------------------------------- taskgroup

/// One `taskgroup` region: counts the live tasks created while it was the
/// current group (including descendants, via body-scoped installation).
pub(crate) struct TaskGroup {
    live: AtomicUsize,
    wake: Arc<Notifier>,
}

impl TaskGroup {
    pub(crate) fn new(wake: Arc<Notifier>) -> Arc<TaskGroup> {
        Arc::new(TaskGroup {
            live: AtomicUsize::new(0),
            wake,
        })
    }

    /// Tasks belonging to the group that have not finished (or been
    /// discarded) yet.
    pub(crate) fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    fn enter(&self) {
        self.live.fetch_add(1, Ordering::AcqRel);
    }

    fn leave(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.wake.notify_all();
        }
    }
}

thread_local! {
    /// The stack of taskgroups the current thread is nested inside. Pushed
    /// by `taskgroup` begin and by each group member's body (so tasks a
    /// member spawns — possibly after being stolen onto another thread —
    /// join the group too), popped by the matching end/guard.
    static GROUPS: RefCell<Vec<Arc<TaskGroup>>> = const { RefCell::new(Vec::new()) };
}

/// Push `group` as the current taskgroup on this thread.
pub(crate) fn push_group(group: Arc<TaskGroup>) {
    GROUPS.with(|g| g.borrow_mut().push(group));
}

/// Pop the current taskgroup off this thread.
pub(crate) fn pop_group() -> Option<Arc<TaskGroup>> {
    GROUPS.with(|g| g.borrow_mut().pop())
}

/// The innermost taskgroup the current thread is inside, if any.
pub(crate) fn current_group() -> Option<Arc<TaskGroup>> {
    GROUPS.with(|g| g.borrow().last().cloned())
}

/// A submitted task's membership in the taskgroup that was current at
/// submission. Created at submit (incrementing the group's live count) and
/// captured by the body closure: dropping it — after the body ran, after
/// it unwound, or when cancellation drops the body unrun — leaves the
/// group, so `taskgroup_end` never waits on a task that can no longer run.
pub(crate) struct Membership(Option<Arc<TaskGroup>>);

impl Membership {
    /// Join the submitting thread's current group (no-op membership when
    /// there is none).
    pub(crate) fn enter_current() -> Membership {
        let group = current_group();
        if let Some(g) = &group {
            g.enter();
        }
        Membership(group)
    }

    /// Install the membership's group as the executing thread's current
    /// group for the duration of the body, so tasks the body spawns inherit
    /// it (the descendant-tracking half of `taskgroup`).
    pub(crate) fn install(&self) -> InstallGuard {
        if let Some(g) = &self.0 {
            push_group(Arc::clone(g));
            InstallGuard { installed: true }
        } else {
            InstallGuard { installed: false }
        }
    }
}

impl Drop for Membership {
    fn drop(&mut self) {
        if let Some(g) = self.0.take() {
            g.leave();
        }
    }
}

/// Un-installs a [`Membership::install`] at body exit (including unwind).
pub(crate) struct InstallGuard {
    installed: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if self.installed {
            pop_group();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Backend;

    fn node() -> Arc<TaskNode> {
        TaskNode::new(Backend::Atomic, Box::new(|| {}))
    }

    fn graph() -> DepGraph {
        DepGraph::new(Arc::new(Notifier::new()))
    }

    fn insert(g: &DepGraph, deps: &[Dep]) -> (u64, Arc<TaskNode>, bool) {
        let id = g.alloc_id();
        let n = node();
        let held = g.insert(id, &n, None, 0, deps);
        (id, n, held)
    }

    #[test]
    fn chain_releases_in_order() {
        let g = graph();
        let (a, _, held_a) = insert(&g, &[Dep::output(1)]);
        let (b, _, held_b) = insert(&g, &[Dep::inout(1)]);
        let (_c, _, held_c) = insert(&g, &[Dep::input(1)]);
        assert!(!held_a, "no predecessor: runnable immediately");
        assert!(held_b, "WAW on a");
        assert!(held_c, "RAW on b");
        assert_eq!(g.held_len(), 2);
        g.retire(a);
        assert_eq!(g.ready_len(), 1, "only b released");
        assert_eq!(g.held_len(), 1);
        g.retire(b);
        assert_eq!(g.take_ready().len(), 2, "b then c");
        assert_eq!(g.held_len(), 0);
    }

    #[test]
    fn diamond_joins_on_both_branches() {
        let g = graph();
        let (root, _, _) = insert(&g, &[Dep::output(1)]);
        let (l, _, _) = insert(&g, &[Dep::input(1), Dep::output(2)]);
        let (r, _, _) = insert(&g, &[Dep::input(1), Dep::output(3)]);
        let (_join, _, held) = insert(&g, &[Dep::input(2), Dep::input(3)]);
        assert!(held);
        g.retire(root);
        assert_eq!(g.ready_len(), 2, "both branches released");
        for x in g.take_ready() {
            x.node.release_hold();
        }
        g.retire(l);
        assert_eq!(g.ready_len(), 0, "join still waits on the right branch");
        g.retire(r);
        assert_eq!(g.ready_len(), 1, "join released only after both");
    }

    #[test]
    fn readers_run_concurrently_and_block_writer() {
        let g = graph();
        let (w, _, _) = insert(&g, &[Dep::output(9)]);
        g.retire(w);
        let (r1, _, h1) = insert(&g, &[Dep::input(9)]);
        let (r2, _, h2) = insert(&g, &[Dep::input(9)]);
        assert!(!h1 && !h2, "readers of a retired writer run immediately");
        let (_w2, _, held) = insert(&g, &[Dep::output(9)]);
        assert!(held, "WAR: writer waits on both readers");
        g.retire(r1);
        assert_eq!(g.ready_len(), 0);
        g.retire(r2);
        assert_eq!(g.ready_len(), 1, "released when the last reader retires");
    }

    #[test]
    fn duplicate_keys_in_one_list_dedup_edges() {
        let g = graph();
        let before = counters().edges;
        let (_a, _, _) = insert(&g, &[Dep::output(5)]);
        let (_b, _, held) = insert(&g, &[Dep::input(5), Dep::inout(5), Dep::input(5)]);
        assert!(held);
        assert_eq!(
            counters().edges - before,
            1,
            "one predecessor, however many items name it"
        );
    }

    #[test]
    fn cancel_all_releases_every_held_task() {
        let g = graph();
        let before = counters();
        let (_a, _, _) = insert(&g, &[Dep::output(1)]);
        let (_b, _, _) = insert(&g, &[Dep::inout(1)]);
        let (_c, _, _) = insert(&g, &[Dep::inout(1)]);
        assert_eq!(g.held_len(), 2);
        let drained = g.cancel_all();
        assert_eq!(drained.len(), 2, "held tasks handed back, not stranded");
        assert_eq!(g.held_len(), 0);
        assert_eq!(g.ready_len(), 0);
        let after = counters();
        assert_eq!(
            after.released - before.released,
            after.deferred - before.deferred
        );
    }

    #[test]
    fn membership_tracks_nested_spawns() {
        let wake = Arc::new(Notifier::new());
        let group = TaskGroup::new(Arc::clone(&wake));
        push_group(Arc::clone(&group));
        let m = Membership::enter_current();
        assert_eq!(group.live(), 1);
        pop_group();
        // Body runs elsewhere: installing makes nested submissions join.
        {
            let _install = m.install();
            let nested = Membership::enter_current();
            assert_eq!(group.live(), 2, "descendant joined via install");
            drop(nested);
        }
        assert!(current_group().is_none(), "install popped at body exit");
        assert_eq!(group.live(), 1);
        drop(m);
        assert_eq!(group.live(), 0, "membership leaves on drop");
    }
}
