//! Per-thread execution context.
//!
//! Each OS thread carries a stack of team frames (one per enclosing
//! `parallel` region, mirroring §III-C's per-thread task stack). Threads with
//! an empty stack — the initial thread, or any externally created thread —
//! behave as an implicit single-thread team, exactly as the paper specifies
//! for threads created with `threading`/`asyncio` outside OpenMP constructs.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use crate::tasks::TaskNode;
use crate::team::Team;
use crate::worksharing::WsInstance;

/// One entry of the per-thread team stack.
pub struct Frame {
    /// The team this thread belongs to at this level.
    pub team: Arc<Team>,
    /// This thread's number within the team.
    pub thread_num: usize,
    /// `(thread_num, team_size)` for every level from the outermost parallel
    /// region down to this one (drives `omp_get_ancestor_thread_num`).
    pub positions: Vec<(usize, usize)>,
    ws_seq: Cell<u64>,
    current_flat_iter: Cell<Option<u64>>,
    current_instance: RefCell<Option<Arc<WsInstance>>>,
    children_stack: RefCell<Vec<Vec<Arc<TaskNode>>>>,
}

thread_local! {
    static STACK: RefCell<Vec<Rc<Frame>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that pops the team frame on drop.
pub struct FrameGuard {
    _private: (),
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Push a team frame for the current thread.
///
/// `parent_positions` is the position chain of the thread that encountered
/// the `parallel` directive (empty for the initial thread).
pub fn enter_team(
    team: Arc<Team>,
    thread_num: usize,
    parent_positions: Vec<(usize, usize)>,
) -> FrameGuard {
    let mut positions = parent_positions;
    positions.push((thread_num, team.size()));
    let frame = Rc::new(Frame {
        team,
        thread_num,
        positions,
        ws_seq: Cell::new(0),
        current_flat_iter: Cell::new(None),
        current_instance: RefCell::new(None),
        children_stack: RefCell::new(vec![Vec::new()]),
    });
    STACK.with(|s| s.borrow_mut().push(frame));
    FrameGuard { _private: () }
}

/// The innermost team frame, if the thread is inside a parallel region.
pub fn current_frame() -> Option<Rc<Frame>> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// The position chain of the current thread (for spawning nested teams).
pub fn current_positions() -> Vec<(usize, usize)> {
    current_frame()
        .map(|f| f.positions.clone())
        .unwrap_or_default()
}

impl Frame {
    /// Allocate the next work-sharing sequence number for this thread.
    pub fn next_ws_seq(&self) -> u64 {
        let seq = self.ws_seq.get();
        self.ws_seq.set(seq + 1);
        seq
    }

    /// Record the flattened iteration currently executing (for `ordered`).
    pub fn set_current_iter(&self, flat: Option<u64>) {
        self.current_flat_iter.set(flat);
    }

    /// The flattened iteration currently executing, if inside a loop chunk.
    pub fn current_iter(&self) -> Option<u64> {
        self.current_flat_iter.get()
    }

    /// Attach the active loop's shared instance (for `ordered`).
    pub fn set_current_instance(&self, inst: Option<Arc<WsInstance>>) {
        *self.current_instance.borrow_mut() = inst;
    }

    /// The active loop's shared instance.
    pub fn current_instance(&self) -> Option<Arc<WsInstance>> {
        self.current_instance.borrow().clone()
    }

    /// Register a child task of the currently executing task.
    pub fn register_child(&self, node: Arc<TaskNode>) {
        self.children_stack
            .borrow_mut()
            .last_mut()
            .expect("children stack never empty")
            .push(node);
    }

    /// Snapshot of the current task's direct children (for `taskwait`).
    pub fn current_children(&self) -> Vec<Arc<TaskNode>> {
        self.children_stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_default()
    }

    /// Drop completed children (bounds `taskwait` rescans and memory).
    pub fn prune_done_children(&self) {
        if let Some(children) = self.children_stack.borrow_mut().last_mut() {
            children.retain(|c| !c.is_done());
        }
    }

    /// Enter a nested task frame (called around task body execution).
    pub fn push_task_frame(&self) {
        self.children_stack.borrow_mut().push(Vec::new());
    }

    /// Leave a nested task frame.
    pub fn pop_task_frame(&self) {
        self.children_stack.borrow_mut().pop();
    }
}

/// `omp_get_thread_num` semantics: 0 outside any team.
pub fn thread_num() -> usize {
    current_frame().map(|f| f.thread_num).unwrap_or(0)
}

/// `omp_get_num_threads` semantics: 1 outside any team.
pub fn num_threads() -> usize {
    current_frame().map(|f| f.team.size()).unwrap_or(1)
}

/// `omp_in_parallel`: whether any enclosing parallel region is active
/// (team size > 1).
///
/// Derived from the position chain, not the local frame stack: a nested
/// team's workers are fresh OS threads whose stack holds only the innermost
/// frame, but their ancestry travels in [`Frame::positions`].
pub fn in_parallel() -> bool {
    current_frame().is_some_and(|f| f.positions.iter().any(|&(_, s)| s > 1))
}

/// `omp_get_level`: number of nested parallel regions (active or not).
pub fn level() -> usize {
    current_frame().map(|f| f.positions.len()).unwrap_or(0)
}

/// `omp_get_active_level`: number of nested *active* parallel regions.
pub fn active_level() -> usize {
    current_frame()
        .map(|f| f.positions.iter().filter(|&&(_, s)| s > 1).count())
        .unwrap_or(0)
}

/// `omp_get_ancestor_thread_num(level)`: thread number of this thread's
/// ancestor at the given level; -1 if the level does not exist.
pub fn ancestor_thread_num(query_level: i64) -> i64 {
    if query_level == 0 {
        return 0;
    }
    current_frame()
        .and_then(|f| {
            let idx = usize::try_from(query_level).ok()?.checked_sub(1)?;
            f.positions.get(idx).map(|&(t, _)| t as i64)
        })
        .unwrap_or(-1)
}

/// `omp_get_team_size(level)`: team size at the given level; -1 if absent.
pub fn team_size(query_level: i64) -> i64 {
    if query_level == 0 {
        return 1;
    }
    current_frame()
        .and_then(|f| {
            let idx = usize::try_from(query_level).ok()?.checked_sub(1)?;
            f.positions.get(idx).map(|&(_, s)| s as i64)
        })
        .unwrap_or(-1)
}
