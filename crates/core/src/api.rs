//! The OpenMP 3.0 runtime library API (`omp_*` functions).
//!
//! These are free functions mirroring the C API names, backed by the global
//! ICVs ([`crate::icv::Icvs`]) and the per-thread context
//! ([`crate::context`]). The interpreter bridge re-exports them to
//! interpreted code under the same names.

use std::sync::OnceLock;
use std::time::Instant;

use crate::context;
use crate::directive::ScheduleKind;
use crate::icv::{available_parallelism, Icvs};

/// `omp_set_num_threads`: set the default team size (`nthreads-var`).
pub fn omp_set_num_threads(n: usize) {
    if n > 0 {
        Icvs::update(|icvs| icvs.num_threads = n);
    }
}

/// `omp_get_num_threads`: size of the current team (1 outside parallel).
pub fn omp_get_num_threads() -> usize {
    context::num_threads()
}

/// `omp_get_max_threads`: team size the next `parallel` would use.
pub fn omp_get_max_threads() -> usize {
    Icvs::current().num_threads
}

/// `omp_get_thread_num`: this thread's number in the current team.
pub fn omp_get_thread_num() -> usize {
    context::thread_num()
}

/// `omp_get_num_procs`: available hardware parallelism.
pub fn omp_get_num_procs() -> usize {
    available_parallelism()
}

/// `omp_in_parallel`: whether an enclosing *active* parallel region exists.
pub fn omp_in_parallel() -> bool {
    context::in_parallel()
}

/// `omp_set_dynamic` (`dyn-var`): allow the runtime to grant fewer threads
/// than requested when the worker pool is under pressure.
///
/// With `dyn-var` true, every top-level pooled region passes admission
/// control: the runtime compares the requested team size against the
/// process-wide concurrency budget (`thread-limit-var` when set, otherwise a
/// multiple of the host parallelism) minus the threads already in flight.
/// Oversubscribed requests are **shrunk** to the remaining budget, and when
/// no budget remains at all the region is **shed** to caller-runs-serial
/// (team size 1). The decisions are observable as the
/// `omp4rs.admission.{granted,shrunk,shed}` counters. With `dyn-var` false
/// (the default) the requested size is always granted, exactly as before.
pub fn omp_set_dynamic(dynamic: bool) {
    Icvs::update(|icvs| icvs.dynamic = dynamic);
}

/// `omp_get_dynamic`.
pub fn omp_get_dynamic() -> bool {
    Icvs::current().dynamic
}

/// `omp_set_nested` (`nest-var`): enable nested parallel regions.
pub fn omp_set_nested(nested: bool) {
    Icvs::update(|icvs| icvs.nested = nested);
}

/// `omp_get_nested`.
pub fn omp_get_nested() -> bool {
    Icvs::current().nested
}

/// `omp_set_schedule`: set the `schedule(runtime)` policy.
pub fn omp_set_schedule(kind: ScheduleKind, chunk: Option<u64>) {
    Icvs::update(|icvs| icvs.run_schedule = (kind, chunk));
}

/// `omp_get_schedule`.
pub fn omp_get_schedule() -> (ScheduleKind, Option<u64>) {
    Icvs::current().run_schedule
}

/// `omp_get_thread_limit`.
pub fn omp_get_thread_limit() -> usize {
    Icvs::current().thread_limit
}

/// Set the per-region deadline (omp4rs extension, mirrors
/// `OMP4RS_REGION_DEADLINE`).
///
/// When set, every blocking wait inside a parallel region — barriers,
/// `single`/`critical` acquisition, `taskwait`, lock acquisition — is bounded
/// by the deadline measured from region entry. A wait that exceeds it poisons
/// the region exactly like a panicking team thread and surfaces
/// [`crate::error::OmpError::RegionTimeout`] on the joining thread. `None`
/// (the default) restores unbounded waits.
pub fn omp_set_region_deadline(deadline: Option<std::time::Duration>) {
    Icvs::update(|icvs| icvs.region_deadline = deadline);
}

/// Read back the per-region deadline set by [`omp_set_region_deadline`] or
/// `OMP4RS_REGION_DEADLINE`.
pub fn omp_get_region_deadline() -> Option<std::time::Duration> {
    Icvs::current().region_deadline
}

/// `omp_get_cancellation` (`cancel-var`): whether `cancel` directives are
/// honoured. Controlled by `OMP_CANCELLATION`; there is no spec setter, but
/// tests may flip it through [`Icvs::update`].
pub fn omp_get_cancellation() -> bool {
    Icvs::current().cancellation
}

/// `omp_set_max_active_levels`.
pub fn omp_set_max_active_levels(levels: usize) {
    Icvs::update(|icvs| icvs.max_active_levels = levels);
}

/// `omp_get_max_active_levels`.
pub fn omp_get_max_active_levels() -> usize {
    Icvs::current().max_active_levels
}

/// `omp_get_level`: nesting depth of parallel regions (active or not).
pub fn omp_get_level() -> usize {
    context::level()
}

/// `omp_get_active_level`: nesting depth of *active* parallel regions.
pub fn omp_get_active_level() -> usize {
    context::active_level()
}

/// `omp_get_ancestor_thread_num(level)`; -1 if the level does not exist.
pub fn omp_get_ancestor_thread_num(level: i64) -> i64 {
    context::ancestor_thread_num(level)
}

/// `omp_get_team_size(level)`; -1 if the level does not exist.
pub fn omp_get_team_size(level: i64) -> i64 {
    context::team_size(level)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// `omp_get_wtime`: monotonic wall-clock seconds (per-process epoch).
pub fn omp_get_wtime() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// `omp_get_wtick`: timer resolution in seconds.
pub fn omp_get_wtick() -> f64 {
    // `Instant` is nanosecond-resolution on the supported platforms.
    1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outside_parallel_defaults() {
        assert_eq!(omp_get_thread_num(), 0);
        assert_eq!(omp_get_num_threads(), 1);
        assert!(!omp_in_parallel());
        assert_eq!(omp_get_level(), 0);
        assert_eq!(omp_get_active_level(), 0);
        assert_eq!(omp_get_ancestor_thread_num(0), 0);
        assert_eq!(omp_get_ancestor_thread_num(1), -1);
        assert_eq!(omp_get_team_size(0), 1);
        assert_eq!(omp_get_team_size(3), -1);
        assert!(omp_get_num_procs() >= 1);
    }

    #[test]
    fn num_threads_round_trip() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        omp_set_num_threads(6);
        assert_eq!(omp_get_max_threads(), 6);
        omp_set_num_threads(0); // ignored, like a conforming implementation
        assert_eq!(omp_get_max_threads(), 6);
        Icvs::reset(before);
    }

    #[test]
    fn schedule_round_trip() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        omp_set_schedule(ScheduleKind::Guided, Some(8));
        assert_eq!(omp_get_schedule(), (ScheduleKind::Guided, Some(8)));
        Icvs::reset(before);
    }

    #[test]
    fn nested_and_dynamic_flags() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        omp_set_nested(true);
        assert!(omp_get_nested());
        omp_set_dynamic(true);
        assert!(omp_get_dynamic());
        Icvs::reset(before);
    }

    #[test]
    fn region_deadline_round_trip() {
        let _guard = crate::icv::test_guard();
        let before = Icvs::current();
        assert_eq!(omp_get_region_deadline(), None);
        omp_set_region_deadline(Some(std::time::Duration::from_millis(250)));
        assert_eq!(
            omp_get_region_deadline(),
            Some(std::time::Duration::from_millis(250))
        );
        omp_set_region_deadline(None);
        assert_eq!(omp_get_region_deadline(), None);
        Icvs::reset(before);
    }

    #[test]
    fn wtime_is_monotone() {
        let t0 = omp_get_wtime();
        let t1 = omp_get_wtime();
        assert!(t1 >= t0);
        assert!(omp_get_wtick() > 0.0);
    }
}
