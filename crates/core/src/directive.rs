//! OpenMP 3.0 directive and clause parser.
//!
//! Parses directive strings like
//! `"parallel for reduction(+:pi_value) schedule(dynamic, 300) nowait"`
//! into a validated [`Directive`]. This is the directive language both the
//! `@omp`-style frontend and the compiled-mode API accept.
//!
//! Besides OpenMP 3.0 syntax, the OpenMP 6.0 *syntax* extensions the paper
//! calls out are supported: underscores in combined directive names
//! (`parallel_for`), semicolons separating clauses, and an optional argument
//! to `nowait`.

use std::fmt;

use crate::depgraph::DepKind;

/// A parse or validation error for a directive string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the directive string, when known.
    pub offset: Option<usize>,
}

impl DirectiveError {
    fn new(msg: impl Into<String>) -> DirectiveError {
        DirectiveError {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> DirectiveError {
        DirectiveError {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(
                f,
                "invalid OpenMP directive: {} (at offset {off})",
                self.msg
            ),
            None => write!(f, "invalid OpenMP directive: {}", self.msg),
        }
    }
}

impl std::error::Error for DirectiveError {}

/// The directive name (possibly combined).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `parallel`
    Parallel,
    /// `for`
    For,
    /// `parallel for` (combined)
    ParallelFor,
    /// `sections`
    Sections,
    /// `parallel sections` (combined)
    ParallelSections,
    /// `section` (inside `sections`)
    Section,
    /// `single`
    Single,
    /// `master`
    Master,
    /// `critical` with optional region name
    Critical(Option<String>),
    /// `barrier`
    Barrier,
    /// `atomic`
    Atomic,
    /// `ordered`
    Ordered,
    /// `task`
    Task,
    /// `taskloop` — OpenMP 4.5; §V of the paper calls it a straightforward
    /// extension ("their semantics build on existing constructs"), so it is
    /// implemented here.
    Taskloop,
    /// `taskgroup` — structured wait over the tasks (and their descendants)
    /// created inside the block, composing with `cancel taskgroup`.
    Taskgroup,
    /// `taskwait`
    Taskwait,
    /// `taskyield`
    Taskyield,
    /// `flush` with optional variable list
    Flush(Vec<String>),
    /// `threadprivate(vars)`
    Threadprivate(Vec<String>),
    /// `cancel(construct)` — OpenMP 4.0 cancellation, included as part of
    /// the fault-tolerance extension: requests cancellation of the named
    /// enclosing construct (honoured when the `cancel-var` ICV /
    /// `OMP_CANCELLATION` is enabled). An optional `if(expr)` may appear
    /// after the construct (inside the parens, spec-style) or as a trailing
    /// clause.
    Cancel(CancelConstruct),
    /// `cancellation point(construct)` — a point at which threads check for
    /// pending cancellation of the named construct.
    CancellationPoint(CancelConstruct),
    /// `declare reduction(name : combiner)` — OpenMP 4.0 feature the paper
    /// explicitly includes.
    DeclareReduction {
        /// The reduction identifier usable in `reduction(name: …)` clauses.
        name: String,
        /// Combiner expression text (host-interpreted).
        combiner: String,
        /// Initializer expression text, if given.
        initializer: Option<String>,
    },
}

impl DirectiveKind {
    /// Canonical (spec) spelling of the directive name.
    pub fn name(&self) -> &'static str {
        match self {
            DirectiveKind::Parallel => "parallel",
            DirectiveKind::For => "for",
            DirectiveKind::ParallelFor => "parallel for",
            DirectiveKind::Sections => "sections",
            DirectiveKind::ParallelSections => "parallel sections",
            DirectiveKind::Section => "section",
            DirectiveKind::Single => "single",
            DirectiveKind::Master => "master",
            DirectiveKind::Critical(_) => "critical",
            DirectiveKind::Barrier => "barrier",
            DirectiveKind::Atomic => "atomic",
            DirectiveKind::Ordered => "ordered",
            DirectiveKind::Task => "task",
            DirectiveKind::Taskloop => "taskloop",
            DirectiveKind::Taskgroup => "taskgroup",
            DirectiveKind::Taskwait => "taskwait",
            DirectiveKind::Taskyield => "taskyield",
            DirectiveKind::Flush(_) => "flush",
            DirectiveKind::Threadprivate(_) => "threadprivate",
            DirectiveKind::Cancel(_) => "cancel",
            DirectiveKind::CancellationPoint(_) => "cancellation point",
            DirectiveKind::DeclareReduction { .. } => "declare reduction",
        }
    }

    /// Whether this directive opens a structured block (used with `with`).
    pub fn is_block(&self) -> bool {
        matches!(
            self,
            DirectiveKind::Parallel
                | DirectiveKind::For
                | DirectiveKind::ParallelFor
                | DirectiveKind::Sections
                | DirectiveKind::ParallelSections
                | DirectiveKind::Section
                | DirectiveKind::Single
                | DirectiveKind::Master
                | DirectiveKind::Critical(_)
                | DirectiveKind::Atomic
                | DirectiveKind::Ordered
                | DirectiveKind::Task
                | DirectiveKind::Taskloop
                | DirectiveKind::Taskgroup
        )
    }
}

/// The construct named by a `cancel`/`cancellation point` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelConstruct {
    /// The innermost enclosing `parallel` region.
    Parallel,
    /// The innermost enclosing work-shared loop.
    For,
    /// The innermost enclosing `sections` region.
    Sections,
    /// The current taskgroup (this runtime: the team's task queue).
    Taskgroup,
}

impl CancelConstruct {
    /// Parse a construct name.
    pub fn parse(s: &str) -> Option<CancelConstruct> {
        Some(match s {
            "parallel" => CancelConstruct::Parallel,
            "for" => CancelConstruct::For,
            "sections" => CancelConstruct::Sections,
            "taskgroup" => CancelConstruct::Taskgroup,
            _ => return None,
        })
    }

    /// Spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            CancelConstruct::Parallel => "parallel",
            CancelConstruct::For => "for",
            CancelConstruct::Sections => "sections",
            CancelConstruct::Taskgroup => "taskgroup",
        }
    }
}

impl fmt::Display for CancelConstruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `default(...)` clause argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultKind {
    /// `default(shared)`
    Shared,
    /// `default(none)`
    None,
    /// `default(private)` — OpenMP ≥ 5.0, included per the paper.
    Private,
    /// `default(firstprivate)` — OpenMP ≥ 5.0, included per the paper.
    Firstprivate,
}

/// `schedule(...)` kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleKind {
    /// Chunks assigned round-robin in advance.
    #[default]
    Static,
    /// Threads claim chunks from a shared counter as they finish.
    Dynamic,
    /// Decreasing chunk sizes from a shared counter.
    Guided,
    /// Implementation chooses (here: static).
    Auto,
    /// Taken from the `run-sched-var` ICV (`OMP_SCHEDULE` /
    /// `omp_set_schedule`).
    Runtime,
}

impl ScheduleKind {
    /// Parse a schedule kind name.
    pub fn parse(s: &str) -> Option<ScheduleKind> {
        Some(match s {
            "static" => ScheduleKind::Static,
            "dynamic" => ScheduleKind::Dynamic,
            "guided" => ScheduleKind::Guided,
            "auto" => ScheduleKind::Auto,
            "runtime" => ScheduleKind::Runtime,
            _ => return None,
        })
    }

    /// Spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::Static => "static",
            ScheduleKind::Dynamic => "dynamic",
            ScheduleKind::Guided => "guided",
            ScheduleKind::Auto => "auto",
            ScheduleKind::Runtime => "runtime",
        }
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Built-in reduction operators (OpenMP 3.0) plus user-declared identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    /// `+`
    Add,
    /// `-` (same combination as `+` per the spec)
    Sub,
    /// `*`
    Mul,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
    /// `min`
    Min,
    /// `max`
    Max,
    /// A `declare reduction` identifier.
    Custom(String),
}

impl ReductionOp {
    /// Parse a reduction operator token.
    pub fn parse(s: &str) -> ReductionOp {
        match s {
            "+" => ReductionOp::Add,
            "-" => ReductionOp::Sub,
            "*" => ReductionOp::Mul,
            "&" => ReductionOp::BitAnd,
            "|" => ReductionOp::BitOr,
            "^" => ReductionOp::BitXor,
            "&&" => ReductionOp::LogicalAnd,
            "||" => ReductionOp::LogicalOr,
            "min" => ReductionOp::Min,
            "max" => ReductionOp::Max,
            other => ReductionOp::Custom(other.to_owned()),
        }
    }

    /// Spec spelling.
    pub fn symbol(&self) -> &str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Sub => "-",
            ReductionOp::Mul => "*",
            ReductionOp::BitAnd => "&",
            ReductionOp::BitOr => "|",
            ReductionOp::BitXor => "^",
            ReductionOp::LogicalAnd => "&&",
            ReductionOp::LogicalOr => "||",
            ReductionOp::Min => "min",
            ReductionOp::Max => "max",
            ReductionOp::Custom(name) => name,
        }
    }
}

/// A parsed clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `private(a, b)`
    Private(Vec<String>),
    /// `firstprivate(a, b)`
    Firstprivate(Vec<String>),
    /// `lastprivate(a, b)`
    Lastprivate(Vec<String>),
    /// `shared(a, b)`
    Shared(Vec<String>),
    /// `copyin(a, b)`
    Copyin(Vec<String>),
    /// `copyprivate(a, b)`
    Copyprivate(Vec<String>),
    /// `default(kind)`
    Default(DefaultKind),
    /// `reduction(op: a, b)`
    Reduction {
        /// The operator.
        op: ReductionOp,
        /// The reduced variables.
        vars: Vec<String>,
    },
    /// `num_threads(expr)` — expression text evaluated by the host.
    NumThreads(String),
    /// `schedule(kind[, chunk-expr])`
    Schedule {
        /// The schedule kind.
        kind: ScheduleKind,
        /// Chunk-size expression text, if given.
        chunk: Option<String>,
    },
    /// `collapse(n)`
    Collapse(u32),
    /// `ordered`
    Ordered,
    /// `nowait` with the optional OpenMP 6.0 argument.
    Nowait(Option<String>),
    /// `if([modifier:] expr)`
    If {
        /// Optional directive-name modifier (e.g. `task`).
        modifier: Option<String>,
        /// Condition expression text.
        expr: String,
    },
    /// `final(expr)` (task)
    Final(String),
    /// `grainsize(expr)` (taskloop): target iterations per task.
    Grainsize(String),
    /// `num_tasks(expr)` (taskloop): target number of tasks.
    NumTasks(String),
    /// `nogroup` (taskloop): skip the implicit taskwait.
    Nogroup,
    /// `untied` (task)
    Untied,
    /// `mergeable` (task)
    Mergeable,
    /// `depend(kind: items)` (task) — each item is host-evaluated
    /// expression text naming a storage location.
    Depend {
        /// The dependence type.
        kind: DepKind,
        /// The dependence items (expression text, parens-aware split).
        items: Vec<String>,
    },
    /// `priority(expr)` (task/taskloop): scheduling hint, higher first.
    Priority(String),
}

impl Clause {
    /// Clause keyword, for error messages and duplicate checks.
    pub fn keyword(&self) -> &'static str {
        match self {
            Clause::Private(_) => "private",
            Clause::Firstprivate(_) => "firstprivate",
            Clause::Lastprivate(_) => "lastprivate",
            Clause::Shared(_) => "shared",
            Clause::Copyin(_) => "copyin",
            Clause::Copyprivate(_) => "copyprivate",
            Clause::Default(_) => "default",
            Clause::Reduction { .. } => "reduction",
            Clause::NumThreads(_) => "num_threads",
            Clause::Schedule { .. } => "schedule",
            Clause::Collapse(_) => "collapse",
            Clause::Ordered => "ordered",
            Clause::Nowait(_) => "nowait",
            Clause::If { .. } => "if",
            Clause::Final(_) => "final",
            Clause::Grainsize(_) => "grainsize",
            Clause::NumTasks(_) => "num_tasks",
            Clause::Nogroup => "nogroup",
            Clause::Untied => "untied",
            Clause::Mergeable => "mergeable",
            Clause::Depend { .. } => "depend",
            Clause::Priority(_) => "priority",
        }
    }
}

/// A fully parsed and validated directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// The directive name.
    pub kind: DirectiveKind,
    /// Its clauses, in source order.
    pub clauses: Vec<Clause>,
}

impl Directive {
    /// Parse and validate a directive string.
    ///
    /// # Errors
    ///
    /// Returns a [`DirectiveError`] for unknown directives/clauses, clauses
    /// not permitted on the directive, malformed arguments, or duplicated
    /// unique clauses.
    ///
    /// # Examples
    ///
    /// ```
    /// use omp4rs::directive::{Directive, DirectiveKind};
    ///
    /// # fn main() -> Result<(), omp4rs::directive::DirectiveError> {
    /// let d = Directive::parse("parallel for reduction(+: pi) num_threads(4)")?;
    /// assert_eq!(d.kind, DirectiveKind::ParallelFor);
    /// assert_eq!(d.clauses.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(text: &str) -> Result<Directive, DirectiveError> {
        let mut p = DirParser::new(text);
        let directive = p.parse_directive()?;
        validate(&directive)?;
        Ok(directive)
    }

    /// Find the first clause matching a predicate.
    pub fn find_clause<'a, T>(&'a self, f: impl Fn(&'a Clause) -> Option<T>) -> Option<T> {
        self.clauses.iter().find_map(f)
    }

    /// All variables named in `private` clauses.
    pub fn private_vars(&self) -> Vec<&str> {
        self.collect_vars(|c| match c {
            Clause::Private(v) => Some(v),
            _ => None,
        })
    }

    /// All variables named in `firstprivate` clauses.
    pub fn firstprivate_vars(&self) -> Vec<&str> {
        self.collect_vars(|c| match c {
            Clause::Firstprivate(v) => Some(v),
            _ => None,
        })
    }

    /// All variables named in `lastprivate` clauses.
    pub fn lastprivate_vars(&self) -> Vec<&str> {
        self.collect_vars(|c| match c {
            Clause::Lastprivate(v) => Some(v),
            _ => None,
        })
    }

    /// All variables named in `shared` clauses.
    pub fn shared_vars(&self) -> Vec<&str> {
        self.collect_vars(|c| match c {
            Clause::Shared(v) => Some(v),
            _ => None,
        })
    }

    /// All `(op, var)` reduction pairs.
    pub fn reductions(&self) -> Vec<(&ReductionOp, &str)> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Clause::Reduction { op, vars } = c {
                for v in vars {
                    out.push((op, v.as_str()));
                }
            }
        }
        out
    }

    /// The `nowait` flag.
    pub fn has_nowait(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::Nowait(_)))
    }

    /// The `ordered` flag.
    pub fn has_ordered(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::Ordered))
    }

    /// The `collapse(n)` value (defaults to 1).
    pub fn collapse(&self) -> u32 {
        self.find_clause(|c| match c {
            Clause::Collapse(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(1)
    }

    /// The `schedule` clause, if present.
    pub fn schedule(&self) -> Option<(ScheduleKind, Option<&str>)> {
        self.find_clause(|c| match c {
            Clause::Schedule { kind, chunk } => Some((*kind, chunk.as_deref())),
            _ => None,
        })
    }

    /// The `if` clause expression applying to this directive, if present.
    pub fn if_expr(&self) -> Option<&str> {
        self.find_clause(|c| match c {
            Clause::If { expr, .. } => Some(expr.as_str()),
            _ => None,
        })
    }

    /// The `num_threads` clause expression, if present.
    pub fn num_threads_expr(&self) -> Option<&str> {
        self.find_clause(|c| match c {
            Clause::NumThreads(e) => Some(e.as_str()),
            _ => None,
        })
    }

    /// All `(kind, item)` pairs from `depend` clauses, in source order.
    pub fn depends(&self) -> Vec<(DepKind, &str)> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Clause::Depend { kind, items } = c {
                for item in items {
                    out.push((*kind, item.as_str()));
                }
            }
        }
        out
    }

    /// The `priority` clause expression, if present.
    pub fn priority_expr(&self) -> Option<&str> {
        self.find_clause(|c| match c {
            Clause::Priority(e) => Some(e.as_str()),
            _ => None,
        })
    }

    /// The `default(...)` kind, if present.
    pub fn default_kind(&self) -> Option<DefaultKind> {
        self.find_clause(|c| match c {
            Clause::Default(k) => Some(*k),
            _ => None,
        })
    }

    fn collect_vars<'a>(
        &'a self,
        f: impl Fn(&'a Clause) -> Option<&'a Vec<String>>,
    ) -> Vec<&'a str> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Some(vars) = f(c) {
                out.extend(vars.iter().map(String::as_str));
            }
        }
        out
    }
}

// ---- parser -------------------------------------------------------------

struct DirParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DirParser<'a> {
    fn new(text: &'a str) -> DirParser<'a> {
        DirParser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_whitespace() || self.bytes[self.pos] == b';')
        {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.bytes.len()
    }

    fn word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(&self.text[start..self.pos])
        }
    }

    fn peek_word(&mut self) -> Option<&'a str> {
        let save = self.pos;
        let w = self.word();
        self.pos = save;
        w
    }

    /// Balanced-paren argument: consumes `( ... )`, returns the inside.
    fn paren_arg(&mut self) -> Result<Option<&'a str>, DirectiveError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'(' {
            return Ok(None);
        }
        let open = self.pos;
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = &self.text[start..self.pos];
                        self.pos += 1;
                        return Ok(Some(inner));
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(DirectiveError::at("unbalanced parenthesis", open))
    }

    fn parse_directive(&mut self) -> Result<Directive, DirectiveError> {
        let first = self
            .word()
            .ok_or_else(|| DirectiveError::new("empty directive"))?;

        // Combined names may use underscores (OpenMP 6.0 syntax): split them.
        let mut parts: Vec<&str> = first.split('_').filter(|s| !s.is_empty()).collect();
        if parts.is_empty() {
            return Err(DirectiveError::new("empty directive"));
        }
        // `num_threads` etc. must not be split — only split when the first
        // fragment is a directive name.
        if !is_directive_word(parts[0]) {
            parts = vec![first];
        }

        let head = parts[0];
        let mut clauses = Vec::new();
        let kind = match head {
            "parallel" => {
                let second = if parts.len() > 1 {
                    Some(parts[1].to_owned())
                } else if matches!(self.peek_word(), Some("for") | Some("sections")) {
                    self.word().map(str::to_owned)
                } else {
                    None
                };
                match second.as_deref() {
                    Some("for") => DirectiveKind::ParallelFor,
                    Some("sections") => DirectiveKind::ParallelSections,
                    Some(other) => {
                        return Err(DirectiveError::new(format!(
                            "unknown combined directive 'parallel {other}'"
                        )))
                    }
                    None => DirectiveKind::Parallel,
                }
            }
            "for" => DirectiveKind::For,
            "sections" => DirectiveKind::Sections,
            "section" => DirectiveKind::Section,
            "single" => DirectiveKind::Single,
            "master" => DirectiveKind::Master,
            "critical" => {
                let name = self
                    .paren_arg()?
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty());
                DirectiveKind::Critical(name)
            }
            "barrier" => DirectiveKind::Barrier,
            "atomic" => DirectiveKind::Atomic,
            "ordered" => DirectiveKind::Ordered,
            "task" => DirectiveKind::Task,
            "taskloop" => DirectiveKind::Taskloop,
            "taskgroup" => DirectiveKind::Taskgroup,
            "taskwait" => DirectiveKind::Taskwait,
            "taskyield" => DirectiveKind::Taskyield,
            "cancel" => {
                let arg = self.paren_arg()?.ok_or_else(|| {
                    DirectiveError::new("cancel requires a construct argument, e.g. cancel(for)")
                })?;
                let (construct, if_clause) = parse_cancel_arg(arg)?;
                if let Some(c) = if_clause {
                    clauses.push(c);
                }
                DirectiveKind::Cancel(construct)
            }
            "cancellation" => {
                // `cancellation point(...)` / `cancellation_point(...)`.
                let second = if parts.len() > 1 {
                    Some(parts[1].to_owned())
                } else {
                    self.word().map(str::to_owned)
                };
                if second.as_deref() != Some("point") {
                    return Err(DirectiveError::new("expected 'cancellation point'"));
                }
                let arg = self.paren_arg()?.ok_or_else(|| {
                    DirectiveError::new(
                        "cancellation point requires a construct argument, \
                         e.g. cancellation point(for)",
                    )
                })?;
                let (construct, if_clause) = parse_cancel_arg(arg)?;
                if if_clause.is_some() {
                    return Err(DirectiveError::new(
                        "cancellation point does not take an if clause",
                    ));
                }
                DirectiveKind::CancellationPoint(construct)
            }
            "flush" => {
                let vars = match self.paren_arg()? {
                    Some(arg) => split_names(arg)?,
                    None => Vec::new(),
                };
                DirectiveKind::Flush(vars)
            }
            "threadprivate" => {
                let arg = self
                    .paren_arg()?
                    .ok_or_else(|| DirectiveError::new("threadprivate requires a variable list"))?;
                DirectiveKind::Threadprivate(split_names(arg)?)
            }
            "declare" => {
                let second = self.word().or_else(|| parts.get(1).copied());
                if second != Some("reduction") {
                    return Err(DirectiveError::new("expected 'declare reduction'"));
                }
                let arg = self.paren_arg()?.ok_or_else(|| {
                    DirectiveError::new("declare reduction requires '(name : combiner)'")
                })?;
                let mut pieces = arg.splitn(2, ':');
                let name = pieces
                    .next()
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| DirectiveError::new("declare reduction: missing name"))?;
                let combiner = pieces
                    .next()
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| DirectiveError::new("declare reduction: missing combiner"))?;
                // Optional trailing `initializer(...)` clause.
                let initializer = {
                    let save = self.pos;
                    match self.word() {
                        Some("initializer") => self.paren_arg()?.map(|s| s.trim().to_owned()),
                        _ => {
                            self.pos = save;
                            None
                        }
                    }
                };
                return Ok(Directive {
                    kind: DirectiveKind::DeclareReduction {
                        name: name.to_owned(),
                        combiner: combiner.to_owned(),
                        initializer,
                    },
                    clauses: Vec::new(),
                });
            }
            other => return Err(DirectiveError::new(format!("unknown directive '{other}'"))),
        };

        while !self.at_end() {
            let offset = self.pos;
            let name = self
                .word()
                .ok_or_else(|| DirectiveError::at("expected clause name", offset))?;
            clauses.push(self.parse_clause(name, offset)?);
        }
        Ok(Directive { kind, clauses })
    }

    fn parse_clause(&mut self, name: &str, offset: usize) -> Result<Clause, DirectiveError> {
        let require_arg = |arg: Option<&'a str>| {
            arg.ok_or_else(|| {
                DirectiveError::at(format!("clause '{name}' requires an argument"), offset)
            })
        };
        Ok(match name {
            "private" => Clause::Private(split_names(require_arg(self.paren_arg()?)?)?),
            "firstprivate" => Clause::Firstprivate(split_names(require_arg(self.paren_arg()?)?)?),
            "lastprivate" => Clause::Lastprivate(split_names(require_arg(self.paren_arg()?)?)?),
            "shared" => Clause::Shared(split_names(require_arg(self.paren_arg()?)?)?),
            "copyin" => Clause::Copyin(split_names(require_arg(self.paren_arg()?)?)?),
            "copyprivate" => Clause::Copyprivate(split_names(require_arg(self.paren_arg()?)?)?),
            "default" => {
                let arg = require_arg(self.paren_arg()?)?.trim();
                let kind = match arg {
                    "shared" => DefaultKind::Shared,
                    "none" => DefaultKind::None,
                    "private" => DefaultKind::Private,
                    "firstprivate" => DefaultKind::Firstprivate,
                    other => {
                        return Err(DirectiveError::at(
                            format!("invalid default kind '{other}'"),
                            offset,
                        ))
                    }
                };
                Clause::Default(kind)
            }
            "reduction" => {
                let arg = require_arg(self.paren_arg()?)?;
                let (op_text, vars_text) = arg.split_once(':').ok_or_else(|| {
                    DirectiveError::at("reduction clause requires 'op : vars'", offset)
                })?;
                let op_text = op_text.trim();
                if op_text.is_empty() {
                    return Err(DirectiveError::at("reduction: missing operator", offset));
                }
                Clause::Reduction {
                    op: ReductionOp::parse(op_text),
                    vars: split_names(vars_text)?,
                }
            }
            "num_threads" => Clause::NumThreads(require_arg(self.paren_arg()?)?.trim().to_owned()),
            "schedule" => {
                let arg = require_arg(self.paren_arg()?)?;
                let mut pieces = arg.splitn(2, ',');
                let kind_text = pieces.next().unwrap_or("").trim();
                let kind = ScheduleKind::parse(kind_text).ok_or_else(|| {
                    DirectiveError::at(format!("invalid schedule kind '{kind_text}'"), offset)
                })?;
                let chunk = pieces
                    .next()
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty());
                if kind == ScheduleKind::Runtime && chunk.is_some() {
                    return Err(DirectiveError::at(
                        "schedule(runtime) must not specify a chunk size",
                        offset,
                    ));
                }
                Clause::Schedule { kind, chunk }
            }
            "collapse" => {
                let arg = require_arg(self.paren_arg()?)?.trim().to_owned();
                let n: u32 = arg.parse().map_err(|_| {
                    DirectiveError::at("collapse requires a positive integer constant", offset)
                })?;
                if n == 0 {
                    return Err(DirectiveError::at("collapse argument must be >= 1", offset));
                }
                Clause::Collapse(n)
            }
            "ordered" => Clause::Ordered,
            "nowait" => Clause::Nowait(self.paren_arg()?.map(|s| s.trim().to_owned())),
            "if" => {
                let arg = require_arg(self.paren_arg()?)?;
                match arg.split_once(':') {
                    Some((modifier, expr)) if is_directive_word(modifier.trim()) => Clause::If {
                        modifier: Some(modifier.trim().to_owned()),
                        expr: expr.trim().to_owned(),
                    },
                    _ => Clause::If {
                        modifier: None,
                        expr: arg.trim().to_owned(),
                    },
                }
            }
            "final" => Clause::Final(require_arg(self.paren_arg()?)?.trim().to_owned()),
            "depend" => {
                let arg = require_arg(self.paren_arg()?)?;
                let (kind_text, items_text) = arg.split_once(':').ok_or_else(|| {
                    DirectiveError::at("depend clause requires 'type : list'", offset)
                })?;
                let kind_text = kind_text.trim();
                let kind = DepKind::parse(kind_text).ok_or_else(|| {
                    DirectiveError::at(
                        format!("invalid depend type '{kind_text}' (expected in, out, or inout)"),
                        offset,
                    )
                })?;
                Clause::Depend {
                    kind,
                    items: split_exprs(items_text)?,
                }
            }
            "priority" => Clause::Priority(require_arg(self.paren_arg()?)?.trim().to_owned()),
            "grainsize" => Clause::Grainsize(require_arg(self.paren_arg()?)?.trim().to_owned()),
            "num_tasks" => Clause::NumTasks(require_arg(self.paren_arg()?)?.trim().to_owned()),
            "nogroup" => Clause::Nogroup,
            "untied" => Clause::Untied,
            "mergeable" => Clause::Mergeable,
            other => {
                return Err(DirectiveError::at(
                    format!("unknown clause '{other}'"),
                    offset,
                ))
            }
        })
    }
}

fn is_directive_word(s: &str) -> bool {
    matches!(
        s,
        "parallel"
            | "for"
            | "sections"
            | "section"
            | "single"
            | "master"
            | "critical"
            | "barrier"
            | "atomic"
            | "ordered"
            | "task"
            | "taskloop"
            | "taskgroup"
            | "taskwait"
            | "taskyield"
            | "flush"
            | "threadprivate"
            | "cancel"
            | "cancellation"
            | "declare"
    )
}

/// Parse the inside of a `cancel(...)`/`cancellation point(...)` argument:
/// a construct name, optionally followed by `, if(expr)` (spec-style inline
/// `if`).
fn parse_cancel_arg(arg: &str) -> Result<(CancelConstruct, Option<Clause>), DirectiveError> {
    let (head, rest) = match arg.split_once(',') {
        Some((h, r)) => (h, Some(r)),
        None => (arg, None),
    };
    let head = head.trim();
    let construct = CancelConstruct::parse(head).ok_or_else(|| {
        DirectiveError::new(format!(
            "invalid cancel construct '{head}' (expected parallel, for, sections, or taskgroup)"
        ))
    })?;
    let if_clause = match rest {
        Some(r) => {
            let r = r.trim();
            let expr = r
                .strip_prefix("if")
                .map(str::trim_start)
                .and_then(|s| s.strip_prefix('('))
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| {
                    DirectiveError::new(format!(
                        "expected 'if(expr)' after the cancel construct, got '{r}'"
                    ))
                })?;
            Some(Clause::If {
                modifier: None,
                expr: expr.trim().to_owned(),
            })
        }
        None => None,
    };
    Ok((construct, if_clause))
}

/// Split a comma-separated *expression* list (`depend` items) at top-level
/// commas only: unlike [`split_names`], items may be arbitrary host
/// expressions (`a[i][j]`, `key(i, j)`), so commas inside brackets or
/// parens do not split.
fn split_exprs(arg: &str) -> Result<Vec<String>, DirectiveError> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, ch) in arg.char_indices() {
        match ch {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(arg[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(DirectiveError::new("unbalanced brackets in depend list"));
    }
    out.push(arg[start..].trim());
    if out.iter().any(|s| s.is_empty()) {
        return Err(DirectiveError::new("empty item in depend list"));
    }
    Ok(out.into_iter().map(str::to_owned).collect())
}

fn split_names(arg: &str) -> Result<Vec<String>, DirectiveError> {
    let mut out = Vec::new();
    for part in arg.split(',') {
        let name = part.trim();
        if name.is_empty() {
            return Err(DirectiveError::new("empty name in variable list"));
        }
        if !name.chars().all(|c| c.is_alphanumeric() || c == '_')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(DirectiveError::new(format!(
                "invalid variable name '{name}'"
            )));
        }
        out.push(name.to_owned());
    }
    Ok(out)
}

// ---- validation -----------------------------------------------------------

/// Which clauses each directive admits (OpenMP 3.0 tables, plus the paper's
/// extensions: `if` on `task`, `nowait` argument, `default` variants).
fn allowed_clauses(kind: &DirectiveKind) -> &'static [&'static str] {
    match kind {
        DirectiveKind::Parallel => &[
            "if",
            "num_threads",
            "default",
            "private",
            "firstprivate",
            "shared",
            "copyin",
            "reduction",
        ],
        DirectiveKind::For => &[
            "private",
            "firstprivate",
            "lastprivate",
            "reduction",
            "schedule",
            "collapse",
            "ordered",
            "nowait",
        ],
        DirectiveKind::ParallelFor => &[
            "if",
            "num_threads",
            "default",
            "private",
            "firstprivate",
            "lastprivate",
            "shared",
            "copyin",
            "reduction",
            "schedule",
            "collapse",
            "ordered",
        ],
        DirectiveKind::Sections => &[
            "private",
            "firstprivate",
            "lastprivate",
            "reduction",
            "nowait",
        ],
        DirectiveKind::ParallelSections => &[
            "if",
            "num_threads",
            "default",
            "private",
            "firstprivate",
            "lastprivate",
            "shared",
            "copyin",
            "reduction",
        ],
        DirectiveKind::Section => &[],
        DirectiveKind::Single => &["private", "firstprivate", "copyprivate", "nowait"],
        DirectiveKind::Master => &[],
        DirectiveKind::Critical(_) => &[],
        DirectiveKind::Barrier => &[],
        DirectiveKind::Atomic => &[],
        DirectiveKind::Ordered => &[],
        DirectiveKind::Task => &[
            "if",
            "final",
            "untied",
            "mergeable",
            "default",
            "private",
            "firstprivate",
            "shared",
            "depend",
            "priority",
        ],
        DirectiveKind::Taskloop => &[
            "if",
            "final",
            "untied",
            "mergeable",
            "default",
            "private",
            "firstprivate",
            "shared",
            "grainsize",
            "num_tasks",
            "nogroup",
            "priority",
        ],
        DirectiveKind::Taskgroup => &[],
        DirectiveKind::Taskwait | DirectiveKind::Taskyield => &[],
        DirectiveKind::Cancel(_) => &["if"],
        DirectiveKind::CancellationPoint(_) => &[],
        DirectiveKind::Flush(_) | DirectiveKind::Threadprivate(_) => &[],
        DirectiveKind::DeclareReduction { .. } => &[],
    }
}

/// Clauses that may appear at most once on a directive.
const UNIQUE_CLAUSES: &[&str] = &[
    "default",
    "num_threads",
    "schedule",
    "collapse",
    "if",
    "final",
    "nowait",
    "ordered",
    "grainsize",
    "num_tasks",
    "nogroup",
    "priority",
];

fn validate(d: &Directive) -> Result<(), DirectiveError> {
    let allowed = allowed_clauses(&d.kind);
    let mut seen: Vec<&str> = Vec::new();
    for clause in &d.clauses {
        let kw = clause.keyword();
        if !allowed.contains(&kw) {
            return Err(DirectiveError::new(format!(
                "clause '{kw}' is not valid on directive '{}'",
                d.kind.name()
            )));
        }
        if UNIQUE_CLAUSES.contains(&kw) && seen.contains(&kw) {
            return Err(DirectiveError::new(format!(
                "duplicate '{kw}' clause on directive '{}'",
                d.kind.name()
            )));
        }
        seen.push(kw);
    }
    // A variable may appear in at most one data-sharing clause.
    let mut data_vars: Vec<&str> = Vec::new();
    for clause in &d.clauses {
        let vars: Option<&Vec<String>> = match clause {
            Clause::Private(v)
            | Clause::Firstprivate(v)
            | Clause::Lastprivate(v)
            | Clause::Shared(v) => Some(v),
            Clause::Reduction { vars, .. } => Some(vars),
            _ => None,
        };
        if let Some(vars) = vars {
            for v in vars {
                // firstprivate+lastprivate on the same var is legal in 3.0;
                // treat that single combination as allowed.
                let is_fl = matches!(clause, Clause::Firstprivate(_) | Clause::Lastprivate(_));
                if data_vars.contains(&v.as_str()) && !is_fl {
                    return Err(DirectiveError::new(format!(
                        "variable '{v}' appears in multiple data-sharing clauses"
                    )));
                }
                data_vars.push(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_parallel() {
        let d = Directive::parse("parallel").unwrap();
        assert_eq!(d.kind, DirectiveKind::Parallel);
        assert!(d.clauses.is_empty());
    }

    #[test]
    fn parse_combined_parallel_for() {
        let d = Directive::parse("parallel for reduction(+:pi_value)").unwrap();
        assert_eq!(d.kind, DirectiveKind::ParallelFor);
        let reds = d.reductions();
        assert_eq!(reds.len(), 1);
        assert_eq!(*reds[0].0, ReductionOp::Add);
        assert_eq!(reds[0].1, "pi_value");
    }

    #[test]
    fn parse_underscore_combined_name() {
        // OpenMP 6.0 syntax: underscores in combined directives.
        let d = Directive::parse("parallel_for schedule(static)").unwrap();
        assert_eq!(d.kind, DirectiveKind::ParallelFor);
        let d = Directive::parse("parallel_sections").unwrap();
        assert_eq!(d.kind, DirectiveKind::ParallelSections);
    }

    #[test]
    fn semicolon_clause_separators() {
        // OpenMP 6.0 syntax: semicolons between clauses.
        let d = Directive::parse("parallel num_threads(4); default(shared)").unwrap();
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn schedule_clause_forms() {
        let d = Directive::parse("for schedule(dynamic, 300)").unwrap();
        assert_eq!(d.schedule(), Some((ScheduleKind::Dynamic, Some("300"))));
        let d = Directive::parse("for schedule(guided)").unwrap();
        assert_eq!(d.schedule(), Some((ScheduleKind::Guided, None)));
        let d = Directive::parse("for schedule(runtime)").unwrap();
        assert_eq!(d.schedule(), Some((ScheduleKind::Runtime, None)));
        assert!(Directive::parse("for schedule(runtime, 4)").is_err());
        assert!(Directive::parse("for schedule(bogus)").is_err());
    }

    #[test]
    fn chunk_may_be_expression() {
        let d = Directive::parse("for schedule(dynamic, n // 2)").unwrap();
        assert_eq!(d.schedule(), Some((ScheduleKind::Dynamic, Some("n // 2"))));
    }

    #[test]
    fn num_threads_expression() {
        let d = Directive::parse("parallel num_threads(2 * n)").unwrap();
        assert_eq!(d.num_threads_expr(), Some("2 * n"));
    }

    #[test]
    fn data_sharing_clauses() {
        let d = Directive::parse("parallel private(a, b) firstprivate(c) shared(d) default(none)")
            .unwrap();
        assert_eq!(d.private_vars(), vec!["a", "b"]);
        assert_eq!(d.firstprivate_vars(), vec!["c"]);
        assert_eq!(d.shared_vars(), vec!["d"]);
        assert_eq!(d.default_kind(), Some(DefaultKind::None));
    }

    #[test]
    fn default_50_variants_accepted() {
        assert!(Directive::parse("parallel default(private)").is_ok());
        assert!(Directive::parse("parallel default(firstprivate)").is_ok());
        assert!(Directive::parse("parallel default(everything)").is_err());
    }

    #[test]
    fn critical_with_name() {
        let d = Directive::parse("critical(update)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Critical(Some("update".into())));
        let d = Directive::parse("critical").unwrap();
        assert_eq!(d.kind, DirectiveKind::Critical(None));
    }

    #[test]
    fn task_with_if_and_final() {
        let d = Directive::parse("task if(n > 20) final(n < 5) untied").unwrap();
        assert_eq!(d.kind, DirectiveKind::Task);
        assert_eq!(d.if_expr(), Some("n > 20"));
    }

    #[test]
    fn if_with_directive_modifier() {
        let d = Directive::parse("task if(task: depth < 4)").unwrap();
        match &d.clauses[0] {
            Clause::If { modifier, expr } => {
                assert_eq!(modifier.as_deref(), Some("task"));
                assert_eq!(expr, "depth < 4");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_with_colon_expression_no_modifier() {
        // A colon inside a dict-ish expression must not be mistaken for a
        // modifier.
        let d = Directive::parse("task if(d[k: 2])").unwrap();
        match &d.clauses[0] {
            Clause::If { modifier, .. } => assert!(modifier.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nowait_with_optional_argument() {
        let d = Directive::parse("for nowait").unwrap();
        assert!(d.has_nowait());
        let d = Directive::parse("for nowait(1)").unwrap();
        assert!(d.has_nowait());
    }

    #[test]
    fn collapse_validation() {
        let d = Directive::parse("for collapse(2)").unwrap();
        assert_eq!(d.collapse(), 2);
        assert!(Directive::parse("for collapse(0)").is_err());
        assert!(Directive::parse("for collapse(x)").is_err());
    }

    #[test]
    fn clause_placement_validated() {
        assert!(Directive::parse("parallel schedule(static)").is_err());
        assert!(Directive::parse("barrier nowait").is_err());
        assert!(Directive::parse("single reduction(+:x)").is_err());
        assert!(Directive::parse("task schedule(dynamic)").is_err());
        // parallel for takes schedule but not nowait.
        assert!(Directive::parse("parallel for nowait").is_err());
    }

    #[test]
    fn duplicate_unique_clause_rejected() {
        assert!(Directive::parse("parallel num_threads(2) num_threads(4)").is_err());
        assert!(Directive::parse("for schedule(static) schedule(dynamic)").is_err());
        // Repeatable clauses are fine.
        assert!(Directive::parse("parallel private(a) private(b)").is_ok());
    }

    #[test]
    fn variable_in_two_data_clauses_rejected() {
        assert!(Directive::parse("parallel private(x) shared(x)").is_err());
        assert!(Directive::parse("parallel for reduction(+:x) private(x)").is_err());
        // firstprivate+lastprivate together is allowed by 3.0.
        assert!(Directive::parse("for firstprivate(x) lastprivate(x)").is_ok());
    }

    #[test]
    fn reduction_operators() {
        for (text, op) in [
            ("+", ReductionOp::Add),
            ("-", ReductionOp::Sub),
            ("*", ReductionOp::Mul),
            ("&", ReductionOp::BitAnd),
            ("|", ReductionOp::BitOr),
            ("^", ReductionOp::BitXor),
            ("&&", ReductionOp::LogicalAnd),
            ("||", ReductionOp::LogicalOr),
            ("min", ReductionOp::Min),
            ("max", ReductionOp::Max),
        ] {
            let d = Directive::parse(&format!("for reduction({text}: x)")).unwrap();
            assert_eq!(*d.reductions()[0].0, op, "operator {text}");
        }
        let d = Directive::parse("for reduction(my_add: x)").unwrap();
        assert_eq!(*d.reductions()[0].0, ReductionOp::Custom("my_add".into()));
    }

    #[test]
    fn declare_reduction() {
        let d = Directive::parse("declare reduction(sumsq : a + b * b)").unwrap();
        match d.kind {
            DirectiveKind::DeclareReduction {
                name,
                combiner,
                initializer,
            } => {
                assert_eq!(name, "sumsq");
                assert_eq!(combiner, "a + b * b");
                assert!(initializer.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        let d = Directive::parse("declare reduction(m : merge(a, b)) initializer({})").unwrap();
        match d.kind {
            DirectiveKind::DeclareReduction { initializer, .. } => {
                assert_eq!(initializer.as_deref(), Some("{}"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancel_directive_forms() {
        for (text, construct) in [
            ("cancel(parallel)", CancelConstruct::Parallel),
            ("cancel(for)", CancelConstruct::For),
            ("cancel(sections)", CancelConstruct::Sections),
            ("cancel(taskgroup)", CancelConstruct::Taskgroup),
        ] {
            let d = Directive::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(d.kind, DirectiveKind::Cancel(construct), "{text}");
            assert!(d.clauses.is_empty());
        }
    }

    #[test]
    fn cancel_with_if_inline_and_trailing() {
        // Spec-style inline `if` inside the parens…
        let d = Directive::parse("cancel(for, if(err > 0))").unwrap();
        assert_eq!(d.kind, DirectiveKind::Cancel(CancelConstruct::For));
        assert_eq!(d.if_expr(), Some("err > 0"));
        // …and as a trailing clause.
        let d = Directive::parse("cancel(taskgroup) if(count(a, b) > 3)").unwrap();
        assert_eq!(d.if_expr(), Some("count(a, b) > 3"));
        // Commas inside the if expression survive the inline form.
        let d = Directive::parse("cancel(for, if(f(a, b)))").unwrap();
        assert_eq!(d.if_expr(), Some("f(a, b)"));
    }

    #[test]
    fn cancellation_point_forms() {
        let d = Directive::parse("cancellation point(for)").unwrap();
        assert_eq!(
            d.kind,
            DirectiveKind::CancellationPoint(CancelConstruct::For)
        );
        let d = Directive::parse("cancellation_point(parallel)").unwrap();
        assert_eq!(
            d.kind,
            DirectiveKind::CancellationPoint(CancelConstruct::Parallel)
        );
    }

    #[test]
    fn cancel_errors_are_descriptive() {
        let err = Directive::parse("cancel").unwrap_err();
        assert!(err.msg.contains("construct"));
        let err = Directive::parse("cancel(loop)").unwrap_err();
        assert!(err.msg.contains("loop"));
        let err = Directive::parse("cancellation point(for) if(x)").unwrap_err();
        assert!(err.msg.contains("if"));
        assert!(Directive::parse("cancellation(for)").is_err());
        assert!(Directive::parse("cancel(for) nowait").is_err());
    }

    #[test]
    fn flush_and_threadprivate() {
        let d = Directive::parse("flush(a, b)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Flush(vec!["a".into(), "b".into()]));
        let d = Directive::parse("flush").unwrap();
        assert_eq!(d.kind, DirectiveKind::Flush(vec![]));
        let d = Directive::parse("threadprivate(counter)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Threadprivate(vec!["counter".into()]));
        assert!(Directive::parse("threadprivate").is_err());
    }

    #[test]
    fn standalone_directives() {
        for text in [
            "barrier",
            "taskwait",
            "taskyield",
            "master",
            "atomic",
            "ordered",
            "section",
            "single",
        ] {
            Directive::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let err = Directive::parse("paralel").unwrap_err();
        assert!(err.msg.contains("paralel"));
        let err = Directive::parse("parallel bogus_clause").unwrap_err();
        assert!(err.msg.contains("bogus_clause"));
        let err = Directive::parse("for schedule(dynamic").unwrap_err();
        assert!(err.msg.contains("unbalanced"));
        let err = Directive::parse("for reduction(x)").unwrap_err();
        assert!(err.msg.contains("op : vars"));
    }

    #[test]
    fn invalid_variable_names_rejected() {
        assert!(Directive::parse("parallel private(2bad)").is_err());
        assert!(Directive::parse("parallel private(a, )").is_err());
        assert!(Directive::parse("parallel private(a b)").is_err());
    }

    #[test]
    fn depend_clause_forms() {
        let d = Directive::parse("task depend(in: a, b) depend(out: c)").unwrap();
        assert_eq!(
            d.depends(),
            vec![(DepKind::In, "a"), (DepKind::In, "b"), (DepKind::Out, "c"),]
        );
        // Items are expressions: commas inside brackets/parens do not split.
        let d = Directive::parse("task depend(inout: m[i][j], key(i, j))").unwrap();
        assert_eq!(
            d.depends(),
            vec![(DepKind::Inout, "m[i][j]"), (DepKind::Inout, "key(i, j)")]
        );
        assert!(
            Directive::parse("task depend(a, b)").is_err(),
            "missing type"
        );
        assert!(Directive::parse("task depend(rw: a)").is_err(), "bad type");
        assert!(Directive::parse("task depend(in: )").is_err(), "empty list");
        assert!(
            Directive::parse("task depend(in: a[)").is_err(),
            "unbalanced"
        );
        assert!(Directive::parse("for depend(in: a)").is_err(), "placement");
    }

    #[test]
    fn priority_clause() {
        let d = Directive::parse("task priority(3) depend(out: x)").unwrap();
        assert_eq!(d.priority_expr(), Some("3"));
        let d = Directive::parse("taskloop priority(n + 1) grainsize(4)").unwrap();
        assert_eq!(d.priority_expr(), Some("n + 1"));
        assert!(Directive::parse("task priority(1) priority(2)").is_err());
        assert!(Directive::parse("parallel priority(1)").is_err());
    }

    #[test]
    fn taskgroup_directive() {
        let d = Directive::parse("taskgroup").unwrap();
        assert_eq!(d.kind, DirectiveKind::Taskgroup);
        assert!(d.kind.is_block());
        assert!(d.clauses.is_empty());
        assert!(Directive::parse("taskgroup nowait").is_err());
    }

    #[test]
    fn paper_figure1_directive() {
        // The exact directive from Fig. 1 of the paper.
        let d = Directive::parse("parallel for reduction(+:pi_value)").unwrap();
        assert_eq!(d.kind, DirectiveKind::ParallelFor);
        assert_eq!(d.reductions(), vec![(&ReductionOp::Add, "pi_value")]);
    }
}
