//! Deterministic fault injection and cancellation, end to end.
//!
//! The invariant under test: a panicking team thread must never hang the
//! region. The team is poisoned, every waiter wakes, the surviving threads
//! run to the region exit, and the first captured panic re-raises after the
//! join — in both synchronization backends.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::faults::{self, FaultPlan, FaultSite};
use omp4rs::{Backend, Icvs, InjectedFault, ScheduleKind};

const BACKENDS: [Backend; 2] = [Backend::Mutex, Backend::Atomic];

/// Generous bound: a healthy poisoned-region exit takes milliseconds; only
/// a real deadlock (the bug this PR guards against) would reach this.
const HANG_LIMIT: Duration = Duration::from_secs(30);

fn cfg(backend: Backend, threads: usize) -> ParallelConfig {
    ParallelConfig::new().num_threads(threads).backend(backend)
}

/// Run `f` with the cancel-var ICV enabled, serialized against the other
/// ICV-flipping tests in this binary.
fn with_cancellation(f: impl FnOnce()) {
    static ICV_LOCK: Mutex<()> = Mutex::new(());
    let _lock = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = Icvs::current();
    Icvs::update(|icvs| icvs.cancellation = true);
    let result = catch_unwind(AssertUnwindSafe(f));
    Icvs::reset(before);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

#[test]
fn panic_at_first_barrier_arrival_reraises_bounded() {
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF001).panic_at(FaultSite::BarrierArrival, 1));
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 4), |ctx| {
                // The first thread to arrive here panics; its 3 teammates
                // must not deadlock waiting for it.
                ctx.barrier();
            });
        }));
        let payload = result.expect_err("the injected fault must re-raise after the join");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::BarrierArrival);
        assert_eq!(fault.occurrence, 1);
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

#[test]
fn panic_at_the_implicit_end_barrier_is_caught() {
    // With an empty body the first barrier arrival IS the implicit region-end
    // barrier — the panic unwinds outside the body's catch_unwind and must
    // still poison the team rather than strand the teammates parked there.
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF002).panic_at(FaultSite::BarrierArrival, 1));
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 4), |_ctx| {});
        }));
        let payload = result.expect_err("fault at the end barrier must re-raise");
        assert!(payload.downcast_ref::<InjectedFault>().is_some());
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

#[test]
fn panic_inside_a_task_is_contained_then_reraised() {
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF003).panic_at(FaultSite::TaskExecute, 1));
        let executed = AtomicUsize::new(0);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 2), |ctx| {
                ctx.single(|| {
                    for _ in 0..4 {
                        ctx.task(|_| {
                            executed.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        }));
        // The paper's rule: an exception never escapes a *running* task —
        // the region completes (later tasks may still run) and the panic
        // re-raises after the join.
        let payload = result.expect_err("task fault must re-raise after the join");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::TaskExecute);
        assert!(executed.load(Ordering::SeqCst) < 4);
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

#[test]
fn panic_at_a_chunk_claim_poisons_the_loop() {
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF004).panic_at(FaultSite::ChunkClaim, 5));
        let executed = AtomicUsize::new(0);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 2), |ctx| {
                ctx.for_each(
                    ForSpec::new().schedule(ScheduleKind::Dynamic, Some(1)),
                    0..100_000,
                    |_| {
                        executed.fetch_add(1, Ordering::SeqCst);
                    },
                );
            });
        }));
        let payload = result.expect_err("chunk-claim fault must re-raise");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::ChunkClaim);
        // Poisoning cancels the region: the survivor stops claiming chunks.
        assert!(executed.load(Ordering::SeqCst) < 100_000);
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

#[test]
fn cancel_for_stops_remaining_chunk_claims() {
    with_cancellation(|| {
        for backend in BACKENDS {
            let executed = AtomicUsize::new(0);
            parallel_region(&cfg(backend, 2), |ctx| {
                ctx.for_each(
                    ForSpec::new().schedule(ScheduleKind::Dynamic, Some(1)),
                    0..100_000,
                    |_| {
                        if executed.fetch_add(1, Ordering::SeqCst) + 1 >= 10 {
                            assert!(ctx.cancel("for"));
                        }
                    },
                );
                // The loop-end barrier still synchronizes the cancelled team.
            });
            let n = executed.load(Ordering::SeqCst);
            assert!(
                n >= 10,
                "{backend:?}: cancel fired before 10 iterations ({n})"
            );
            assert!(
                n < 1_000,
                "{backend:?}: cancel did not stop the claims ({n})"
            );
        }
    });
}

#[test]
fn cancel_is_inert_when_the_icv_is_disabled() {
    // OMP_CANCELLATION defaults to false: cancel is a no-op returning false.
    let executed = AtomicUsize::new(0);
    parallel_region(&cfg(Backend::Atomic, 2), |ctx| {
        ctx.for_each(
            ForSpec::new().schedule(ScheduleKind::Dynamic, Some(1)),
            0..1_000,
            |_| {
                executed.fetch_add(1, Ordering::SeqCst);
                assert!(!ctx.cancel("for"));
            },
        );
    });
    assert_eq!(executed.load(Ordering::SeqCst), 1_000);
}

#[test]
fn cancel_parallel_is_observed_at_cancellation_points() {
    with_cancellation(|| {
        for backend in BACKENDS {
            let start = Instant::now();
            parallel_region(&cfg(backend, 4), |ctx| {
                if ctx.thread_num() == 0 {
                    assert!(ctx.cancel("parallel"));
                } else {
                    while !ctx.cancellation_point("parallel") {
                        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: never observed");
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

#[test]
fn cancel_taskgroup_discards_queued_tasks() {
    with_cancellation(|| {
        for backend in BACKENDS {
            let executed = AtomicUsize::new(0);
            // One thread: deferred tasks stay queued until the end barrier,
            // so cancelling before the barrier discards them deterministically.
            parallel_region(&cfg(backend, 1), |ctx| {
                for _ in 0..8 {
                    ctx.task(|_| {
                        executed.fetch_add(1, Ordering::SeqCst);
                    });
                }
                assert!(ctx.cancel("taskgroup"));
            });
            assert_eq!(executed.load(Ordering::SeqCst), 0, "{backend:?}");
        }
    });
}

#[test]
fn sections_observe_cancellation() {
    with_cancellation(|| {
        for backend in BACKENDS {
            let ran = AtomicUsize::new(0);
            parallel_region(&cfg(backend, 1), |ctx| {
                // Section closures must be Sync, which WorkerCtx is not;
                // smuggle it as an address. Sound here: the team has one
                // thread, so the closure runs on the thread owning `ctx`,
                // within its lifetime.
                let ctx_addr = ctx as *const omp4rs::WorkerCtx as usize;
                let s0 = || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    let ctx = unsafe { &*(ctx_addr as *const omp4rs::WorkerCtx) };
                    assert!(ctx.cancel("sections"));
                };
                let s1 = || {
                    ran.fetch_add(1, Ordering::SeqCst);
                };
                let s2 = s1;
                ctx.sections(false, &[&s0, &s1, &s2]);
            });
            // Section 0 cancels; a single-thread team must then skip the rest.
            assert_eq!(ran.load(Ordering::SeqCst), 1, "{backend:?}");
        }
    });
}

#[test]
fn tasks_submitted_by_one_thread_are_stolen_by_teammates() {
    // One producer loads its own deque; teammates waiting at the region-end
    // barrier must pull work from it. The profiler's task-steal counter is
    // the witness that cross-thread stealing actually happened. The task
    // count stays at the deque-capacity floor (8) so nothing spills into the
    // shared overflow bag — the only way a teammate gets work is stealing.
    for backend in BACKENDS {
        let session = omp4rs::ompt::session(omp4rs::ompt::ToolConfig::default());
        let executed = AtomicUsize::new(0);
        parallel_region(&cfg(backend, 4), |ctx| {
            ctx.single(|| {
                for _ in 0..8 {
                    ctx.task(|_| {
                        // Slow enough that the producer cannot drain its own
                        // deque before the thieves arrive.
                        std::thread::sleep(Duration::from_micros(500));
                        executed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(executed.load(Ordering::SeqCst), 8, "{backend:?}");
        let events = omp4rs::ompt::events();
        let steals: u64 = omp4rs::ompt::aggregate(&events)
            .iter()
            .map(|m| m.task_steals)
            .sum();
        drop(session);
        assert!(steals > 0, "{backend:?}: no task was stolen (steals = 0)");
    }
}

#[test]
fn injected_panic_in_a_stolen_task_poisons_without_hanging() {
    // Panics must stay first-wins and bounded even when the failing task may
    // be executing on a thief's stack rather than its submitter's.
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF006).panic_at(FaultSite::TaskExecute, 10));
        let executed = AtomicUsize::new(0);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 4), |ctx| {
                ctx.single(|| {
                    for _ in 0..64 {
                        ctx.task(|_| {
                            std::thread::sleep(Duration::from_micros(100));
                            executed.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        }));
        let payload = result.expect_err("the injected task fault must re-raise");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::TaskExecute);
        assert!(
            executed.load(Ordering::SeqCst) < 64,
            "{backend:?}: poisoning must discard queued tasks"
        );
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

#[test]
fn cancel_taskgroup_drains_loaded_deques_across_threads() {
    // Multi-thread version of the discard rule: cancellation must empty the
    // per-thread deques as well as the shared overflow bag.
    with_cancellation(|| {
        for backend in BACKENDS {
            let executed = AtomicUsize::new(0);
            let start = Instant::now();
            parallel_region(&cfg(backend, 4), |ctx| {
                ctx.single(|| {
                    for _ in 0..64 {
                        ctx.task(|_| {
                            std::thread::sleep(Duration::from_micros(100));
                            executed.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    assert!(ctx.cancel("taskgroup"));
                });
            });
            // A few tasks may start before the cancel lands; the rest must
            // be discarded, not executed.
            assert!(
                executed.load(Ordering::SeqCst) < 64,
                "{backend:?}: cancel did not discard queued tasks"
            );
            assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        }
    });
}

#[test]
fn delay_injection_slows_but_does_not_break() {
    let guard = faults::arm(FaultPlan::new(0xF005).delay_at(
        FaultSite::BarrierArrival,
        1,
        Duration::from_millis(50),
    ));
    let start = Instant::now();
    parallel_region(&cfg(Backend::Atomic, 2), |ctx| {
        ctx.barrier();
    });
    assert!(start.elapsed() >= Duration::from_millis(50));
    drop(guard);
}
