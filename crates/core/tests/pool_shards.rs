//! Sharded-pool lifecycle: stealing, migration, and per-team poisoning,
//! end to end through `parallel_region` with the pool pinned to two shards.
//!
//! This binary is its own process, so it can fix the shard count before the
//! pool's `OnceLock` first fires: every test funnels through [`setup`],
//! which forces `pool_shards = 2` into the ICVs and then touches the pool.
//! (`scripts/ci.sh` additionally re-runs the `pool_lifecycle` suite under
//! `OMP4RS_POOL_SHARDS=2/4/8` to cover the invariants there at other
//! counts; this file covers the behaviours that *only exist* with > 1
//! shard.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

use omp4rs::exec::{parallel_region, ParallelConfig};
use omp4rs::{pool, Backend, Icvs};

fn cfg(threads: usize) -> ParallelConfig {
    ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic)
}

/// Pin the pool to exactly two shards, before anything initializes it.
fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        Icvs::update(|icvs| icvs.pool_shards = Some(2));
        assert_eq!(
            pool::shard_count(),
            2,
            "this suite requires first pool use to happen here"
        );
    });
    assert_eq!(pool::shard_count(), 2);
}

/// Run one region on a brand-new OS thread: a fresh thread gets the next
/// master id, so consecutive calls land on alternating home shards.
fn region_on_fresh_thread(threads: usize) {
    std::thread::spawn(move || {
        parallel_region(&cfg(threads), |_ctx| {});
    })
    .join()
    .expect("region thread must not panic");
}

/// The configured shard count is respected (and frozen at first use).
#[test]
fn shard_count_matches_the_icv() {
    setup();
}

/// Cross-shard stealing actually fires: masters homed on different shards
/// keep docking workers on both sides, so a dispatch whose home shard is
/// dry must eventually serve itself from the sibling — visible as the
/// `steal` counter moving (and `spawn` staying bounded).
#[test]
fn cross_shard_stealing_fires() {
    setup();
    for round in 0..200 {
        // Each fresh thread gets a new master id, alternating home shards;
        // its workers dock on (or migrate to) that shard. Once workers sit
        // docked on one shard and the next master's home is the other, the
        // home pop comes up dry and the two-choice path must steal.
        region_on_fresh_thread(3);
        // Give the workers a moment to dock before the next dispatch looks
        // for them.
        std::thread::sleep(std::time::Duration::from_millis(2));
        if pool::shard_stats().steal > 0 {
            return;
        }
        assert!(round < 199, "stealing never fired across 200 rounds");
    }
}

/// A master whose gang contains stolen (migrated) workers must still reach
/// them by gang affinity: its immediate next region re-binds the same
/// workers without spawning, no matter which shard they now call home.
#[test]
fn gang_affinity_survives_shard_migration() {
    setup();
    // Exercised on a fresh thread so its first region plausibly steals
    // (its home shard starts empty); the second region must reuse the
    // gang either way. Retries absorb other tests racing workers away.
    for round in 0.. {
        let reused = std::thread::spawn(|| {
            parallel_region(&cfg(3), |_ctx| {});
            let before = pool::stats();
            parallel_region(&cfg(3), |_ctx| {});
            let after = pool::stats();
            after.reuse > before.reuse && after.spawn == before.spawn
        })
        .join()
        .expect("region thread must not panic");
        if reused {
            return;
        }
        assert!(round < 20, "a migrated gang was never re-bound by affinity");
    }
}

/// A worker panic poisons its own team only: the shard keeps serving other
/// (and subsequent) regions at full size.
#[test]
fn worker_panic_poisons_team_not_shard() {
    setup();
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_region(&cfg(4), |ctx| {
            if ctx.thread_num() == 3 {
                panic!("poisoned team, not a poisoned shard");
            }
        });
    }));
    assert!(result.is_err(), "the panic must re-raise on the master");
    // The very next regions — from this thread and from a fresh master on
    // the other home shard — must both get full teams.
    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(4), |_ctx| {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4, "same-master region");
    let hits = std::thread::spawn(|| {
        let hits = AtomicUsize::new(0);
        parallel_region(&cfg(4), |_ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        hits.into_inner()
    })
    .join()
    .expect("region thread must not panic");
    assert_eq!(hits, 4, "fresh-master region on the sibling shard");
}

/// The sharded admission counters stay conservation-correct: charges and
/// releases across shards (with reservoir folds in between) cancel out.
#[test]
fn sharded_admission_charges_balance() {
    setup();
    let spread: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                // Each fresh thread charges its own home shard; the drops
                // release on the same thread. Folds happen when a slice
                // crosses the batch.
                for _ in 0..50 {
                    parallel_region(&cfg(3), |_ctx| {});
                }
            })
        })
        .collect();
    for h in spread {
        h.join().expect("charge thread must not panic");
    }
    // Quiesced (modulo other tests): the visible in-flight total must not
    // have leaked upward past what live regions explain. Sample for a
    // moment of calm rather than asserting an instant.
    for round in 0.. {
        if pool::admission_stats().inflight <= 8 {
            return;
        }
        assert!(round < 100, "in-flight charge leaked");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
