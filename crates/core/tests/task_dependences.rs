//! Task-dependence runtime, end to end: `depend(in/out/inout)` ordering
//! through real parallel regions, `priority(n)` observability, child-scoped
//! `taskwait`, `taskgroup` structured waits, and the failure paths —
//! cancellation, injected panics at the `dep-release` fault site, and region
//! deadlines — none of which may strand a held successor.
//!
//! Every test is bounded by `HANG_LIMIT`: the dependence graph's core
//! guarantee is that a released/cancelled/poisoned graph terminates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use omp4rs::depgraph;
use omp4rs::exec::{parallel_region, parallel_region_result, DepSpec, ParallelConfig};
use omp4rs::faults::{self, FaultPlan, FaultSite};
use omp4rs::{Backend, Icvs, InjectedFault, OmpError};

const HANG_LIMIT: Duration = Duration::from_secs(30);
const BACKENDS: [Backend; 2] = [Backend::Mutex, Backend::Atomic];

fn cfg(backend: Backend, threads: usize) -> ParallelConfig {
    ParallelConfig::new().num_threads(threads).backend(backend)
}

/// Serialize every test in this binary: the `omp4rs.task.dep.*` counters and
/// fault-plan occurrence counts are process-global, so overlapping regions
/// would make the delta assertions nondeterministic.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with an ICV tweak applied, restoring the previous ICVs after.
fn with_icvs(tweak: impl FnOnce(&mut Icvs), f: impl FnOnce()) {
    let before = Icvs::current();
    Icvs::update(tweak);
    let result = catch_unwind(AssertUnwindSafe(f));
    Icvs::reset(before);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// An `inout` chain on one storage key must serialize in submission order no
/// matter which threads execute the tasks — the deques' LIFO/steal order is
/// overridden by the graph.
#[test]
fn inout_chain_runs_in_submission_order_across_threads() {
    let _s = serial();
    for backend in BACKENDS {
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let start = Instant::now();
        parallel_region(&cfg(backend, 4), |ctx| {
            ctx.single(|| {
                for i in 0..16 {
                    let order = &order;
                    ctx.task_depend(DepSpec::new().inout(7), move |_| {
                        order.lock().unwrap().push(i);
                    });
                }
            });
        });
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        let got = order.into_inner().unwrap();
        assert_eq!(got, (0..16).collect::<Vec<_>>(), "{backend:?}");
    }
}

/// Diamond: D(in b, in c) must observe both B(in a, out b) and C(in a,
/// out c), each of which must observe A(out a). The assertions run *inside*
/// the dependent tasks, so any mis-ordering fails deterministically.
#[test]
fn diamond_joins_both_branches() {
    let _s = serial();
    for backend in BACKENDS {
        let (a, b, c, d) = (
            AtomicBool::new(false),
            AtomicBool::new(false),
            AtomicBool::new(false),
            AtomicBool::new(false),
        );
        parallel_region(&cfg(backend, 4), |ctx| {
            ctx.single(|| {
                let (a, b, c, d) = (&a, &b, &c, &d);
                ctx.task_depend(DepSpec::new().output(1), move |_| {
                    a.store(true, Ordering::SeqCst);
                });
                ctx.task_depend(DepSpec::new().input(1).output(2), move |_| {
                    assert!(a.load(Ordering::SeqCst), "B ran before A");
                    b.store(true, Ordering::SeqCst);
                });
                ctx.task_depend(DepSpec::new().input(1).output(3), move |_| {
                    assert!(a.load(Ordering::SeqCst), "C ran before A");
                    c.store(true, Ordering::SeqCst);
                });
                ctx.task_depend(DepSpec::new().input(2).input(3), move |_| {
                    assert!(b.load(Ordering::SeqCst), "D ran before B");
                    assert!(c.load(Ordering::SeqCst), "D ran before C");
                    d.store(true, Ordering::SeqCst);
                });
            });
        });
        assert!(d.load(Ordering::SeqCst), "{backend:?}: D never ran");
    }
}

/// WAR/WAW: a writer after a set of readers waits for *all* of them; the
/// readers themselves only wait for the preceding writer.
#[test]
fn writer_waits_for_all_readers() {
    let _s = serial();
    for backend in BACKENDS {
        let value = AtomicUsize::new(0);
        let readers_done = AtomicUsize::new(0);
        parallel_region(&cfg(backend, 4), |ctx| {
            ctx.single(|| {
                let (value, readers_done) = (&value, &readers_done);
                ctx.task_depend(DepSpec::new().output(9), move |_| {
                    value.store(1, Ordering::SeqCst);
                });
                for _ in 0..4 {
                    ctx.task_depend(DepSpec::new().input(9), move |_| {
                        assert_eq!(value.load(Ordering::SeqCst), 1, "reader before writer");
                        readers_done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                ctx.task_depend(DepSpec::new().output(9), move |_| {
                    assert_eq!(
                        readers_done.load(Ordering::SeqCst),
                        4,
                        "second writer overtook a reader"
                    );
                    value.store(2, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(value.load(Ordering::SeqCst), 2, "{backend:?}");
    }
}

/// `priority(n)` must be *observable*, not merely accepted: on a one-thread
/// team the deferred tasks drain at the region-end barrier strictly in
/// priority order (ties in submission order is pinned by the unit tests).
#[test]
fn priority_order_is_observable_in_a_region() {
    let _s = serial();
    for backend in BACKENDS {
        let order: Mutex<Vec<i64>> = Mutex::new(Vec::new());
        parallel_region(&cfg(backend, 1), |ctx| {
            for p in [1i64, 3, 2, 5, 4] {
                let order = &order;
                ctx.task_priority(p, move |_| {
                    order.lock().unwrap().push(p);
                });
            }
        });
        let got = order.into_inner().unwrap();
        assert_eq!(got, vec![5, 4, 3, 2, 1], "{backend:?}");
    }
}

/// `taskwait` waits on the *submitting task's children*, per spec — not the
/// whole queue. Regression pin: with one thread, a sibling task queued
/// before the parent must still be pending when the parent's `taskwait`
/// returns (the old behavior drained the entire queue).
#[test]
fn taskwait_is_child_scoped_not_queue_wide() {
    let _s = serial();
    for backend in BACKENDS {
        let sibling_ran = AtomicBool::new(false);
        let child_ran = AtomicBool::new(false);
        let sibling_seen_at_taskwait = AtomicBool::new(true);
        parallel_region(&cfg(backend, 1), |ctx| {
            let (sibling_ran, child_ran, seen) =
                (&sibling_ran, &child_ran, &sibling_seen_at_taskwait);
            // Sibling of the parent task below (both are children of the
            // implicit task), queued first.
            ctx.task(move |_| {
                sibling_ran.store(true, Ordering::SeqCst);
            });
            ctx.task(move |tc| {
                tc.task(move |_| {
                    child_ran.store(true, Ordering::SeqCst);
                });
                tc.taskwait();
                assert!(child_ran.load(Ordering::SeqCst), "taskwait skipped a child");
                seen.store(sibling_ran.load(Ordering::SeqCst), Ordering::SeqCst);
            });
        });
        assert!(sibling_ran.load(Ordering::SeqCst), "{backend:?}");
        assert!(
            !sibling_seen_at_taskwait.load(Ordering::SeqCst),
            "{backend:?}: taskwait drained an unrelated sibling task \
             (queue-wide wait regression)"
        );
    }
}

/// `taskgroup` waits for members *and* their transitive descendants — even
/// when a member is stolen and spawns its nested task on another thread.
#[test]
fn taskgroup_waits_for_transitive_descendants() {
    let _s = serial();
    for backend in BACKENDS {
        let done = AtomicUsize::new(0);
        parallel_region(&cfg(backend, 4), |ctx| {
            ctx.single(|| {
                let done = &done;
                ctx.taskgroup(|| {
                    for _ in 0..4 {
                        ctx.task(move |tc| {
                            done.fetch_add(1, Ordering::SeqCst);
                            tc.task(move |_| {
                                done.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
                // The structured wait: all 4 members + 4 nested descendants.
                assert_eq!(done.load(Ordering::SeqCst), 8, "{backend:?}");
            });
        });
    }
}

/// Dependence-held tasks inside a taskgroup still count as members, and the
/// group's end-wait sees them complete.
#[test]
fn taskgroup_covers_dependence_held_members() {
    let _s = serial();
    for backend in BACKENDS {
        let done = AtomicUsize::new(0);
        parallel_region(&cfg(backend, 2), |ctx| {
            ctx.single(|| {
                let done = &done;
                ctx.taskgroup(|| {
                    for _ in 0..6 {
                        ctx.task_depend(DepSpec::new().inout(42), move |_| {
                            done.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
                assert_eq!(done.load(Ordering::SeqCst), 6, "{backend:?}");
            });
        });
    }
}

/// `cancel taskgroup` inside the group discards queued members (including
/// dependence-held ones) and the end-wait returns — bounded, with every
/// deferred task accounted as released.
#[test]
fn cancel_inside_taskgroup_releases_held_members() {
    let _s = serial();
    with_icvs(
        |icvs| icvs.cancellation = true,
        || {
            for backend in BACKENDS {
                let before = depgraph::counters();
                let executed = AtomicUsize::new(0);
                let start = Instant::now();
                parallel_region(&cfg(backend, 1), |ctx| {
                    let executed = &executed;
                    ctx.taskgroup(|| {
                        for _ in 0..8 {
                            ctx.task_depend(DepSpec::new().inout(5), move |_| {
                                executed.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        // One thread: everything is still queued/held here.
                        assert!(ctx.cancel("taskgroup"));
                    });
                });
                assert_eq!(
                    executed.load(Ordering::SeqCst),
                    0,
                    "{backend:?}: cancel must discard held members"
                );
                assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: hung");
                let after = depgraph::counters();
                assert_eq!(
                    after.deferred - before.deferred,
                    after.released - before.released,
                    "{backend:?}: a cancelled graph stranded a held task"
                );
            }
        },
    );
}

/// A panicking member poisons the region without hanging the group's
/// structured wait; the panic re-raises after the join.
#[test]
fn panic_in_taskgroup_member_reraises_bounded() {
    let _s = serial();
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xD0A1).panic_at(FaultSite::TaskExecute, 1));
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 2), |ctx| {
                ctx.single(|| {
                    ctx.taskgroup(|| {
                        for _ in 0..4 {
                            ctx.task(|_| {});
                        }
                    });
                });
            });
        }));
        let payload = result.expect_err("member fault must re-raise after the join");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::TaskExecute);
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);
    }
}

/// A region deadline tripping while a taskgroup is in flight converts the
/// stall into a typed `RegionTimeout` instead of a hang. The stalling member
/// self-releases after ~2s (far past the deadline, far under `HANG_LIMIT`),
/// so a broken deadline path fails fast rather than hanging the suite.
#[test]
fn deadline_trips_during_taskgroup_wait() {
    let _s = serial();
    with_icvs(
        |icvs| icvs.region_deadline = Some(Duration::from_millis(250)),
        || {
            let start = Instant::now();
            let result = parallel_region_result(&cfg(Backend::Atomic, 2), |ctx| {
                ctx.single(|| {
                    ctx.taskgroup(|| {
                        ctx.task(|_| {
                            // Stall well past the deadline, bounded.
                            let t0 = Instant::now();
                            while t0.elapsed() < Duration::from_secs(2) {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        });
                    });
                });
            });
            assert!(start.elapsed() < HANG_LIMIT, "deadline must bound the wait");
            match result {
                Err(OmpError::RegionTimeout { waited, .. }) => {
                    assert!(waited >= Duration::from_millis(250));
                }
                other => panic!("expected RegionTimeout, got {other:?}"),
            }
        },
    );
}

/// The `dep-release` fault site: an injected panic while handing a released
/// task back to the scheduler discards that successor — whose own retirement
/// cascades the release to *its* successors — and re-raises after the join.
/// No held task may be stranded.
#[test]
fn dep_release_fault_discards_successor_and_cascades() {
    let _s = serial();
    let before = depgraph::counters();
    let guard = faults::arm(FaultPlan::new(0xDE97).panic_at(FaultSite::DepRelease, 1));
    let (a_ran, b_ran, c_ran) = (
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
    );
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_region(&cfg(Backend::Atomic, 1), |ctx| {
            let (a_ran, b_ran, c_ran) = (&a_ran, &b_ran, &c_ran);
            ctx.task_depend(DepSpec::new().inout(11), move |_| {
                a_ran.store(true, Ordering::SeqCst);
            });
            ctx.task_depend(DepSpec::new().inout(11), move |_| {
                b_ran.store(true, Ordering::SeqCst);
            });
            ctx.task_depend(DepSpec::new().inout(11), move |_| {
                c_ran.store(true, Ordering::SeqCst);
            });
        });
    }));
    let payload = result.expect_err("the dep-release fault must re-raise");
    let fault = payload
        .downcast_ref::<InjectedFault>()
        .expect("payload must be the InjectedFault");
    assert_eq!(fault.site, FaultSite::DepRelease);
    assert!(a_ran.load(Ordering::SeqCst), "predecessor must have run");
    assert!(
        !b_ran.load(Ordering::SeqCst),
        "the faulted release must discard its task"
    );
    assert!(
        c_ran.load(Ordering::SeqCst),
        "discarding B must release C, not strand it"
    );
    assert!(start.elapsed() < HANG_LIMIT, "region hung");
    drop(guard);
    let after = depgraph::counters();
    assert_eq!(after.deferred - before.deferred, 2, "B and C were held");
    assert_eq!(
        after.deferred - before.deferred,
        after.released - before.released,
        "a faulted release path stranded a successor"
    );
    assert_eq!(after.edges - before.edges, 2, "A→B and B→C");
}

/// Seeded chaos: random dependence graphs inside taskgroups with
/// cancellation on odd seeds and injected dep-release/task-execute panics on
/// selected seeds. Invariants: every region terminates under `HANG_LIMIT`
/// with a typed error (or success), and the global accounting holds —
/// deferred == released, no stranded successors.
#[test]
fn chaos_dependence_graphs_terminate_with_accounting() {
    let _s = serial();
    with_icvs(
        |icvs| icvs.cancellation = true,
        || {
            for seed in 0u64..6 {
                let fault_guard = match seed {
                    2 => Some(faults::arm(
                        FaultPlan::new(0xC0DE + seed).panic_at(FaultSite::DepRelease, 2),
                    )),
                    4 => Some(faults::arm(
                        FaultPlan::new(0xC0DE + seed).panic_at(FaultSite::TaskExecute, 3),
                    )),
                    _ => None,
                };
                let before = depgraph::counters();
                let executed = AtomicUsize::new(0);
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    parallel_region(&cfg(Backend::Atomic, 4), |ctx| {
                        ctx.single(|| {
                            let executed = &executed;
                            ctx.taskgroup(|| {
                                // Deterministic LCG over a handful of keys.
                                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                                let mut next = || {
                                    state = state
                                        .wrapping_mul(6364136223846793005)
                                        .wrapping_add(1442695040888963407);
                                    state >> 33
                                };
                                for i in 0..24 {
                                    let key = next() % 4;
                                    let spec = match next() % 3 {
                                        0 => DepSpec::new().input(key),
                                        1 => DepSpec::new().output(key),
                                        _ => DepSpec::new().inout(key),
                                    };
                                    let spec = spec.priority((next() % 3) as i64);
                                    ctx.task_depend(spec, move |_| {
                                        executed.fetch_add(1, Ordering::SeqCst);
                                    });
                                    if seed % 2 == 1 && i == 12 {
                                        assert!(ctx.cancel("taskgroup"));
                                    }
                                }
                            });
                        });
                    });
                }));
                assert!(
                    start.elapsed() < HANG_LIMIT,
                    "seed {seed}: chaos region hung"
                );
                // Faulted seeds re-raise the injected panic; cancelled and
                // clean seeds complete. Either way the graph must drain.
                if let Err(payload) = result {
                    assert!(
                        payload.downcast_ref::<InjectedFault>().is_some(),
                        "seed {seed}: unexpected panic payload"
                    );
                }
                drop(fault_guard);
                let after = depgraph::counters();
                assert_eq!(
                    after.deferred - before.deferred,
                    after.released - before.released,
                    "seed {seed}: a held task was stranded"
                );
            }
        },
    );
}
