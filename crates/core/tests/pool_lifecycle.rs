//! Hot-team pool lifecycle, end to end through `parallel_region`.
//!
//! The invariants under test: a panicking or cancelled region must poison
//! (or end) only *itself* — the persistent worker pool recycles its threads
//! and the very next region runs normally; nested regions bypass the pool;
//! and back-to-back top-level regions actually re-bind pooled workers
//! instead of spawning fresh OS threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use omp4rs::exec::{parallel_region, ParallelConfig};
use omp4rs::faults::{self, FaultPlan, FaultSite};
use omp4rs::{pool, Backend, Icvs, InjectedFault};

const BACKENDS: [Backend; 2] = [Backend::Mutex, Backend::Atomic];
const HANG_LIMIT: Duration = Duration::from_secs(30);

fn cfg(backend: Backend, threads: usize) -> ParallelConfig {
    ParallelConfig::new().num_threads(threads).backend(backend)
}

/// Run `f` with an ICV tweak applied, serialized against the other
/// ICV-flipping tests in this binary, restoring the previous ICVs after.
fn with_icvs(tweak: impl FnOnce(&mut Icvs), f: impl FnOnce()) {
    static ICV_LOCK: Mutex<()> = Mutex::new(());
    let _lock = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = Icvs::current();
    Icvs::update(tweak);
    let result = catch_unwind(AssertUnwindSafe(f));
    Icvs::reset(before);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// A region whose body panics must re-raise after the join — and the *pool*
/// must shrug it off: the next region on the same pool runs to completion
/// with every thread participating.
#[test]
fn panicking_region_then_successful_region_on_same_pool() {
    for backend in BACKENDS {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 4), |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("poisoned region, not a poisoned pool");
                }
            });
        }));
        assert!(result.is_err(), "{backend:?}: the panic must re-raise");

        let hits = AtomicUsize::new(0);
        let start = Instant::now();
        parallel_region(&cfg(backend, 4), |_ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(
            hits.load(Ordering::SeqCst),
            4,
            "{backend:?}: the region after the panic must get a full team"
        );
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
    }
}

/// `cancel parallel` mid-region with pooled workers: every thread observes
/// the cancellation, the region exits promptly, and the pool serves the
/// next region normally.
#[test]
fn cancellation_mid_region_with_pooled_workers() {
    with_icvs(
        |icvs| icvs.cancellation = true,
        || {
            for backend in BACKENDS {
                let start = Instant::now();
                parallel_region(&cfg(backend, 4), |ctx| {
                    if ctx.thread_num() == 0 {
                        assert!(ctx.cancel("parallel"));
                    } else {
                        while !ctx.cancellation_point("parallel") {
                            assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: never observed");
                            std::thread::yield_now();
                        }
                    }
                });
                // The cancelled region's latch drained on the abnormal path
                // (no final-barrier release); the pool must still be whole.
                let hits = AtomicUsize::new(0);
                parallel_region(&cfg(backend, 4), |_ctx| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(hits.load(Ordering::SeqCst), 4, "{backend:?}");
            }
        },
    );
}

/// Nested regions bypass the pool (scoped threads), and the outer pooled
/// region still joins correctly around them.
#[test]
fn nested_parallel_inside_pooled_region() {
    with_icvs(
        |icvs| {
            icvs.nested = true;
            icvs.max_active_levels = 2;
        },
        || {
            for backend in BACKENDS {
                let inner_hits = AtomicUsize::new(0);
                let outer_hits = AtomicUsize::new(0);
                parallel_region(&cfg(backend, 3), |_outer| {
                    outer_hits.fetch_add(1, Ordering::SeqCst);
                    parallel_region(&cfg(backend, 2), |_inner| {
                        inner_hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
                assert_eq!(outer_hits.load(Ordering::SeqCst), 3, "{backend:?}");
                assert_eq!(
                    inner_hits.load(Ordering::SeqCst),
                    6,
                    "{backend:?}: 3 outer threads x 2 inner threads"
                );
            }
        },
    );
}

/// An injected fault at worker dispatch (the pool's own site, firing on the
/// worker thread before it binds to the team) poisons the *region* — the
/// panic re-raises on the master — while the pool recycles the thread.
#[test]
fn worker_dispatch_fault_poisons_region_not_pool() {
    for backend in BACKENDS {
        let guard = faults::arm(FaultPlan::new(0xF007).panic_at(FaultSite::WorkerDispatch, 1));
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_region(&cfg(backend, 4), |_ctx| {});
        }));
        let payload = result.expect_err("the injected dispatch fault must re-raise");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload must be the InjectedFault");
        assert_eq!(fault.site, FaultSite::WorkerDispatch);
        assert!(start.elapsed() < HANG_LIMIT, "{backend:?}: region hung");
        drop(guard);

        let hits = AtomicUsize::new(0);
        parallel_region(&cfg(backend, 4), |_ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4, "{backend:?}: pool survives");
    }
}

/// `OMP4RS_POOL=off` (the `pool` ICV) forces the scoped-spawn path: regions
/// still run correctly, and the pool's reuse/spawn counters stay flat.
#[test]
fn pool_icv_off_bypasses_the_pool() {
    with_icvs(
        |icvs| icvs.pool = false,
        || {
            for backend in BACKENDS {
                // Retry: concurrently running tests may legitimately move
                // the pool counters between the two reads; what must never
                // happen is that *every* attempt sees movement.
                for round in 0.. {
                    let before = pool::stats();
                    let before_sh = pool::shard_stats();
                    let hits = AtomicUsize::new(0);
                    parallel_region(&cfg(backend, 4), |_ctx| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                    assert_eq!(hits.load(Ordering::SeqCst), 4, "{backend:?}");
                    let after = pool::stats();
                    let after_sh = pool::shard_stats();
                    if (after.reuse, after.spawn) == (before.reuse, before.spawn)
                        && (after_sh.local, after_sh.steal, after_sh.rebalance)
                            == (before_sh.local, before_sh.steal, before_sh.rebalance)
                    {
                        break;
                    }
                    assert!(
                        round < 20,
                        "{backend:?}: pool-off regions kept touching the pool"
                    );
                }
            }
        },
    );
}

/// With a single shard (`OMP4RS_POOL_SHARDS=1`, or a one-CPU default) the
/// sharded pool must be the legacy pool exactly: nobody to steal from, an
/// infinite admission fold batch, and every reused worker accounted as
/// shard-local. Skipped (trivially) when this process runs with more
/// shards — `scripts/ci.sh` re-runs this binary under several counts.
#[test]
fn single_shard_keeps_legacy_counter_shape() {
    if pool::shard_count() != 1 {
        return;
    }
    parallel_region(&cfg(Backend::Atomic, 4), |_ctx| {});
    let sh = pool::shard_stats();
    assert_eq!(sh.steal, 0, "one shard has nobody to steal from");
    assert_eq!(sh.rebalance, 0, "one shard must never fold its counter");
    // Every reuse is a local (gang or home-shard) handout. The two counters
    // are separate atomics bumped by concurrent tests, so sample until a
    // quiet pair of reads brackets the comparison.
    for round in 0.. {
        let r1 = pool::stats().reuse;
        let local = pool::shard_stats().local;
        let r2 = pool::stats().reuse;
        if r1 == r2 && local == r1 {
            return;
        }
        assert!(
            round < 50,
            "local ({local}) never settled to reuse ({r1}..{r2})"
        );
        std::thread::yield_now();
    }
}

/// Back-to-back top-level regions must re-bind pooled workers (hot teams),
/// not spawn OS threads per region. Other tests in the process share the
/// pool, so allow retries — but a hot path that *never* reuses is broken.
#[test]
fn back_to_back_regions_reuse_pooled_workers() {
    for round in 0.. {
        parallel_region(&cfg(Backend::Atomic, 4), |_ctx| {});
        let before = pool::stats();
        parallel_region(&cfg(Backend::Atomic, 4), |_ctx| {});
        let after = pool::stats();
        if after.reuse > before.reuse && after.spawn == before.spawn {
            return;
        }
        assert!(round < 20, "no region-after-region ever reused the gang");
    }
}
