//! Serve-grade resilience, end to end: region deadlines convert stalls into
//! typed [`OmpError::RegionTimeout`] errors, the pool watchdog converts
//! silent worker stalls into the same, and admission control degrades team
//! sizes instead of oversubscribing a saturated pool.
//!
//! Every test here is bounded by `HANG_LIMIT`: the whole point of the layer
//! under test is that nothing blocks forever.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use omp4rs::exec::{parallel_region, parallel_region_result, ParallelConfig};
use omp4rs::faults::{self, FaultPlan, FaultSite};
use omp4rs::{pool, Backend, Icvs, OmpError};

const HANG_LIMIT: Duration = Duration::from_secs(30);

fn cfg(threads: usize) -> ParallelConfig {
    ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic)
}

/// Serialize every test in this binary: fault-plan occurrence counting is
/// process-global, and the admission tests reason about the pool's
/// threads-in-flight, so overlapping regions would make both
/// nondeterministic.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with an ICV tweak applied, restoring the previous ICVs after.
fn with_icvs(tweak: impl FnOnce(&mut Icvs), f: impl FnOnce()) {
    let before = Icvs::current();
    Icvs::update(tweak);
    let result = catch_unwind(AssertUnwindSafe(f));
    Icvs::reset(before);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// A worker stalled by an injected "infinite" delay at its barrier arrival:
/// the region deadline trips on the threads parked at that barrier, the
/// team is poisoned, and the caller observes a typed `RegionTimeout` —
/// never a hang. (The injected delay itself aborts once the region is
/// poisoned; a real OS-level stall is the watchdog test's job.)
#[test]
fn region_deadline_converts_barrier_stall_into_timeout() {
    let _s = serial();
    let guard = faults::arm(FaultPlan::new(0xDEAD).delay_at(
        FaultSite::BarrierArrival,
        1,
        Duration::from_secs(120),
    ));
    with_icvs(
        |icvs| icvs.region_deadline = Some(Duration::from_millis(300)),
        || {
            let start = Instant::now();
            let result = parallel_region_result(&cfg(4), |_ctx| {});
            assert!(start.elapsed() < HANG_LIMIT, "deadline must bound the wait");
            match result {
                Err(OmpError::RegionTimeout { construct, waited }) => {
                    assert_eq!(construct, "barrier");
                    assert!(waited >= Duration::from_millis(300));
                }
                other => panic!("expected RegionTimeout, got {other:?}"),
            }
        },
    );
    drop(guard);

    // The pool must be whole afterwards: a full team serves the next region.
    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(4), |_ctx| {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4);
}

/// Without a region deadline, the stall watchdog is the backstop: a worker
/// whose heartbeat goes stale past `OMP4RS_WATCHDOG` is flagged, a
/// `watchdog-stall` snapshot is recorded, and the afflicted team is
/// poisoned so the master observes `RegionTimeout` instead of deadlocking.
#[test]
fn watchdog_flags_stalled_worker_and_cancels_its_team() {
    let _s = serial();
    let guard = faults::arm(FaultPlan::new(0xD06).delay_at(
        FaultSite::BarrierArrival,
        1,
        Duration::from_secs(120),
    ));
    with_icvs(
        |icvs| icvs.watchdog = Some(Duration::from_millis(200)),
        || {
            let before = pool::watchdog_stats();
            let start = Instant::now();
            let result = parallel_region_result(&cfg(4), |_ctx| {});
            assert!(start.elapsed() < HANG_LIMIT, "watchdog must bound the wait");
            match result {
                Err(OmpError::RegionTimeout { construct, .. }) => {
                    assert_eq!(construct, "watchdog");
                }
                other => panic!("expected watchdog RegionTimeout, got {other:?}"),
            }
            let after = pool::watchdog_stats();
            assert!(after.stalls > before.stalls, "stall must be counted");
            assert!(after.cancels > before.cancels, "cancel must be counted");
        },
    );
    drop(guard);

    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(4), |_ctx| {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4, "pool survives the cancel");
}

/// Admission control (`omp_set_dynamic`): while one region holds the whole
/// thread budget, a second concurrent region is shed to serial execution
/// instead of oversubscribing — and the `omp4rs.admission.*` counters
/// record the decision.
#[test]
fn saturated_pool_sheds_second_region_to_serial() {
    let _s = serial();
    with_icvs(
        |icvs| {
            icvs.dynamic = true;
            icvs.thread_limit = 4;
        },
        || {
            let hold = AtomicBool::new(true);
            let first_running = AtomicBool::new(false);
            let shed_size = AtomicUsize::new(0);
            let before = pool::admission_stats();
            std::thread::scope(|scope| {
                // First region: takes the full budget and holds it.
                scope.spawn(|| {
                    parallel_region(&cfg(4), |ctx| {
                        first_running.store(true, Ordering::SeqCst);
                        let start = Instant::now();
                        while hold.load(Ordering::SeqCst) && ctx.thread_num() == 0 {
                            assert!(start.elapsed() < HANG_LIMIT);
                            std::thread::yield_now();
                        }
                        ctx.barrier();
                    });
                });
                let start = Instant::now();
                while !first_running.load(Ordering::SeqCst) {
                    assert!(start.elapsed() < HANG_LIMIT);
                    std::thread::yield_now();
                }
                // Second region: budget exhausted, must run serially.
                parallel_region(&cfg(4), |ctx| {
                    shed_size.fetch_max(ctx.num_threads(), Ordering::SeqCst);
                });
                hold.store(false, Ordering::SeqCst);
            });
            assert_eq!(
                shed_size.load(Ordering::SeqCst),
                1,
                "second region must be shed to serial"
            );
            let after = pool::admission_stats();
            assert!(after.shed > before.shed, "shed must be counted");
            assert!(after.granted > before.granted, "first grant counted");
        },
    );
}

/// Oversubscription lifecycle: more concurrent top-level regions than the
/// host has cores (admission off, the default) — every region still gets
/// its full team and completes.
#[test]
fn more_concurrent_regions_than_workers_all_complete() {
    let _s = serial();
    const REGIONS: usize = 8;
    const THREADS: usize = 4;
    let hits = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..REGIONS {
            scope.spawn(|| {
                parallel_region(&cfg(THREADS), |_ctx| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), REGIONS * THREADS);
    assert!(start.elapsed() < HANG_LIMIT);
}

/// Nested regions while the pool is saturated: the nested level bypasses
/// the pool (scoped threads), so saturation upstairs cannot deadlock the
/// inner teams.
#[test]
fn nested_regions_while_pool_saturated() {
    let _s = serial();
    with_icvs(
        |icvs| {
            icvs.nested = true;
            icvs.max_active_levels = 2;
        },
        || {
            let inner_hits = AtomicUsize::new(0);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        parallel_region(&cfg(3), |_outer| {
                            parallel_region(&cfg(2), |_inner| {
                                inner_hits.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    });
                }
            });
            assert_eq!(inner_hits.load(Ordering::SeqCst), 4 * 3 * 2);
            assert!(start.elapsed() < HANG_LIMIT);
        },
    );
}

/// A healthy region under a generous deadline is unaffected: the deadline
/// path must not change results, and `parallel_region_result` returns Ok.
#[test]
fn generous_deadline_does_not_perturb_a_healthy_region() {
    let _s = serial();
    with_icvs(
        |icvs| icvs.region_deadline = Some(Duration::from_secs(60)),
        || {
            let hits = AtomicUsize::new(0);
            let result = parallel_region_result(&cfg(4), |ctx| {
                ctx.barrier();
                hits.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
            });
            assert!(result.is_ok());
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        },
    );
}

/// User panics still dominate deadline reporting: when a thread panics
/// *and* the deadline trips during teardown, the join re-raises the panic
/// (the timeout is a symptom, the panic the cause).
#[test]
fn user_panic_takes_precedence_over_deadline_failure() {
    let _s = serial();
    with_icvs(
        |icvs| icvs.region_deadline = Some(Duration::from_millis(200)),
        || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_region(&cfg(2), |ctx| {
                    if ctx.thread_num() == 1 {
                        panic!("user bug");
                    }
                });
            }));
            let payload = result.expect_err("panic must re-raise");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "user bug", "panic, not RegionTimeout, must win");
        },
    );
}
