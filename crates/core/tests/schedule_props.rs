//! Property-based tests of the scheduling/iteration-space invariants.

use std::sync::Arc;

use omp4rs::directive::{Directive, ScheduleKind};
use omp4rs::schedule::{ForBounds, LoopDims, ResolvedSchedule};
use omp4rs::sync::{Backend, Notifier};
use omp4rs::worksharing::WorkshareRegistry;
use proptest::prelude::*;

fn resolved(kind: ScheduleKind, chunk: Option<u64>) -> ResolvedSchedule {
    ResolvedSchedule {
        kind,
        chunk: chunk.unwrap_or(1).max(1),
        explicit_chunk: chunk.is_some(),
    }
}

/// Collect every flat iteration each thread would execute (single shared
/// instance, threads drained round-robin like a sequentialized team).
fn partition(
    kind: ScheduleKind,
    chunk: Option<u64>,
    dims: &LoopDims,
    threads: usize,
) -> Vec<Vec<u64>> {
    let reg = WorkshareRegistry::new(Backend::Atomic, threads, Arc::new(Notifier::new()));
    let inst = reg.enter(0);
    let mut bounds: Vec<ForBounds> = (0..threads)
        .map(|t| {
            ForBounds::init(
                dims.clone(),
                resolved(kind, chunk),
                t,
                threads,
                Some(Arc::clone(&inst)),
            )
        })
        .collect();
    let mut out = vec![Vec::new(); threads];
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (t, fb) in bounds.iter_mut().enumerate() {
            if fb.next() {
                out[t].extend(fb.lo..fb.hi);
                progressed = true;
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule covers each iteration exactly once, for arbitrary
    /// (range, step, chunk, team size).
    #[test]
    fn schedules_partition_iteration_space(
        start in -50i64..50,
        len in 0i64..200,
        step in prop_oneof![1i64..5, (-5i64..-1).prop_map(|s| s)],
        chunk in prop_oneof![Just(None), (1u64..16).prop_map(Some)],
        threads in 1usize..9,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            ScheduleKind::Static,
            ScheduleKind::Dynamic,
            ScheduleKind::Guided,
            ScheduleKind::Auto,
        ][kind_idx];
        let stop = start + len * step.signum();
        let dims = LoopDims::new(&[(start, stop, step)]).expect("nonzero step");
        let total = dims.total();
        let per_thread = partition(kind, chunk, &dims, threads);
        let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        prop_assert_eq!(all, expect, "{:?} chunk={:?} threads={}", kind, chunk, threads);
    }

    /// Flat→variable mapping is a bijection for collapsed loops.
    #[test]
    fn collapse_mapping_is_bijective(
        n1 in 1i64..12,
        n2 in 1i64..12,
        s1 in 1i64..4,
        s2 in 1i64..4,
    ) {
        let dims = LoopDims::new(&[(0, n1 * s1, s1), (0, n2 * s2, s2)]).expect("valid");
        let mut seen = std::collections::HashSet::new();
        for flat in 0..dims.total() {
            let vars = dims.vars_of(flat);
            prop_assert_eq!(vars.len(), 2);
            prop_assert!(vars[0] % s1 == 0 && vars[0] < n1 * s1);
            prop_assert!(vars[1] % s2 == 0 && vars[1] < n2 * s2);
            prop_assert!(seen.insert(vars.clone()), "duplicate {:?}", vars);
        }
        prop_assert_eq!(seen.len() as u64, dims.total());
    }

    /// Rank-1 var_chunk/flat_of_var round trip.
    #[test]
    fn var_chunk_round_trips(
        start in -100i64..100,
        len in 1i64..100,
        step in prop_oneof![1i64..6, (-6i64..-1).prop_map(|s| s)],
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let stop = start + len * step.signum();
        let dims = LoopDims::new(&[(start, stop, step)]).expect("valid");
        let total = dims.total();
        prop_assume!(total > 0);
        let lo = (lo_frac * total as f64) as u64 % total;
        let hi = lo + 1 + ((hi_frac * (total - lo) as f64) as u64).min(total - lo - 1);
        let (v0, v1, st) = dims.var_chunk(lo, hi);
        prop_assert_eq!(st, step);
        // Walking the chunk in variable space visits exactly flat lo..hi.
        let mut v = v0;
        let mut flat = lo;
        while if st > 0 { v < v1 } else { v > v1 } {
            prop_assert_eq!(dims.flat_of_var(v), flat);
            v += st;
            flat += 1;
        }
        prop_assert_eq!(flat, hi);
    }

    /// The directive parser accepts every well-formed combination produced
    /// by the generator, and its accessors agree with the input.
    #[test]
    fn directive_parser_accepts_generated(
        nthreads in 1u64..64,
        chunk in 1u64..1000,
        kind_idx in 0usize..3,
        privates in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 0..4),
        nowait in any::<bool>(),
    ) {
        let kind = ["static", "dynamic", "guided"][kind_idx];
        let mut text = format!("parallel for num_threads({nthreads}) schedule({kind}, {chunk})");
        let mut unique = privates.clone();
        unique.sort();
        unique.dedup();
        // Avoid directive keywords colliding with variable names.
        unique.retain(|v| !["if", "for", "in", "and", "or", "not", "task"].contains(&v.as_str()));
        if !unique.is_empty() {
            text.push_str(&format!(" private({})", unique.join(", ")));
        }
        // `parallel for` does not admit nowait; use a plain `for` when set.
        let d = if nowait {
            let mut t = format!("for schedule({kind}, {chunk})");
            if !unique.is_empty() {
                t.push_str(&format!(" private({})", unique.join(", ")));
            }
            t.push_str(" nowait");
            Directive::parse(&t).expect("valid for directive")
        } else {
            Directive::parse(&text).expect("valid parallel for directive")
        };
        let nthreads_text = nthreads.to_string();
        let chunk_text = chunk.to_string();
        if nowait {
            prop_assert!(d.has_nowait());
        } else {
            prop_assert_eq!(d.num_threads_expr(), Some(nthreads_text.as_str()));
        }
        let (k, c) = d.schedule().expect("schedule present");
        prop_assert_eq!(k.name(), kind);
        prop_assert_eq!(c, Some(chunk_text.as_str()));
        prop_assert_eq!(d.private_vars().len(), unique.len());
    }

    /// for_reduce sums are exact for arbitrary ranges and team sizes.
    #[test]
    fn for_reduce_exact_sum(
        n in 0i64..500,
        threads in 1usize..7,
        chunk in 1u64..16,
        dynamic in any::<bool>(),
    ) {
        let spec = if dynamic {
            omp4rs::ForSpec::new().schedule(ScheduleKind::Dynamic, Some(chunk))
        } else {
            omp4rs::ForSpec::new().schedule(ScheduleKind::Static, Some(chunk))
        };
        let result = std::sync::Mutex::new(0i64);
        let cfg = omp4rs::ParallelConfig::new().num_threads(threads);
        omp4rs::parallel_region(&cfg, |ctx| {
            let s = ctx.for_reduce(spec, 0..n, 0i64, |i, acc| *acc += i, |a, b| a + b);
            ctx.master(|| *result.lock().unwrap() = s);
        });
        prop_assert_eq!(*result.lock().unwrap(), n * (n - 1) / 2);
    }
}
