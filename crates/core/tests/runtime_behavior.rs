//! End-to-end behaviour of the compiled-mode runtime: parallel regions,
//! worksharing, synchronization, and tasking, on both backends.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::{Backend, ScheduleKind};
use parking_lot::Mutex;

fn cfg(threads: usize, backend: Backend) -> ParallelConfig {
    ParallelConfig::new().num_threads(threads).backend(backend)
}

fn both() -> [Backend; 2] {
    [Backend::Mutex, Backend::Atomic]
}

/// Tests that mutate the global ICVs must not interleave.
static ICV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn parallel_runs_body_on_each_thread() {
    for backend in both() {
        let hits = AtomicUsize::new(0);
        let ids = Mutex::new(Vec::new());
        parallel_region(&cfg(4, backend), |ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            ids.lock().push(ctx.thread_num());
            assert_eq!(ctx.num_threads(), 4);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        let mut ids = ids.into_inner();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

#[test]
fn if_clause_serializes() {
    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(4, Backend::Atomic).if_parallel(false), |ctx| {
        assert_eq!(ctx.num_threads(), 1);
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn parallel_clause_string() {
    let hits = AtomicUsize::new(0);
    omp4rs::parallel("num_threads(3) default(shared)", |_ctx| {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}

#[test]
fn for_each_covers_all_iterations_every_schedule() {
    for backend in both() {
        for spec in [
            ForSpec::new(),
            ForSpec::new().schedule(ScheduleKind::Static, Some(3)),
            ForSpec::new().schedule(ScheduleKind::Dynamic, Some(2)),
            ForSpec::new().schedule(ScheduleKind::Guided, Some(1)),
            ForSpec::new().schedule(ScheduleKind::Auto, None),
        ] {
            let n = 103i64;
            let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_region(&cfg(4, backend), |ctx| {
                ctx.for_each(spec, 0..n, |i| {
                    marks[i as usize].fetch_add(1, Ordering::SeqCst);
                });
            });
            assert!(
                marks.iter().all(|m| m.load(Ordering::SeqCst) == 1),
                "{backend:?} {spec:?}: every iteration exactly once"
            );
        }
    }
}

#[test]
fn for_range_with_negative_step() {
    let sum = AtomicI64::new(0);
    parallel_region(&cfg(3, Backend::Atomic), |ctx| {
        ctx.for_range("schedule(dynamic, 2)", (10, 0, -2), |i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
    });
    // 10 + 8 + 6 + 4 + 2
    assert_eq!(sum.load(Ordering::SeqCst), 30);
}

#[test]
fn for_each2_collapse_covers_product_space() {
    let hits: Vec<AtomicUsize> = (0..6 * 7).map(|_| AtomicUsize::new(0)).collect();
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        ctx.for_each2("schedule(dynamic, 3) collapse(2)", 0..6, 0..7, |i, j| {
            hits[(i * 7 + j) as usize].fetch_add(1, Ordering::SeqCst);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
}

#[test]
fn for_reduce_sums_once() {
    for backend in both() {
        let result = Mutex::new(Vec::new());
        parallel_region(&cfg(4, backend), |ctx| {
            let total = ctx.for_reduce(
                ForSpec::new().schedule(ScheduleKind::Dynamic, Some(5)),
                0..1000,
                0i64,
                |i, acc| *acc += i,
                |a, b| a + b,
            );
            result.lock().push(total);
        });
        let results = result.into_inner();
        assert_eq!(results.len(), 4);
        assert!(
            results.iter().all(|&r| r == 499_500),
            "{backend:?}: {results:?}"
        );
    }
}

#[test]
fn consecutive_reductions_are_independent() {
    let outcome = Mutex::new((0i64, 0i64));
    parallel_region(&cfg(3, Backend::Atomic), |ctx| {
        let a = ctx.for_reduce(
            ForSpec::new(),
            0..10,
            0i64,
            |i, acc| *acc += i,
            |x, y| x + y,
        );
        let b = ctx.for_reduce(
            ForSpec::new(),
            0..10,
            1i64,
            |i, acc| *acc *= i + 1,
            |x, y| x * y,
        );
        ctx.master(|| *outcome.lock() = (a, b));
    });
    let (a, b) = outcome.into_inner();
    assert_eq!(a, 45);
    assert_eq!(b, 3_628_800); // 10!
}

#[test]
fn single_executes_exactly_once() {
    for backend in both() {
        let hits = AtomicUsize::new(0);
        let winners = AtomicUsize::new(0);
        parallel_region(&cfg(4, backend), |ctx| {
            for _ in 0..10 {
                if ctx.single(|| hits.fetch_add(1, Ordering::SeqCst)).is_some() {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 10, "{backend:?}");
        assert_eq!(winners.load(Ordering::SeqCst), 10);
    }
}

#[test]
fn single_copyprivate_broadcasts() {
    let seen = Mutex::new(Vec::new());
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        let value = ctx.single_copyprivate(|| vec![1, 2, 3]);
        seen.lock().push(value);
    });
    let seen = seen.into_inner();
    assert_eq!(seen.len(), 4);
    assert!(seen.iter().all(|v| v == &vec![1, 2, 3]));
}

#[test]
fn master_runs_only_on_thread_zero() {
    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        ctx.master(|| hits.fetch_add(1, Ordering::SeqCst));
        ctx.barrier();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn sections_each_run_once() {
    for backend in both() {
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let c = AtomicUsize::new(0);
        parallel_region(&cfg(2, backend), |ctx| {
            ctx.sections(
                false,
                &[
                    &|| {
                        a.fetch_add(1, Ordering::SeqCst);
                    },
                    &|| {
                        b.fetch_add(1, Ordering::SeqCst);
                    },
                    &|| {
                        c.fetch_add(1, Ordering::SeqCst);
                    },
                ],
            );
        });
        assert_eq!(
            (
                a.load(Ordering::SeqCst),
                b.load(Ordering::SeqCst),
                c.load(Ordering::SeqCst)
            ),
            (1, 1, 1),
            "{backend:?}"
        );
    }
}

#[test]
fn critical_protects_shared_state() {
    for backend in both() {
        let shared = Mutex::new(0i64);
        parallel_region(&cfg(4, backend), |ctx| {
            for _ in 0..100 {
                ctx.critical(Some("rt_test"), || {
                    let mut v = shared.lock();
                    *v += 1;
                });
            }
        });
        assert_eq!(*shared.lock(), 400);
    }
}

#[test]
fn ordered_loop_emits_in_order() {
    for backend in both() {
        let order = Mutex::new(Vec::new());
        parallel_region(&cfg(4, backend), |ctx| {
            ctx.for_each(
                ForSpec::new()
                    .schedule(ScheduleKind::Dynamic, Some(1))
                    .ordered(),
                0..30,
                |i| {
                    // Simulate out-of-order arrival.
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                    ctx.ordered(|| order.lock().push(i));
                },
            );
        });
        let order = order.into_inner();
        assert_eq!(order, (0..30).collect::<Vec<_>>(), "{backend:?}");
    }
}

#[test]
fn tasks_all_execute_before_region_ends() {
    for backend in both() {
        let hits = Arc::new(AtomicUsize::new(0));
        parallel_region(&cfg(4, backend), |ctx| {
            ctx.single_nowait(|| {
                for _ in 0..200 {
                    let hits = Arc::clone(&hits);
                    ctx.task(move |_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 200, "{backend:?}");
    }
}

#[test]
fn tasks_borrow_region_data() {
    // Scoped tasks: borrow a slice alive outside the region.
    let mut data = [0u8; 64];
    let chunks: Vec<&mut [u8]> = data.chunks_mut(16).collect();
    let chunks = Mutex::new(chunks);
    parallel_region(&cfg(2, Backend::Atomic), |ctx| {
        ctx.single(|| {
            while let Some(chunk) = chunks.lock().pop() {
                ctx.task(move |_| {
                    for b in chunk {
                        *b = 7;
                    }
                });
            }
        });
    });
    assert!(data.iter().all(|&b| b == 7));
}

#[test]
fn recursive_tasks_fibonacci() {
    fn fib(n: u64) -> u64 {
        if n <= 1 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    for backend in both() {
        let result = Arc::new(AtomicI64::new(0));
        parallel_region(&cfg(4, backend), |ctx| {
            ctx.single(|| {
                let result = Arc::clone(&result);
                ctx.task(move |tc| {
                    fn go(tc: &omp4rs::TaskCtx<'_>, n: u64, out: Arc<AtomicI64>) {
                        if n <= 1 {
                            out.fetch_add(n as i64, Ordering::SeqCst);
                            return;
                        }
                        let o1 = Arc::clone(&out);
                        let o2 = Arc::clone(&out);
                        // Cutoff idiom: defer only large subproblems.
                        tc.task_if(n > 5, move |tc| go(tc, n - 1, o1));
                        tc.task_if(n > 5, move |tc| go(tc, n - 2, o2));
                        tc.taskwait();
                    }
                    go(tc, 12, result);
                });
            });
        });
        // Sum of leaves of the fib(12) call tree equals fib(12).
        assert_eq!(result.load(Ordering::SeqCst) as u64, fib(12), "{backend:?}");
    }
}

#[test]
fn taskwait_waits_for_direct_children() {
    let log = Arc::new(Mutex::new(Vec::new()));
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        ctx.single(|| {
            for i in 0..8 {
                let log = Arc::clone(&log);
                ctx.task(move |_| {
                    log.lock().push(i);
                });
            }
            ctx.taskwait();
            log.lock().push(100);
        });
    });
    let log = log.lock().clone();
    assert_eq!(log.len(), 9);
    assert_eq!(*log.last().unwrap(), 100);
}

#[test]
fn nested_parallel_disabled_by_default() {
    let _g = ICV_LOCK.lock();
    let before = omp4rs::Icvs::current();
    omp4rs::omp_set_nested(false);
    let inner_sizes = Mutex::new(Vec::new());
    parallel_region(&cfg(2, Backend::Atomic), |_ctx| {
        parallel_region(&cfg(2, Backend::Atomic), |inner| {
            inner_sizes.lock().push(inner.num_threads());
        });
    });
    let sizes = inner_sizes.into_inner();
    assert_eq!(sizes, vec![1, 1]);
    omp4rs::Icvs::reset(before);
}

#[test]
fn nested_parallel_enabled() {
    let _g = ICV_LOCK.lock();
    let before = omp4rs::Icvs::current();
    omp4rs::omp_set_nested(true);
    let total = AtomicUsize::new(0);
    let levels = Mutex::new(Vec::new());
    parallel_region(&cfg(2, Backend::Atomic), |_ctx| {
        parallel_region(&cfg(3, Backend::Atomic), |inner| {
            total.fetch_add(1, Ordering::SeqCst);
            levels
                .lock()
                .push((omp4rs::omp_get_level(), inner.num_threads()));
        });
    });
    assert_eq!(total.load(Ordering::SeqCst), 6);
    assert!(levels.into_inner().iter().all(|&(l, s)| l == 2 && s == 3));
    omp4rs::Icvs::reset(before);
}

#[test]
fn api_functions_inside_region() {
    parallel_region(&cfg(3, Backend::Atomic), |ctx| {
        assert!(omp4rs::omp_in_parallel());
        assert_eq!(omp4rs::omp_get_num_threads(), 3);
        assert_eq!(omp4rs::omp_get_thread_num(), ctx.thread_num());
        assert_eq!(omp4rs::omp_get_level(), 1);
        assert_eq!(omp4rs::omp_get_active_level(), 1);
        assert_eq!(
            omp4rs::omp_get_ancestor_thread_num(1),
            ctx.thread_num() as i64
        );
        assert_eq!(omp4rs::omp_get_team_size(1), 3);
    });
    assert!(!omp4rs::omp_in_parallel());
}

#[test]
fn panic_in_worker_propagates_after_join() {
    let result = std::panic::catch_unwind(|| {
        parallel_region(&cfg(3, Backend::Atomic), |ctx| {
            if ctx.thread_num() == 1 {
                panic!("boom from worker");
            }
        });
    });
    assert!(result.is_err());
}

#[test]
fn panic_in_task_propagates_after_region() {
    let result = std::panic::catch_unwind(|| {
        parallel_region(&cfg(2, Backend::Atomic), |ctx| {
            ctx.single(|| {
                ctx.task(|_| panic!("boom from task"));
            });
        });
    });
    assert!(result.is_err());
}

#[test]
fn taskloop_covers_iterations() {
    for backend in both() {
        let marks: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        parallel_region(&cfg(4, backend), |ctx| {
            ctx.single_nowait(|| {
                ctx.taskloop(Some(7), None, false, 0..100, |i| {
                    marks[i as usize].fetch_add(1, Ordering::SeqCst);
                });
                // taskloop's implicit taskwait: everything done here.
                assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
            });
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::SeqCst) == 1),
            "{backend:?}"
        );
    }
}

#[test]
fn taskloop_nogroup_defers_to_barrier() {
    let marks: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    parallel_region(&cfg(3, Backend::Atomic), |ctx| {
        ctx.single_nowait(|| {
            ctx.taskloop(None, Some(6), true, 0..50, |i| {
                marks[i as usize].fetch_add(1, Ordering::SeqCst);
            });
        });
        // The region's end barrier drains the ungrouped tasks.
    });
    assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
}

#[test]
fn nowait_loops_allow_overlap() {
    // Two nowait loops back to back; correctness = all iterations run.
    let first: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    let second: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        ctx.for_each("schedule(dynamic, 1) nowait", 0..50, |i| {
            first[i as usize].fetch_add(1, Ordering::SeqCst);
        });
        ctx.for_each("schedule(dynamic, 1) nowait", 0..50, |i| {
            second[i as usize].fetch_add(1, Ordering::SeqCst);
        });
    });
    assert!(first.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    assert!(second.iter().all(|m| m.load(Ordering::SeqCst) == 1));
}

#[test]
fn barrier_inside_region_synchronizes() {
    let stage = AtomicUsize::new(0);
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        stage.fetch_add(1, Ordering::SeqCst);
        ctx.barrier();
        assert_eq!(stage.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn schedule_runtime_respects_icv() {
    let _g = ICV_LOCK.lock();
    let before = omp4rs::Icvs::current();
    omp4rs::omp_set_schedule(ScheduleKind::Dynamic, Some(4));
    let marks: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
    parallel_region(&cfg(3, Backend::Atomic), |ctx| {
        ctx.for_each("schedule(runtime)", 0..40, |i| {
            marks[i as usize].fetch_add(1, Ordering::SeqCst);
        });
    });
    assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    omp4rs::Icvs::reset(before);
}

#[test]
fn empty_loop_is_fine() {
    parallel_region(&cfg(4, Backend::Atomic), |ctx| {
        ctx.for_each(ForSpec::new(), 0..0, |_| panic!("must not run"));
        let r = ctx.for_reduce(ForSpec::new(), 5..5, 42i64, |_, _| {}, |a, _| a);
        assert_eq!(r, 42);
    });
}

#[test]
fn more_threads_than_work() {
    let hits = AtomicUsize::new(0);
    parallel_region(&cfg(8, Backend::Atomic), |ctx| {
        ctx.for_each("schedule(dynamic)", 0..3, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}
