//! Property-based tests: minipy arithmetic and data structures agree with
//! reference semantics, and the printer round-trips arbitrary-ish programs.

use minipy::{Interp, Value};
use proptest::prelude::*;

fn eval_int(src: &str) -> i64 {
    Interp::new()
        .eval_str(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .as_int()
        .unwrap()
}

fn python_floordiv(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn python_mod(a: i64, b: i64) -> i64 {
    let r = a % b;
    if r != 0 && (r < 0) != (b < 0) {
        r + b
    } else {
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integer arithmetic matches Python's semantics (incl. floor division
    /// and sign-of-divisor modulo).
    #[test]
    fn int_arithmetic_matches_python(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assert_eq!(eval_int(&format!("{a} + {b}")), a + b);
        prop_assert_eq!(eval_int(&format!("{a} - {b}")), a - b);
        prop_assert_eq!(eval_int(&format!("{a} * {b}")), a * b);
        if b != 0 {
            prop_assert_eq!(eval_int(&format!("{a} // {b}")), python_floordiv(a, b));
            prop_assert_eq!(eval_int(&format!("{a} % {b}")), python_mod(a, b));
            // The Python identity: a == (a // b) * b + (a % b)
            prop_assert_eq!(python_floordiv(a, b) * b + python_mod(a, b), a);
        }
    }

    /// Comparison chains agree with the conjunction of pairs.
    #[test]
    fn comparison_chain_semantics(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let chained = Interp::new()
            .eval_str(&format!("{a} < {b} <= {c}"))
            .unwrap()
            .truthy();
        prop_assert_eq!(chained, a < b && b <= c);
    }

    /// range() iteration matches Rust's equivalent stepped iteration.
    #[test]
    fn range_iteration_matches(start in -50i64..50, stop in -50i64..50, step in prop_oneof![1i64..5, (-5i64..-1).prop_map(|v| v)]) {
        let interp = Interp::new();
        interp
            .run(&format!(
                "out = []\nfor i in range({start}, {stop}, {step}):\n    out.append(i)\n"
            ))
            .unwrap();
        let got: Vec<i64> = match interp.get_global("out").unwrap() {
            Value::List(l) => l.read().iter().map(|v| v.as_int().unwrap()).collect(),
            _ => unreachable!(),
        };
        let mut expect = Vec::new();
        let mut i = start;
        while (step > 0 && i < stop) || (step < 0 && i > stop) {
            expect.push(i);
            i += step;
        }
        prop_assert_eq!(got, expect);
    }

    /// Negative indexing and slicing agree with a reference model.
    #[test]
    fn list_slicing_matches_model(items in proptest::collection::vec(-100i64..100, 0..20),
                                  lo in -25i64..25, hi in -25i64..25) {
        let interp = Interp::new();
        let list_src: Vec<String> = items.iter().map(|v| v.to_string()).collect();
        interp
            .run(&format!("out = [{}][{lo}:{hi}]\n", list_src.join(", ")))
            .unwrap();
        let got: Vec<i64> = match interp.get_global("out").unwrap() {
            Value::List(l) => l.read().iter().map(|v| v.as_int().unwrap()).collect(),
            _ => unreachable!(),
        };
        // Python slice model.
        let n = items.len() as i64;
        let clamp = |v: i64| -> i64 {
            let v = if v < 0 { v + n } else { v };
            v.clamp(0, n)
        };
        let (l, h) = (clamp(lo), clamp(hi));
        let expect: Vec<i64> = if l < h {
            items[l as usize..h as usize].to_vec()
        } else {
            Vec::new()
        };
        prop_assert_eq!(got, expect);
    }

    /// sorted() agrees with Rust's stable sort.
    #[test]
    fn sorted_matches_rust(items in proptest::collection::vec(-1000i64..1000, 0..30)) {
        let interp = Interp::new();
        let list_src: Vec<String> = items.iter().map(|v| v.to_string()).collect();
        interp.run(&format!("out = sorted([{}])\n", list_src.join(", "))).unwrap();
        let got: Vec<i64> = match interp.get_global("out").unwrap() {
            Value::List(l) => l.read().iter().map(|v| v.as_int().unwrap()).collect(),
            _ => unreachable!(),
        };
        let mut expect = items.clone();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Dict insert/get/len behave like a reference HashMap.
    #[test]
    fn dict_matches_hashmap(ops in proptest::collection::vec((0u8..3, 0i64..20, -100i64..100), 1..40)) {
        let interp = Interp::new();
        interp.run("d = {}\n").unwrap();
        let mut model = std::collections::HashMap::new();
        for (op, k, v) in &ops {
            match op {
                0 => {
                    interp.run(&format!("d[{k}] = {v}\n")).unwrap();
                    model.insert(*k, *v);
                }
                1 => {
                    let got = interp.eval_str(&format!("d.get({k}, -999999)")).unwrap().as_int().unwrap();
                    prop_assert_eq!(got, model.get(k).copied().unwrap_or(-999_999));
                }
                _ => {
                    if model.remove(k).is_some() {
                        interp.run(&format!("del d[{k}]\n")).unwrap();
                    }
                }
            }
        }
        let len = interp.eval_str("len(d)").unwrap().as_int().unwrap();
        prop_assert_eq!(len as usize, model.len());
    }

    /// Printer is a fixpoint for arithmetic-expression programs.
    #[test]
    fn printer_fixpoint_for_expressions(a in -100i64..100, b in 1i64..100, c in -100i64..100) {
        let src = format!("x = ({a} + {b}) * {c} - {a} // {b}\ny = x < {c} and x != {a}\n");
        let m1 = minipy::parse(&src).unwrap();
        let p1 = minipy::print_module(&m1);
        let m2 = minipy::parse(&p1).unwrap();
        let p2 = minipy::print_module(&m2);
        prop_assert_eq!(p1.clone(), p2);
        // And evaluation agrees between original and printed forms.
        let i1 = Interp::new();
        i1.run(&src).unwrap();
        let i2 = Interp::new();
        i2.run(&p1).unwrap();
        prop_assert!(i1.get_global("x").unwrap().py_eq(&i2.get_global("x").unwrap()));
        prop_assert!(i1.get_global("y").unwrap().py_eq(&i2.get_global("y").unwrap()));
    }

    /// String split/join round trips for space-free word lists.
    #[test]
    fn split_join_round_trip(words in proptest::collection::vec("[a-z]{1,8}", 1..10)) {
        let interp = Interp::new();
        let joined = words.join(" ");
        interp.run(&format!("parts = \"{joined}\".split()\nback = \" \".join(parts)\n")).unwrap();
        let back = interp.get_global("back").unwrap();
        prop_assert_eq!(back.as_str().unwrap(), joined.as_str());
        let n = interp.eval_str("len(parts)").unwrap().as_int().unwrap();
        prop_assert_eq!(n as usize, words.len());
    }
}
