//! Differential harness: every corpus program runs under all three
//! `OMP4RS_MINIPY_VM` settings and must produce identical stdout, results,
//! and errors (message *and* line). `off` is the reference tree-walker;
//! `auto`/`on` route VM-eligible functions through the bytecode tier and
//! must be observationally indistinguishable — including for programs the
//! compiler rejects (nested `def`, `try`/`except`, …), where the per-function
//! fallback has to preserve semantics exactly.

use minipy::bytecode::{self, VmMode};
use minipy::Interp;
use proptest::prelude::*;

/// `set_mode` is process-global; serialize every differential comparison so
/// concurrently running tests in this binary cannot observe each other's
/// mode flips.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one program under one mode: (outcome, stdout). Errors are collapsed
/// to `Display@line` so the comparison covers message and attribution.
fn run_with(src: &str, mode: VmMode) -> (Result<(), String>, String) {
    let prev = bytecode::set_mode(mode);
    let interp = Interp::new().capture_output();
    let result = interp
        .run(src)
        .map(|_| ())
        .map_err(|e| format!("{e}@{:?}", e.line));
    let out = interp.output().unwrap_or_default();
    bytecode::set_mode(prev);
    (result, out)
}

/// Assert `auto` and `on` match the tree-walker (`off`) exactly.
fn differential(src: &str) {
    let _guard = lock();
    let reference = run_with(src, VmMode::Off);
    for mode in [VmMode::Auto, VmMode::On] {
        let got = run_with(src, mode);
        assert_eq!(
            got, reference,
            "{mode:?} diverges from tree-walker on:\n{src}"
        );
    }
}

/// The hand-written corpus: one program per construct family the VM lowers,
/// plus the fallback families it must leave semantically untouched.
const CORPUS: &[&str] = &[
    // -- straight-line arithmetic and calls --------------------------------
    "def f(a, b):\n    return (a + b) * (a - b) // 3 % 7\nprint(f(17, 4))\nprint(f(-17, 4))\n",
    "def f(x):\n    return 4.0 / (1.0 + x * x)\nprint(f(0.5))\nprint(f(-2.0))\n",
    "def f(a):\n    return -a, +a, not a\nprint(f(3))\nprint(f(0))\n",
    "def f(a, b, c):\n    return a < b < c, a == b or b != c, a and b and c\nprint(f(1, 2, 3))\nprint(f(2, 2, 1))\n",
    "def f(s):\n    return s + 'y', s * 3, len(s)\nprint(f('x'))\n",
    // -- loops --------------------------------------------------------------
    "def f(n):\n    total = 0\n    for i in range(n):\n        if i % 3 == 0:\n            continue\n        if i > 17:\n            break\n        total += i\n    return total\nprint(f(40))\n",
    "def f(n):\n    i = 0\n    out = []\n    while i < n:\n        out.append(i * i)\n        i += 1\n    return out\nprint(f(6))\n",
    "def f(items):\n    s = 0\n    for k in items:\n        s += k\n    return s\nprint(f([5, 7, 11]))\nprint(f(()))\n",
    "def f(n):\n    acc = []\n    for i in range(n):\n        for j in range(i):\n            acc.append(i * 10 + j)\n    return acc\nprint(f(5))\n",
    // -- assignment shapes ---------------------------------------------------
    "def f(p):\n    a, b = p\n    a, b = b, a\n    (c, d), e = (a, b), 9\n    return [a, b, c, d, e]\nprint(f((1, 2)))\n",
    "def f():\n    x = y = [0]\n    x.append(1)\n    return y\nprint(f())\n",
    "def f(d):\n    d['k'] = 1\n    d['k'] += 41\n    del d['gone']\n    return d\nprint(f({'gone': 0}))\n",
    "def f(xs):\n    xs[0] += 10\n    xs[-1] = 99\n    return xs[1:3]\nprint(f([1, 2, 3, 4]))\n",
    "def f():\n    x = 5\n    del x\n    return 'ok'\nprint(f())\n",
    // -- containers ----------------------------------------------------------
    "def f():\n    d = {'a': 1, 'b': 2}\n    t = (1, 2, 3)\n    l = [t[0], d['b']]\n    return l, t[1:], sorted(d)\nprint(f())\n",
    "def f(n):\n    return [i for i in range(1)] if False else list(range(n))\nprint(f(4))\n",
    // -- global / closure reads ---------------------------------------------
    "g = 10\ndef f(x):\n    global g\n    g = g + x\n    return g\nprint(f(5))\nprint(f(5))\nprint(g)\n",
    "base = 100\ndef f(x):\n    return base + x\nprint(f(1))\n",
    "def f(flag):\n    if flag:\n        v = 1\n    return v\nv = 7\nprint(f(False))\nprint(f(True))\n",
    // -- try/finally, raise, assert -----------------------------------------
    "def f(x):\n    log = []\n    try:\n        log.append('in')\n        y = 10 // x\n        log.append(y)\n    finally:\n        log.append('fin')\n    return log\nprint(f(2))\n",
    "def f(x):\n    try:\n        return 10 // x\n    finally:\n        print('cleanup')\nprint(f(0))\n",
    "def f(x):\n    assert x > 0, 'must be positive'\n    return x\nprint(f(3))\nprint(f(-1))\n",
    "def f():\n    raise ValueError('boom')\nf()\n",
    // -- errors the VM must attribute identically ---------------------------
    "def f(a):\n    b = a + 1\n    return b + ''\nf(1)\n",
    "def f():\n    return undefined_name\nf()\n",
    "def f(p):\n    a, b, c = p\n    return a\nf((1, 2))\n",
    "def f(p):\n    a, b = p\n    return a\nf((1, 2, 3))\n",
    "def f(xs):\n    return xs[10]\nf([1])\n",
    "def f(a, b):\n    return a\nf(1)\n",
    "def f(a):\n    return a\nf(1, 2)\n",
    "def f(a):\n    return a\nf(b=1)\n",
    "def f(a):\n    return a\nf(1, a=2)\n",
    // -- keyword calls and defaults -----------------------------------------
    "def f(a, b=10, c=20):\n    return a + b * c\nprint(f(1))\nprint(f(1, c=2))\nprint(f(1, 2, 3))\n",
    // -- fallback families: must behave identically via the tree-walker -----
    "def outer(n):\n    def inner(x):\n        return x * 2\n    return inner(n) + 1\nprint(outer(5))\n",
    "def f(xs):\n    return list(map(lambda v: v + 1, xs)) if False else [v + 1 for v in xs]\nprint(f([1, 2]))\n",
    "def f(x):\n    try:\n        return 10 // x\n    except ZeroDivisionError:\n        return -1\nprint(f(0))\nprint(f(5))\n",
    "def f():\n    import math\n    return math.floor(2.5)\nprint(f())\n",
    // -- recursion (every level re-enters the VM) ---------------------------
    "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nprint(fib(12))\n",
];

#[test]
fn corpus_is_mode_invariant() {
    for src in CORPUS {
        differential(src);
    }
}

#[test]
fn vm_actually_executes_the_eligible_corpus() {
    // Guard against the suite passing vacuously (e.g. every program falling
    // back): under `on`, the corpus must push frames through the VM.
    let _guard = lock();
    let prev = bytecode::set_mode(VmMode::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    for src in CORPUS {
        let interp = Interp::new().capture_output();
        let _ = interp.run(src);
    }
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    bytecode::set_mode(prev);
    assert!(
        stats.vm_frames > CORPUS.len() as u64,
        "expected most corpus programs on the VM, got {} frames",
        stats.vm_frames
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random arithmetic expressions evaluate identically on both tiers
    /// (division and modulo run against 0 too — the error path must match).
    #[test]
    fn random_expressions_are_mode_invariant(
        a in -100i64..100,
        b in -8i64..8,
        c in -100i64..100,
        op in prop_oneof![
            Just("+"), Just("-"), Just("*"), Just("//"), Just("%"),
        ],
    ) {
        let src = format!(
            "def f(a, b, c):\n    x = a {op} b\n    y = x * c - a\n    return x, y, x < y\nprint(f({a}, {b}, {c}))\n"
        );
        differential(&src);
    }

    /// Random loop shapes (bounds, strides, accumulators) agree across modes.
    #[test]
    fn random_loops_are_mode_invariant(
        start in -20i64..20,
        stop in -20i64..20,
        step in prop_oneof![1i64..4, -4i64..-1],
        cut in 0i64..30,
    ) {
        let src = format!(
            "def f():\n    total = 0\n    for i in range({start}, {stop}, {step}):\n        if i == {cut}:\n            break\n        total += i\n    return total\nprint(f())\n"
        );
        differential(&src);
    }
}
