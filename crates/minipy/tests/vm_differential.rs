//! Differential harness: every corpus program runs under all three
//! `OMP4RS_MINIPY_VM` settings — and, on the VM, under all three
//! `OMP4RS_MINIPY_QUICKEN` settings — and must produce identical stdout,
//! results, and errors (message *and* line). (`off`, `off`) is the
//! reference tree-walker; every other cell routes through the bytecode
//! tier (generic, quickened, or quickened+unboxed) and must be
//! observationally indistinguishable — including for programs the compiler
//! rejects (nested `def`, `try`/`except`, …), where the per-function
//! fallback has to preserve semantics exactly.

use minipy::bytecode::{self, QuickenMode, VmMode};
use minipy::Interp;
use proptest::prelude::*;

/// `set_mode`/`set_quicken_mode` are process-global; serialize every
/// differential comparison so concurrently running tests in this binary
/// cannot observe each other's mode flips.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one program under one (VM, quicken) cell: (outcome, stdout). Errors
/// are collapsed to `Display@line` so the comparison covers message and
/// attribution.
fn run_with(src: &str, mode: VmMode, quicken: QuickenMode) -> (Result<(), String>, String) {
    let prev = bytecode::set_mode(mode);
    let prev_q = bytecode::set_quicken_mode(quicken);
    let interp = Interp::new().capture_output();
    let result = interp
        .run(src)
        .map(|_| ())
        .map_err(|e| format!("{e}@{:?}", e.line));
    let out = interp.output().unwrap_or_default();
    bytecode::set_quicken_mode(prev_q);
    bytecode::set_mode(prev);
    (result, out)
}

/// Every non-reference (VM, quicken) cell the differential sweep covers:
/// the generic VM tiers, then the quickened tier and the unboxed tier on
/// top of the full VM.
const CELLS: &[(VmMode, QuickenMode)] = &[
    (VmMode::Auto, QuickenMode::Off),
    (VmMode::On, QuickenMode::Off),
    (VmMode::On, QuickenMode::Auto),
    (VmMode::On, QuickenMode::On),
];

/// Assert every VM/quicken cell matches the tree-walker exactly.
fn differential(src: &str) {
    let _guard = lock();
    let reference = run_with(src, VmMode::Off, QuickenMode::Off);
    for (mode, quicken) in CELLS {
        let got = run_with(src, *mode, *quicken);
        assert_eq!(
            got, reference,
            "vm={mode:?} quicken={quicken:?} diverges from tree-walker on:\n{src}"
        );
    }
}

/// The hand-written corpus: one program per construct family the VM lowers,
/// plus the fallback families it must leave semantically untouched.
const CORPUS: &[&str] = &[
    // -- straight-line arithmetic and calls --------------------------------
    "def f(a, b):\n    return (a + b) * (a - b) // 3 % 7\nprint(f(17, 4))\nprint(f(-17, 4))\n",
    "def f(x):\n    return 4.0 / (1.0 + x * x)\nprint(f(0.5))\nprint(f(-2.0))\n",
    "def f(a):\n    return -a, +a, not a\nprint(f(3))\nprint(f(0))\n",
    "def f(a, b, c):\n    return a < b < c, a == b or b != c, a and b and c\nprint(f(1, 2, 3))\nprint(f(2, 2, 1))\n",
    "def f(s):\n    return s + 'y', s * 3, len(s)\nprint(f('x'))\n",
    // -- loops --------------------------------------------------------------
    "def f(n):\n    total = 0\n    for i in range(n):\n        if i % 3 == 0:\n            continue\n        if i > 17:\n            break\n        total += i\n    return total\nprint(f(40))\n",
    "def f(n):\n    i = 0\n    out = []\n    while i < n:\n        out.append(i * i)\n        i += 1\n    return out\nprint(f(6))\n",
    "def f(items):\n    s = 0\n    for k in items:\n        s += k\n    return s\nprint(f([5, 7, 11]))\nprint(f(()))\n",
    "def f(n):\n    acc = []\n    for i in range(n):\n        for j in range(i):\n            acc.append(i * 10 + j)\n    return acc\nprint(f(5))\n",
    // -- assignment shapes ---------------------------------------------------
    "def f(p):\n    a, b = p\n    a, b = b, a\n    (c, d), e = (a, b), 9\n    return [a, b, c, d, e]\nprint(f((1, 2)))\n",
    "def f():\n    x = y = [0]\n    x.append(1)\n    return y\nprint(f())\n",
    "def f(d):\n    d['k'] = 1\n    d['k'] += 41\n    del d['gone']\n    return d\nprint(f({'gone': 0}))\n",
    "def f(xs):\n    xs[0] += 10\n    xs[-1] = 99\n    return xs[1:3]\nprint(f([1, 2, 3, 4]))\n",
    "def f():\n    x = 5\n    del x\n    return 'ok'\nprint(f())\n",
    // -- containers ----------------------------------------------------------
    "def f():\n    d = {'a': 1, 'b': 2}\n    t = (1, 2, 3)\n    l = [t[0], d['b']]\n    return l, t[1:], sorted(d)\nprint(f())\n",
    "def f(n):\n    return [i for i in range(1)] if False else list(range(n))\nprint(f(4))\n",
    // -- global / closure reads ---------------------------------------------
    "g = 10\ndef f(x):\n    global g\n    g = g + x\n    return g\nprint(f(5))\nprint(f(5))\nprint(g)\n",
    "base = 100\ndef f(x):\n    return base + x\nprint(f(1))\n",
    "def f(flag):\n    if flag:\n        v = 1\n    return v\nv = 7\nprint(f(False))\nprint(f(True))\n",
    // -- try/finally, raise, assert -----------------------------------------
    "def f(x):\n    log = []\n    try:\n        log.append('in')\n        y = 10 // x\n        log.append(y)\n    finally:\n        log.append('fin')\n    return log\nprint(f(2))\n",
    "def f(x):\n    try:\n        return 10 // x\n    finally:\n        print('cleanup')\nprint(f(0))\n",
    "def f(x):\n    assert x > 0, 'must be positive'\n    return x\nprint(f(3))\nprint(f(-1))\n",
    "def f():\n    raise ValueError('boom')\nf()\n",
    // -- errors the VM must attribute identically ---------------------------
    "def f(a):\n    b = a + 1\n    return b + ''\nf(1)\n",
    "def f():\n    return undefined_name\nf()\n",
    "def f(p):\n    a, b, c = p\n    return a\nf((1, 2))\n",
    "def f(p):\n    a, b = p\n    return a\nf((1, 2, 3))\n",
    "def f(xs):\n    return xs[10]\nf([1])\n",
    "def f(a, b):\n    return a\nf(1)\n",
    "def f(a):\n    return a\nf(1, 2)\n",
    "def f(a):\n    return a\nf(b=1)\n",
    "def f(a):\n    return a\nf(1, a=2)\n",
    // -- keyword calls and defaults -----------------------------------------
    "def f(a, b=10, c=20):\n    return a + b * c\nprint(f(1))\nprint(f(1, c=2))\nprint(f(1, 2, 3))\n",
    // -- fallback families: must behave identically via the tree-walker -----
    "def outer(n):\n    def inner(x):\n        return x * 2\n    return inner(n) + 1\nprint(outer(5))\n",
    "def f(xs):\n    return list(map(lambda v: v + 1, xs)) if False else [v + 1 for v in xs]\nprint(f([1, 2]))\n",
    "def f(x):\n    try:\n        return 10 // x\n    except ZeroDivisionError:\n        return -1\nprint(f(0))\nprint(f(5))\n",
    "def f():\n    import math\n    return math.floor(2.5)\nprint(f())\n",
    // -- recursion (every level re-enters the VM) ---------------------------
    "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nprint(fib(12))\n",
    // -- int overflow boundaries (quickened BIN_II/AUG_II must raise the
    //    tree-walker's OverflowError, not wrap) ------------------------------
    "def f(a, b):\n    return a * b\nprint(f(3037000499, 3037000500))\n",
    "def f():\n    x = 9223372036854775807\n    x += 1\n    return x\nf()\n",
    "def f():\n    x = -9223372036854775807\n    return x - 2\nf()\n",
    "def f(n):\n    x = 1\n    for i in range(n):\n        x = x * 10\n    return x\nprint(f(18))\nf(20)\n",
    // -- float NaN/inf (quickened BIN_FF/CMP_NUM must keep IEEE equality and
    //    the tree-walker's ValueError on NaN ordering) -----------------------
    "def f():\n    inf = 1e308 * 10.0\n    nan = inf - inf\n    return nan == nan, nan != nan, inf > 1.0, 0.0 < inf, inf == inf\nprint(f())\n",
    "def f():\n    nan = (1e308 * 10.0) - (1e308 * 10.0)\n    return nan < 1.0\nf()\n",
    "def f():\n    inf = 1e308 * 10.0\n    return inf - inf == 0.0, 1.0 / inf\nprint(f())\n",
    // -- mixed int/float boundary programs (a quickened site that first sees
    //    ints then floats must deopt, and f64 coercion must round exactly as
    //    the tree-walker's) --------------------------------------------------
    "def f(x):\n    return x * 2 + 1\nprint(f(10))\nprint(f(0.5))\nprint(f(10))\n",
    "def f():\n    big = 9007199254740993\n    return big == 9007199254740992.0, big < 9007199254740994.0, big + 0.0\nprint(f())\n",
    "def f(x, y):\n    return x < y, x == y, x // y, x % y\nprint(f(7, 2))\nprint(f(7.0, 2))\nprint(f(-7, 2.5))\n",
    "def f(x):\n    return x + 1\nprint(f(5))\nprint(f(True))\n",
    "def f(xs, i):\n    xs[i] = xs[i] + 1\n    return xs[i]\nprint(f([1, 2], 1))\nprint(f([1.5, 2.5], 1.0))\n",
];

#[test]
fn corpus_is_mode_invariant() {
    for src in CORPUS {
        differential(src);
    }
}

#[test]
fn vm_actually_executes_the_eligible_corpus() {
    // Guard against the suite passing vacuously (e.g. every program falling
    // back): under `on`, the corpus must push frames through the VM.
    let _guard = lock();
    let prev = bytecode::set_mode(VmMode::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    for src in CORPUS {
        let interp = Interp::new().capture_output();
        let _ = interp.run(src);
    }
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    bytecode::set_mode(prev);
    assert!(
        stats.vm_frames > CORPUS.len() as u64,
        "expected most corpus programs on the VM, got {} frames",
        stats.vm_frames
    );
}

#[test]
fn quickening_actually_rewrites_and_deopts_on_the_corpus() {
    // Anti-vacuity guard for the quicken sweep: if specialization never
    // fired (or guards never failed), the differential cells above would
    // pass without testing the tier at all. The corpus must drive both
    // counters, and the rewrite/deopt invariant must hold.
    let _guard = lock();
    let prev = bytecode::set_mode(VmMode::On);
    let prev_q = bytecode::set_quicken_mode(QuickenMode::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    for src in CORPUS {
        let interp = Interp::new().capture_output();
        let _ = interp.run(src);
    }
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    bytecode::set_quicken_mode(prev_q);
    bytecode::set_mode(prev);
    assert!(
        stats.quicken_rewrites > 0,
        "corpus never specialized an instruction"
    );
    assert!(
        stats.quicken_deopts >= 1,
        "corpus never fired a deopt guard (mixed-type programs missing?)"
    );
    assert!(
        stats.quicken_deopts <= stats.quicken_rewrites,
        "deopts ({}) exceed rewrites ({})",
        stats.quicken_deopts,
        stats.quicken_rewrites
    );
    assert!(
        stats.ic_hits + stats.ic_misses > 0,
        "corpus never exercised a dispatch-site inline cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random arithmetic expressions evaluate identically on both tiers
    /// (division and modulo run against 0 too — the error path must match).
    #[test]
    fn random_expressions_are_mode_invariant(
        a in -100i64..100,
        b in -8i64..8,
        c in -100i64..100,
        op in prop_oneof![
            Just("+"), Just("-"), Just("*"), Just("//"), Just("%"),
        ],
    ) {
        let src = format!(
            "def f(a, b, c):\n    x = a {op} b\n    y = x * c - a\n    return x, y, x < y\nprint(f({a}, {b}, {c}))\n"
        );
        differential(&src);
    }

    /// Random loop shapes (bounds, strides, accumulators) agree across modes.
    #[test]
    fn random_loops_are_mode_invariant(
        start in -20i64..20,
        stop in -20i64..20,
        step in prop_oneof![1i64..4, -4i64..-1],
        cut in 0i64..30,
    ) {
        let src = format!(
            "def f():\n    total = 0\n    for i in range({start}, {stop}, {step}):\n        if i == {cut}:\n            break\n        total += i\n    return total\nprint(f())\n"
        );
        differential(&src);
    }

    /// Int arithmetic at the i64 overflow boundary raises the identical
    /// OverflowError in every cell (quickened BIN_II/AUG_II use checked
    /// arithmetic through the same helper as the tree-walker).
    #[test]
    fn random_overflow_boundaries_are_mode_invariant(
        near_max in prop_oneof![Just(true), Just(false)],
        delta in 0i64..4,
        op in prop_oneof![Just("+"), Just("-"), Just("*")],
        rhs in 1i64..3,
    ) {
        let base = if near_max {
            format!("9223372036854775807 - {delta}")
        } else {
            format!("-9223372036854775807 + {delta}")
        };
        let src = format!(
            "def f(a, b):\n    x = a {op} b\n    a {op}= b\n    return x, a\nprint(f({base}, {rhs}))\n"
        );
        differential(&src);
    }

    /// Float NaN/inf propagation — IEEE equality, the NaN-ordering
    /// ValueError, and inf arithmetic — agrees across every cell.
    #[test]
    fn random_nan_inf_programs_are_mode_invariant(
        lhs in prop_oneof![
            Just("1e308 * 10.0"),
            Just("-(1e308 * 10.0)"),
            Just("(1e308 * 10.0) - (1e308 * 10.0)"),
            Just("0.5"),
        ],
        op in prop_oneof![
            Just("+"), Just("*"), Just("=="), Just("!="), Just("<"), Just(">="),
        ],
        rhs in -4i64..4,
    ) {
        let src = format!(
            "def f(x, y):\n    return x {op} y\nprint(f({lhs}, {rhs}))\nprint(f({lhs}, 0.25))\n"
        );
        differential(&src);
    }

    /// Mixed int/float programs around the 2^53 precision boundary: the
    /// quickened compare/arithmetic must coerce through f64 exactly as the
    /// tree-walker does (including equality that "succeeds" by rounding).
    #[test]
    fn random_mixed_boundary_programs_are_mode_invariant(
        offset in -2i64..3,
        op in prop_oneof![Just("=="), Just("<"), Just("+"), Just("//")],
        float_side in prop_oneof![Just(true), Just(false)],
    ) {
        let (a, b) = if float_side {
            (format!("9007199254740992 + {offset}"), "9007199254740993.0".to_string())
        } else {
            (format!("{offset}"), "0.5".to_string())
        };
        let src = format!(
            "def f(x, y):\n    r1 = x {op} y\n    r2 = y {op} x\n    return r1, r2\nprint(f({a}, {b}))\nprint(f(2, 3))\n"
        );
        differential(&src);
    }
}
