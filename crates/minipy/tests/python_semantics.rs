//! Behavioural tests: minipy programs must match Python semantics.

use minipy::{ErrKind, Gil, GilMode, Interp, Value};

fn run(src: &str) -> Interp {
    let interp = Interp::new().capture_output();
    interp
        .run(src)
        .unwrap_or_else(|e| panic!("error running {src:?}: {e}"));
    interp
}

fn global_int(interp: &Interp, name: &str) -> i64 {
    interp
        .get_global(name)
        .unwrap_or_else(|| panic!("no global {name}"))
        .as_int()
        .unwrap()
}

fn global_float(interp: &Interp, name: &str) -> f64 {
    interp.get_global(name).unwrap().as_float().unwrap()
}

fn eval(src: &str) -> Value {
    Interp::new()
        .eval_str(src)
        .unwrap_or_else(|e| panic!("error evaluating {src:?}: {e}"))
}

#[test]
fn arithmetic_matches_python() {
    assert_eq!(eval("7 // 2").as_int().unwrap(), 3);
    assert_eq!(eval("-7 // 2").as_int().unwrap(), -4);
    assert_eq!(eval("7 // -2").as_int().unwrap(), -4);
    assert_eq!(eval("-7 // -2").as_int().unwrap(), 3);
    assert_eq!(eval("7 % 3").as_int().unwrap(), 1);
    assert_eq!(eval("-7 % 3").as_int().unwrap(), 2);
    assert_eq!(eval("7 % -3").as_int().unwrap(), -2);
    assert_eq!(eval("2 ** 10").as_int().unwrap(), 1024);
    assert_eq!(eval("2 ** -1").as_float().unwrap(), 0.5);
    assert_eq!(eval("7 / 2").as_float().unwrap(), 3.5);
    assert_eq!(eval("1.5 + 2").as_float().unwrap(), 3.5);
    assert_eq!(eval("-2 ** 2").as_int().unwrap(), -4); // unary binds looser than **
}

#[test]
fn division_by_zero() {
    let interp = Interp::new();
    let err = interp.eval_str("1 / 0").unwrap_err();
    assert_eq!(err.kind, ErrKind::ZeroDivision);
    let err = interp.eval_str("1 // 0").unwrap_err();
    assert_eq!(err.kind, ErrKind::ZeroDivision);
    let err = interp.eval_str("1.0 % 0.0").unwrap_err();
    assert_eq!(err.kind, ErrKind::ZeroDivision);
}

#[test]
fn string_operations() {
    assert_eq!(eval("'ab' + 'cd'").as_str().unwrap(), "abcd");
    assert_eq!(eval("'ab' * 3").as_str().unwrap(), "ababab");
    assert_eq!(eval("'hello world'.split()").repr(), "['hello', 'world']");
    assert_eq!(eval("'a,b,c'.split(',')").repr(), "['a', 'b', 'c']");
    assert_eq!(eval("'  x  '.strip()").as_str().unwrap(), "x");
    assert_eq!(eval("'ABC'.lower()").as_str().unwrap(), "abc");
    assert_eq!(eval("'-'.join(['a', 'b'])").as_str().unwrap(), "a-b");
    assert_eq!(eval("'hello'[1]").as_str().unwrap(), "e");
    assert_eq!(eval("'hello'[-1]").as_str().unwrap(), "o");
    assert_eq!(eval("'hello'[1:3]").as_str().unwrap(), "el");
    assert_eq!(eval("'hello'[::-1]").as_str().unwrap(), "olleh");
    assert_eq!(eval("len('héllo')").as_int().unwrap(), 5);
    assert_eq!(eval("'banana'.count('an')").as_int().unwrap(), 2);
    assert_eq!(eval("'banana'.find('na')").as_int().unwrap(), 2);
    assert_eq!(
        eval("'banana'.replace('a', 'o')").as_str().unwrap(),
        "bonono"
    );
}

#[test]
fn comparison_chaining() {
    assert!(eval("1 < 2 < 3").truthy());
    assert!(!eval("1 < 2 > 3").truthy());
    assert!(eval("'a' < 'b'").truthy());
    assert!(eval("[1, 2] < [1, 3]").truthy());
    assert!(eval("(1, 2) < (1, 2, 0)").truthy());
    assert!(eval("3 in [1, 2, 3]").truthy());
    assert!(eval("4 not in [1, 2, 3]").truthy());
    assert!(eval("'el' in 'hello'").truthy());
    assert!(eval("5 in range(0, 10)").truthy());
    assert!(!eval("5 in range(0, 10, 2)").truthy());
    assert!(eval("None is None").truthy());
}

#[test]
fn short_circuit_returns_operand() {
    assert_eq!(eval("0 or 'fallback'").as_str().unwrap(), "fallback");
    assert_eq!(eval("'x' and 5").as_int().unwrap(), 5);
    assert_eq!(eval("0 and unbound_name").as_int().unwrap(), 0); // not evaluated
    assert_eq!(eval("1 or unbound_name").as_int().unwrap(), 1);
}

#[test]
fn while_and_for_loops() {
    let interp = run("total = 0\nfor i in range(10):\n    total += i\n");
    assert_eq!(global_int(&interp, "total"), 45);
    let interp = run("n = 0\nwhile n < 5:\n    n += 1\n");
    assert_eq!(global_int(&interp, "n"), 5);
    let interp = run(
        "hits = 0\nfor i in range(10):\n    if i == 3:\n        continue\n    if i == 6:\n        break\n    hits += 1\n",
    );
    assert_eq!(global_int(&interp, "hits"), 5);
}

#[test]
fn negative_range_iteration() {
    let interp = run("acc = []\nfor i in range(5, 0, -2):\n    acc.append(i)\n");
    assert_eq!(interp.get_global("acc").unwrap().repr(), "[5, 3, 1]");
}

#[test]
fn functions_closures_recursion() {
    let interp = run(
        "def fib(n):\n    if n <= 1:\n        return n\n    return fib(n - 1) + fib(n - 2)\nr = fib(12)\n",
    );
    assert_eq!(global_int(&interp, "r"), 144);

    let interp = run(
        "def counter():\n    count = 0\n    def inc():\n        nonlocal count\n        count += 1\n        return count\n    return inc\nc = counter()\nc()\nc()\nlast = c()\n",
    );
    assert_eq!(global_int(&interp, "last"), 3);
}

#[test]
fn default_and_keyword_arguments() {
    let interp = run(
        "def f(a, b=10, c=20):\n    return a + b + c\nr1 = f(1)\nr2 = f(1, c=2)\nr3 = f(1, 2, 3)\n",
    );
    assert_eq!(global_int(&interp, "r1"), 31);
    assert_eq!(global_int(&interp, "r2"), 13);
    assert_eq!(global_int(&interp, "r3"), 6);
}

#[test]
fn bad_calls_raise_type_errors() {
    let interp = Interp::new();
    interp.run("def f(a):\n    return a\n").unwrap();
    assert_eq!(interp.run("f()\n").unwrap_err().kind, ErrKind::Type);
    assert_eq!(interp.run("f(1, 2)\n").unwrap_err().kind, ErrKind::Type);
    assert_eq!(interp.run("f(1, a=1)\n").unwrap_err().kind, ErrKind::Type);
    assert_eq!(interp.run("f(b=1)\n").unwrap_err().kind, ErrKind::Type);
}

#[test]
fn global_statement() {
    let interp = run("g = 1\ndef bump():\n    global g\n    g += 1\nbump()\nbump()\n");
    assert_eq!(global_int(&interp, "g"), 3);
}

#[test]
fn lists_and_dicts() {
    let interp = run(
        "l = [3, 1, 2]\nl.append(0)\nl.sort()\nfirst = l[0]\nl2 = l.copy()\nl2.reverse()\nd = {}\nd['a'] = 1\nd['b'] = d.get('a', 0) + d.get('missing', 10)\nn = len(d)\n",
    );
    assert_eq!(global_int(&interp, "first"), 0);
    assert_eq!(interp.get_global("l2").unwrap().repr(), "[3, 2, 1, 0]");
    assert_eq!(global_int(&interp, "n"), 2);
    assert_eq!(eval("sorted([3, 1, 2], reverse=True)").repr(), "[3, 2, 1]");
}

#[test]
fn dict_iteration_and_items() {
    let interp = run(
        "d = {'x': 1, 'y': 2, 'z': 3}\ntotal = 0\nfor k in d:\n    total += d[k]\npairs = sorted(d.items())\n",
    );
    assert_eq!(global_int(&interp, "total"), 6);
    assert_eq!(
        interp.get_global("pairs").unwrap().repr(),
        "[('x', 1), ('y', 2), ('z', 3)]"
    );
}

#[test]
fn tuple_unpacking() {
    let interp = run("a, b = 1, 2\na, b = b, a\nfor i, c in enumerate('xy'):\n    last = (i, c)\n");
    assert_eq!(global_int(&interp, "a"), 2);
    assert_eq!(global_int(&interp, "b"), 1);
    assert_eq!(interp.get_global("last").unwrap().repr(), "(1, 'y')");
}

#[test]
fn unpacking_errors() {
    let interp = Interp::new();
    assert_eq!(
        interp.run("a, b = [1, 2, 3]\n").unwrap_err().kind,
        ErrKind::Value
    );
    assert_eq!(
        interp.run("a, b, c = [1, 2]\n").unwrap_err().kind,
        ErrKind::Value
    );
}

#[test]
fn exceptions_and_finally() {
    let interp = run(
        "log = []\ntry:\n    log.append('try')\n    raise ValueError('boom')\n    log.append('unreached')\nexcept ValueError as e:\n    log.append(str(e))\nfinally:\n    log.append('finally')\n",
    );
    assert_eq!(
        interp.get_global("log").unwrap().repr(),
        "['try', 'boom', 'finally']"
    );
}

#[test]
fn except_matching_order_and_reraise() {
    let interp = run(
        "kind = ''\ntry:\n    try:\n        1 // 0\n    except ValueError:\n        kind = 'value'\n    except ZeroDivisionError:\n        kind = 'zero'\nexcept:\n    kind = 'outer'\n",
    );
    assert_eq!(interp.get_global("kind").unwrap().as_str().unwrap(), "zero");

    let interp = Interp::new();
    let err = interp
        .run("try:\n    raise KeyError('k')\nexcept KeyError:\n    raise\n")
        .unwrap_err();
    assert_eq!(err.kind, ErrKind::Key);
}

#[test]
fn finally_overrides_return() {
    let interp =
        run("def f():\n    try:\n        return 1\n    finally:\n        return 2\nr = f()\n");
    assert_eq!(global_int(&interp, "r"), 2);
}

#[test]
fn else_clause_on_try() {
    let interp = run(
        "path = []\ntry:\n    path.append('body')\nexcept:\n    path.append('handler')\nelse:\n    path.append('else')\n",
    );
    assert_eq!(
        interp.get_global("path").unwrap().repr(),
        "['body', 'else']"
    );
}

#[test]
fn builtin_coverage() {
    assert_eq!(eval("abs(-3)").as_int().unwrap(), 3);
    assert_eq!(eval("min(3, 1, 2)").as_int().unwrap(), 1);
    assert_eq!(eval("max([3, 1, 2])").as_int().unwrap(), 3);
    assert_eq!(eval("sum([1, 2, 3])").as_int().unwrap(), 6);
    assert_eq!(eval("sum([0.5, 0.25])").as_float().unwrap(), 0.75);
    assert_eq!(eval("int('42')").as_int().unwrap(), 42);
    assert_eq!(eval("int(3.9)").as_int().unwrap(), 3);
    assert_eq!(eval("float('2.5')").as_float().unwrap(), 2.5);
    assert_eq!(eval("str(123)").as_str().unwrap(), "123");
    assert_eq!(eval("len(range(0, 10, 3))").as_int().unwrap(), 4);
    assert_eq!(eval("list(range(3))").repr(), "[0, 1, 2]");
    assert_eq!(
        eval("list(zip([1, 2], 'ab'))").repr(),
        "[(1, 'a'), (2, 'b')]"
    );
    assert!(eval("any([0, 0, 1])").truthy());
    assert!(!eval("all([1, 0])").truthy());
    assert_eq!(eval("divmod(7, 2)").repr(), "(3, 1)");
    assert_eq!(eval("round(2.675, 2)").as_float().unwrap(), 2.68);
    assert!(eval("isinstance(3, int)").truthy());
    assert!(eval("isinstance('x', (int, str))").truthy());
    assert!(!eval("isinstance('x', int)").truthy());
    assert_eq!(eval("ord('A')").as_int().unwrap(), 65);
    assert_eq!(eval("chr(97)").as_str().unwrap(), "a");
}

#[test]
fn math_and_time_modules() {
    let interp = run("import math\nr = math.sqrt(16.0)\np = math.pi\nfl = math.floor(2.7)\n");
    assert_eq!(global_float(&interp, "r"), 4.0);
    assert!((global_float(&interp, "p") - std::f64::consts::PI).abs() < 1e-12);
    assert_eq!(global_int(&interp, "fl"), 2);

    let interp = run("from math import sqrt\nr = sqrt(9.0)\n");
    assert_eq!(global_float(&interp, "r"), 3.0);

    let interp =
        run("import time\nt0 = time.perf_counter()\nt1 = time.perf_counter()\nok = t1 >= t0\n");
    assert!(interp.get_global("ok").unwrap().truthy());
}

#[test]
fn import_star() {
    let interp = run("from math import *\nr = sqrt(25.0)\n");
    assert_eq!(global_float(&interp, "r"), 5.0);
}

#[test]
fn missing_module_errors() {
    let interp = Interp::new();
    let err = interp.run("import nonexistent\n").unwrap_err();
    assert_eq!(err.kind, ErrKind::Custom("ModuleNotFoundError".into()));
}

#[test]
fn lambda_and_sorted_key() {
    assert_eq!(
        eval("sorted(['bb', 'a', 'ccc'], key=lambda s: len(s))").repr(),
        "['a', 'bb', 'ccc']"
    );
    let interp = run("f = lambda x, y=10: x + y\nr = f(5)\n");
    assert_eq!(global_int(&interp, "r"), 15);
}

#[test]
fn ternary_and_boolops_in_context() {
    let interp = run("x = 5\nlabel = 'big' if x > 3 else 'small'\n");
    assert_eq!(interp.get_global("label").unwrap().as_str().unwrap(), "big");
}

#[test]
fn with_statement_executes_body() {
    // minipy's `with` evaluates the context and runs the body (no context
    // manager protocol) — the OMP4Py `omp()` no-op container pattern.
    let interp = run("def omp(d):\n    return d\nx = 0\nwith omp('parallel'):\n    x = 1\n");
    assert_eq!(global_int(&interp, "x"), 1);
}

#[test]
fn decorators_apply() {
    let interp = run(
        "def double(f):\n    def wrapper(x):\n        return f(x) * 2\n    return wrapper\n@double\ndef inc(x):\n    return x + 1\nr = inc(5)\n",
    );
    assert_eq!(global_int(&interp, "r"), 12);
}

#[test]
fn print_captures_output() {
    let interp = run("print('hello', 42)\nprint('a', 'b', sep='-', end='!')\n");
    assert_eq!(interp.output().unwrap(), "hello 42\na-b!");
}

#[test]
fn name_error_reports_line() {
    let interp = Interp::new();
    let err = interp.run("x = 1\ny = missing\n").unwrap_err();
    assert_eq!(err.kind, ErrKind::Name);
    assert_eq!(err.line, Some(2));
}

#[test]
fn recursion_limit() {
    let mut interp = Interp::new();
    interp.set_recursion_limit(50);
    interp.run("def f(n):\n    return f(n + 1)\n").unwrap();
    let err = interp.run("f(0)\n").unwrap_err();
    assert_eq!(err.kind, ErrKind::Custom("RecursionError".into()));
}

#[test]
fn list_index_errors() {
    let interp = Interp::new();
    assert_eq!(
        interp.eval_str("[1, 2][5]").unwrap_err().kind,
        ErrKind::Index
    );
    assert_eq!(interp.eval_str("{}['k']").unwrap_err().kind, ErrKind::Key);
    assert_eq!(
        interp.eval_str("[].pop()").unwrap_err().kind,
        ErrKind::Index
    );
}

#[test]
fn negative_indexing_and_slices() {
    assert_eq!(eval("[1, 2, 3][-1]").as_int().unwrap(), 3);
    assert_eq!(eval("[1, 2, 3, 4][1:3]").repr(), "[2, 3]");
    assert_eq!(eval("[1, 2, 3, 4][::2]").repr(), "[1, 3]");
    assert_eq!(eval("[1, 2, 3, 4][::-1]").repr(), "[4, 3, 2, 1]");
    assert_eq!(eval("[1, 2, 3, 4][10:]").repr(), "[]");
    assert_eq!(eval("(1, 2, 3)[-2]").as_int().unwrap(), 2);
    assert_eq!(eval("range(10, 0, -2)[1]").as_int().unwrap(), 8);
}

#[test]
fn del_statement() {
    let interp = run("d = {'a': 1, 'b': 2}\ndel d['a']\nl = [1, 2, 3]\ndel l[0]\nx = 9\ndel x\n");
    assert_eq!(interp.get_global("d").unwrap().repr(), "{'b': 2}");
    assert_eq!(interp.get_global("l").unwrap().repr(), "[2, 3]");
    assert!(interp.get_global("x").is_none());
}

#[test]
fn augmented_assignment_on_subscripts() {
    let interp = run("l = [1, 2, 3]\nl[1] *= 10\nd = {'k': 5}\nd['k'] += 1\n");
    assert_eq!(interp.get_global("l").unwrap().repr(), "[1, 20, 3]");
    assert_eq!(interp.get_global("d").unwrap().repr(), "{'k': 6}");
}

#[test]
fn assert_statement() {
    let interp = Interp::new();
    interp.run("assert 1 + 1 == 2\n").unwrap();
    let err = interp.run("assert False, 'oops'\n").unwrap_err();
    assert_eq!(err.kind, ErrKind::Assertion);
    assert_eq!(err.msg, "oops");
}

#[test]
fn shared_state_across_threads() {
    // The free-threaded property: one interpreter, many OS threads.
    let interp = Interp::new();
    interp
        .run("counter = [0]\ndef bump(n):\n    for _ in range(n):\n        counter.append(1)\n")
        .unwrap();
    let bump = interp.get_global("bump").unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let interp = interp.clone();
        let bump = bump.clone();
        handles.push(std::thread::spawn(move || {
            interp.call(&bump, vec![Value::Int(100)]).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // list.append takes the per-object lock, so all appends land.
    let len = interp.eval_str("len(counter)").unwrap().as_int().unwrap();
    assert_eq!(len, 401);
}

#[test]
fn gil_enabled_still_correct() {
    let gil = Gil::with_interval(GilMode::Enabled, 8);
    let interp = Interp::with_gil(gil);
    interp
        .run("total = [0]\ndef work():\n    acc = 0\n    for i in range(200):\n        acc += i\n    total.append(acc)\n")
        .unwrap();
    let work = interp.get_global("work").unwrap();
    let mut handles = Vec::new();
    for _ in 0..3 {
        let interp = interp.clone();
        let work = work.clone();
        handles.push(std::thread::spawn(move || {
            interp.call(&work, vec![]).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(interp.gil().switch_count() > 0, "GIL should have switched");
    let v = interp.eval_str("total[1] + total[2] + total[3]").unwrap();
    assert_eq!(v.as_int().unwrap(), 3 * 19900);
}

#[test]
fn integer_overflow_is_reported() {
    let interp = Interp::new();
    let err = interp.eval_str("9223372036854775807 + 1").unwrap_err();
    assert_eq!(err.kind, ErrKind::Custom("OverflowError".into()));
}

#[test]
fn isinstance_checks() {
    assert!(eval("isinstance([1], list)").truthy());
    assert!(eval("isinstance({}, dict)").truthy());
    assert!(eval("isinstance((1,), tuple)").truthy());
    assert!(eval("isinstance(True, bool)").truthy());
}

#[test]
fn multiple_targets_share_value() {
    let interp = run("a = b = [1]\na.append(2)\nn = len(b)\n");
    assert_eq!(global_int(&interp, "n"), 2);
}

#[test]
fn nested_function_reads_outer_locals() {
    let interp = run(
        "def outer(n):\n    factor = 10\n    def inner(x):\n        return x * factor\n    return inner(n)\nr = outer(7)\n",
    );
    assert_eq!(global_int(&interp, "r"), 70);
}

#[test]
fn dict_setdefault_and_update() {
    let interp = run(
        "d = {}\nd.setdefault('k', []).append(1)\nd.setdefault('k', []).append(2)\nd2 = {'a': 1}\nd2.update({'b': 2})\nn = len(d['k']) + len(d2)\n",
    );
    assert_eq!(global_int(&interp, "n"), 4);
}

#[test]
fn string_methods_detail() {
    assert!(eval("'abc'.startswith('ab')").truthy());
    assert!(eval("'abc'.endswith('bc')").truthy());
    assert!(eval("'123'.isdigit()").truthy());
    assert!(!eval("'12a'.isdigit()").truthy());
    assert!(eval("'abc'.isalpha()").truthy());
    assert_eq!(eval("'a b\\nc'.split()").repr(), "['a', 'b', 'c']");
    assert_eq!(eval("'x\\ny'.splitlines()").repr(), "['x', 'y']");
}
