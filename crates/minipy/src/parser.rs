//! Recursive-descent parser producing a [`Module`] from tokens.

use std::sync::Arc;

use crate::ast::*;
use crate::error::{ErrKind, PyErr};
use crate::lexer::tokenize;
use crate::token::{Kw, Op, Tok, Token};

/// Parse minipy source text into a module AST.
///
/// # Errors
///
/// Returns a [`PyErr`] with [`ErrKind::Syntax`] describing the first lexical
/// or grammatical error encountered.
pub fn parse(src: &str) -> Result<Module, PyErr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !p.check(&Tok::Eof) {
        body.push(p.statement()?);
    }
    Ok(Module { body })
}

/// Parse a single expression (used by tests and the directive frontend).
///
/// # Errors
///
/// Returns a syntax error if the text is not a single valid expression.
pub fn parse_expr(src: &str) -> Result<Expr, PyErr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr_or_tuple()?;
    p.expect_newline()?;
    if !p.check(&Tok::Eof) {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, tok: &Tok) -> bool {
        self.peek() == tok
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.check(tok) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_op(&mut self, op: Op) -> bool {
        self.eat(&Tok::Op(op))
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tok::Keyword(kw))
    }

    fn expect_op(&mut self, op: Op) -> Result<(), PyErr> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{op}', found '{}'", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), PyErr> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}, found '{}'", self.peek())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), PyErr> {
        if self.eat(&Tok::Newline) || self.check(&Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of line, found '{}'", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, PyErr> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> PyErr {
        PyErr::at(ErrKind::Syntax, msg, self.line())
    }

    // ---- statements --------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Op(Op::At) => self.func_def_with_decorators(),
            Tok::Keyword(Kw::Def) => self.func_def(Vec::new()),
            Tok::Keyword(Kw::If) => self.if_stmt(),
            Tok::Keyword(Kw::While) => self.while_stmt(),
            Tok::Keyword(Kw::For) => self.for_stmt(),
            Tok::Keyword(Kw::With) => self.with_stmt(),
            Tok::Keyword(Kw::Try) => self.try_stmt(),
            Tok::Keyword(Kw::Class) => Err(self.err("minipy does not support class definitions")),
            _ => {
                let stmt = self.simple_stmt(line)?;
                // Allow `a = 1; b = 2` on one line.
                if self.eat_op(Op::Semicolon) {
                    let mut stmts = vec![stmt];
                    loop {
                        if self.check(&Tok::Newline) || self.check(&Tok::Eof) {
                            break;
                        }
                        stmts.push(self.simple_stmt(self.line())?);
                        if !self.eat_op(Op::Semicolon) {
                            break;
                        }
                    }
                    self.expect_newline()?;
                    // Wrap multiple simple statements in an if-True block to
                    // keep `Stmt` a single node.
                    return Ok(Stmt::new(
                        StmtKind::If {
                            test: Expr::Bool(true),
                            body: stmts,
                            orelse: Vec::new(),
                        },
                        line,
                    ));
                }
                self.expect_newline()?;
                Ok(stmt)
            }
        }
    }

    fn simple_stmt(&mut self, line: u32) -> Result<Stmt, PyErr> {
        match self.peek().clone() {
            Tok::Keyword(Kw::Return) => {
                self.bump();
                let value = if self.check(&Tok::Newline)
                    || self.check(&Tok::Eof)
                    || self.check(&Tok::Op(Op::Semicolon))
                {
                    None
                } else {
                    Some(self.expr_or_tuple()?)
                };
                Ok(Stmt::new(StmtKind::Return(value), line))
            }
            Tok::Keyword(Kw::Break) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Break, line))
            }
            Tok::Keyword(Kw::Continue) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Continue, line))
            }
            Tok::Keyword(Kw::Pass) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Pass, line))
            }
            Tok::Keyword(Kw::Global) => {
                self.bump();
                let names = self.name_list()?;
                Ok(Stmt::new(StmtKind::Global(names), line))
            }
            Tok::Keyword(Kw::Nonlocal) => {
                self.bump();
                let names = self.name_list()?;
                Ok(Stmt::new(StmtKind::Nonlocal(names), line))
            }
            Tok::Keyword(Kw::Raise) => {
                self.bump();
                let value = if self.check(&Tok::Newline) || self.check(&Tok::Eof) {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt::new(StmtKind::Raise(value), line))
            }
            Tok::Keyword(Kw::Assert) => {
                self.bump();
                let test = self.expr()?;
                let msg = if self.eat_op(Op::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::Assert { test, msg }, line))
            }
            Tok::Keyword(Kw::Del) => {
                self.bump();
                let mut targets = vec![self.expr()?];
                while self.eat_op(Op::Comma) {
                    targets.push(self.expr()?);
                }
                Ok(Stmt::new(StmtKind::Del(targets), line))
            }
            Tok::Keyword(Kw::Import) => {
                self.bump();
                let module = self.dotted_name()?;
                let alias = if self.eat_kw(Kw::As) {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::Import { module, alias }, line))
            }
            Tok::Keyword(Kw::From) => {
                self.bump();
                let module = self.dotted_name()?;
                self.expect_kw(Kw::Import)?;
                if self.eat_op(Op::Star) {
                    return Ok(Stmt::new(
                        StmtKind::FromImport {
                            module,
                            names: Vec::new(),
                            star: true,
                        },
                        line,
                    ));
                }
                let mut names = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let alias = if self.eat_kw(Kw::As) {
                        Some(self.expect_ident()?)
                    } else {
                        None
                    };
                    names.push((name, alias));
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                Ok(Stmt::new(
                    StmtKind::FromImport {
                        module,
                        names,
                        star: false,
                    },
                    line,
                ))
            }
            _ => self.expr_statement(line),
        }
    }

    fn dotted_name(&mut self) -> Result<String, PyErr> {
        let mut name = self.expect_ident()?;
        while self.eat_op(Op::Dot) {
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn name_list(&mut self) -> Result<Vec<String>, PyErr> {
        let mut names = vec![self.expect_ident()?];
        while self.eat_op(Op::Comma) {
            names.push(self.expect_ident()?);
        }
        Ok(names)
    }

    fn expr_statement(&mut self, line: u32) -> Result<Stmt, PyErr> {
        let first = self.expr_or_tuple()?;
        // Augmented assignment?
        let aug = match self.peek() {
            Tok::Op(Op::PlusEq) => Some(BinOp::Add),
            Tok::Op(Op::MinusEq) => Some(BinOp::Sub),
            Tok::Op(Op::StarEq) => Some(BinOp::Mul),
            Tok::Op(Op::SlashEq) => Some(BinOp::Div),
            Tok::Op(Op::DoubleSlashEq) => Some(BinOp::FloorDiv),
            Tok::Op(Op::PercentEq) => Some(BinOp::Mod),
            Tok::Op(Op::DoubleStarEq) => Some(BinOp::Pow),
            Tok::Op(Op::AmpEq) => Some(BinOp::BitAnd),
            Tok::Op(Op::PipeEq) => Some(BinOp::BitOr),
            Tok::Op(Op::CaretEq) => Some(BinOp::BitXor),
            Tok::Op(Op::ShlEq) => Some(BinOp::Shl),
            Tok::Op(Op::ShrEq) => Some(BinOp::Shr),
            _ => None,
        };
        if let Some(op) = aug {
            self.bump();
            let value = self.expr_or_tuple()?;
            check_target(&first, self.line())?;
            return Ok(Stmt::new(
                StmtKind::AugAssign {
                    target: first,
                    op,
                    value,
                },
                line,
            ));
        }
        if self.check(&Tok::Op(Op::Eq)) {
            let mut targets = vec![first];
            let mut value = None;
            while self.eat_op(Op::Eq) {
                let e = self.expr_or_tuple()?;
                if self.check(&Tok::Op(Op::Eq)) {
                    targets.push(e);
                } else {
                    value = Some(e);
                }
            }
            for t in &targets {
                check_target(t, line)?;
            }
            let value = value.expect("loop always sets value");
            return Ok(Stmt::new(StmtKind::Assign { targets, value }, line));
        }
        Ok(Stmt::new(StmtKind::Expr(first), line))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, PyErr> {
        self.expect_op(Op::Colon)?;
        if self.eat(&Tok::Newline) {
            if !self.eat(&Tok::Indent) {
                return Err(self.err("expected an indented block"));
            }
            let mut body = Vec::new();
            while !self.eat(&Tok::Dedent) {
                if self.check(&Tok::Eof) {
                    return Err(self.err("unexpected end of input in block"));
                }
                body.push(self.statement()?);
            }
            Ok(body)
        } else {
            // Inline suite: `if x: y = 1`
            let line = self.line();
            let stmt = self.simple_stmt(line)?;
            let mut body = vec![stmt];
            while self.eat_op(Op::Semicolon) {
                if self.check(&Tok::Newline) || self.check(&Tok::Eof) {
                    break;
                }
                body.push(self.simple_stmt(self.line())?);
            }
            self.expect_newline()?;
            Ok(body)
        }
    }

    fn func_def_with_decorators(&mut self) -> Result<Stmt, PyErr> {
        let mut decorators = Vec::new();
        while self.eat_op(Op::At) {
            decorators.push(self.expr()?);
            self.expect_newline()?;
        }
        if !self.check(&Tok::Keyword(Kw::Def)) {
            return Err(self.err("decorator must be followed by a function definition"));
        }
        self.func_def(decorators)
    }

    fn func_def(&mut self, decorators: Vec<Expr>) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::Def)?;
        let name = self.expect_ident()?;
        self.expect_op(Op::LParen)?;
        let params = self.param_list(true)?;
        self.expect_op(Op::RParen)?;
        // Optional return annotation: `-> expr` (parsed and discarded).
        if self.eat_op(Op::Arrow) {
            let _ = self.expr()?;
        }
        let body = self.block()?;
        Ok(Stmt::new(
            StmtKind::FuncDef(Arc::new(FuncDef {
                name,
                params,
                body,
                decorators,
                line,
            })),
            line,
        ))
    }

    fn param_list(&mut self, allow_annotations: bool) -> Result<Vec<Param>, PyErr> {
        let mut params = Vec::new();
        while !self.check(&Tok::Op(Op::RParen)) && !self.check(&Tok::Op(Op::Colon)) {
            let name = self.expect_ident()?;
            // Optional type annotation: `x: int` (parsed and discarded; the
            // CompiledDT analogue in the paper uses these). Lambdas use the
            // colon as the body delimiter, so annotations are disallowed.
            if allow_annotations && self.eat_op(Op::Colon) {
                let _ = self.expr()?;
            }
            let default = if self.eat_op(Op::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            params.push(Param { name, default });
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn if_stmt(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::If)?;
        let test = self.expr()?;
        let body = self.block()?;
        let orelse = self.else_tail()?;
        Ok(Stmt::new(StmtKind::If { test, body, orelse }, line))
    }

    fn else_tail(&mut self) -> Result<Vec<Stmt>, PyErr> {
        if self.check(&Tok::Keyword(Kw::Elif)) {
            let line = self.line();
            self.bump();
            let test = self.expr()?;
            let body = self.block()?;
            let orelse = self.else_tail()?;
            Ok(vec![Stmt::new(StmtKind::If { test, body, orelse }, line)])
        } else if self.eat_kw(Kw::Else) {
            self.block()
        } else {
            Ok(Vec::new())
        }
    }

    fn while_stmt(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::While)?;
        let test = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::new(StmtKind::While { test, body }, line))
    }

    fn for_stmt(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::For)?;
        let target = self.target_tuple()?;
        self.expect_kw(Kw::In)?;
        let iter = self.expr_or_tuple()?;
        let body = self.block()?;
        Ok(Stmt::new(StmtKind::For { target, iter, body }, line))
    }

    /// Parse a for-loop target: `i` or `i, j` (optionally parenthesized).
    fn target_tuple(&mut self) -> Result<Expr, PyErr> {
        let first = self.postfix_target()?;
        if self.check(&Tok::Keyword(Kw::In)) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(Op::Comma) {
            if self.check(&Tok::Keyword(Kw::In)) {
                break;
            }
            items.push(self.postfix_target()?);
        }
        if items.len() == 1 {
            Ok(items.pop().expect("len checked"))
        } else {
            Ok(Expr::Tuple(items))
        }
    }

    fn postfix_target(&mut self) -> Result<Expr, PyErr> {
        if self.eat_op(Op::LParen) {
            let t = self.target_tuple_inner()?;
            self.expect_op(Op::RParen)?;
            return Ok(t);
        }
        let e = self.postfix()?;
        check_target(&e, self.line())?;
        Ok(e)
    }

    fn target_tuple_inner(&mut self) -> Result<Expr, PyErr> {
        let mut items = vec![self.postfix_target()?];
        while self.eat_op(Op::Comma) {
            if self.check(&Tok::Op(Op::RParen)) {
                break;
            }
            items.push(self.postfix_target()?);
        }
        if items.len() == 1 {
            Ok(items.pop().expect("len checked"))
        } else {
            Ok(Expr::Tuple(items))
        }
    }

    fn with_stmt(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::With)?;
        let mut items = Vec::new();
        loop {
            let context = self.expr()?;
            let alias = if self.eat_kw(Kw::As) {
                Some(self.expect_ident()?)
            } else {
                None
            };
            items.push(WithItem { context, alias });
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        let body = self.block()?;
        Ok(Stmt::new(StmtKind::With { items, body }, line))
    }

    fn try_stmt(&mut self) -> Result<Stmt, PyErr> {
        let line = self.line();
        self.expect_kw(Kw::Try)?;
        let body = self.block()?;
        let mut handlers = Vec::new();
        while self.check(&Tok::Keyword(Kw::Except)) {
            self.bump();
            let (class_name, alias) = if self.check(&Tok::Op(Op::Colon)) {
                (None, None)
            } else {
                let name = self.expect_ident()?;
                let alias = if self.eat_kw(Kw::As) {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                (Some(name), alias)
            };
            let hbody = self.block()?;
            handlers.push(ExceptHandler {
                class_name,
                alias,
                body: hbody,
            });
        }
        let orelse = if self.eat_kw(Kw::Else) {
            self.block()?
        } else {
            Vec::new()
        };
        let finalbody = if self.eat_kw(Kw::Finally) {
            self.block()?
        } else {
            Vec::new()
        };
        if handlers.is_empty() && finalbody.is_empty() {
            return Err(self.err("try statement must have except or finally"));
        }
        Ok(Stmt::new(
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            },
            line,
        ))
    }

    // ---- expressions --------------------------------------------------

    /// Expression possibly followed by commas forming a tuple.
    fn expr_or_tuple(&mut self) -> Result<Expr, PyErr> {
        let first = self.expr()?;
        if !self.check(&Tok::Op(Op::Comma)) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(Op::Comma) {
            if self.is_expr_end() {
                break;
            }
            items.push(self.expr()?);
        }
        Ok(Expr::Tuple(items))
    }

    fn is_expr_end(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Newline
                | Tok::Eof
                | Tok::Op(Op::RParen)
                | Tok::Op(Op::RBracket)
                | Tok::Op(Op::RBrace)
                | Tok::Op(Op::Eq)
                | Tok::Op(Op::Colon)
                | Tok::Op(Op::Semicolon)
        )
    }

    fn expr(&mut self) -> Result<Expr, PyErr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, PyErr> {
        let body = self.or_expr()?;
        if self.eat_kw(Kw::If) {
            let test = self.or_expr()?;
            self.expect_kw(Kw::Else)?;
            let orelse = self.expr()?;
            return Ok(Expr::IfExp {
                test: Box::new(test),
                body: Box::new(body),
                orelse: Box::new(orelse),
            });
        }
        Ok(body)
    }

    fn or_expr(&mut self) -> Result<Expr, PyErr> {
        let first = self.and_expr()?;
        if !self.check(&Tok::Keyword(Kw::Or)) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_kw(Kw::Or) {
            values.push(self.and_expr()?);
        }
        Ok(Expr::BoolOp {
            op: BoolOpKind::Or,
            values,
        })
    }

    fn and_expr(&mut self) -> Result<Expr, PyErr> {
        let first = self.not_expr()?;
        if !self.check(&Tok::Keyword(Kw::And)) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_kw(Kw::And) {
            values.push(self.not_expr()?);
        }
        Ok(Expr::BoolOp {
            op: BoolOpKind::And,
            values,
        })
    }

    fn not_expr(&mut self) -> Result<Expr, PyErr> {
        if self.eat_kw(Kw::Not) {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, PyErr> {
        let left = self.bit_or()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek() {
                Tok::Op(Op::EqEq) => CmpOp::Eq,
                Tok::Op(Op::NotEq) => CmpOp::NotEq,
                Tok::Op(Op::Lt) => CmpOp::Lt,
                Tok::Op(Op::Le) => CmpOp::Le,
                Tok::Op(Op::Gt) => CmpOp::Gt,
                Tok::Op(Op::Ge) => CmpOp::Ge,
                Tok::Keyword(Kw::In) => CmpOp::In,
                Tok::Keyword(Kw::Is) => {
                    self.bump();
                    let op = if self.eat_kw(Kw::Not) {
                        CmpOp::IsNot
                    } else {
                        CmpOp::Is
                    };
                    ops.push(op);
                    comparators.push(self.bit_or()?);
                    continue;
                }
                Tok::Keyword(Kw::Not) => {
                    // `not in`
                    let save = self.pos;
                    self.bump();
                    if self.eat_kw(Kw::In) {
                        ops.push(CmpOp::NotIn);
                        comparators.push(self.bit_or()?);
                        continue;
                    }
                    self.pos = save;
                    break;
                }
                _ => break,
            };
            self.bump();
            ops.push(op);
            comparators.push(self.bit_or()?);
        }
        if ops.is_empty() {
            Ok(left)
        } else {
            Ok(Expr::Compare {
                left: Box::new(left),
                ops,
                comparators,
            })
        }
    }

    fn bit_or(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.bit_xor()?;
        while self.check(&Tok::Op(Op::Pipe)) {
            self.bump();
            let right = self.bit_xor()?;
            left = Expr::Binary {
                op: BinOp::BitOr,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn bit_xor(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.bit_and()?;
        while self.check(&Tok::Op(Op::Caret)) {
            self.bump();
            let right = self.bit_and()?;
            left = Expr::Binary {
                op: BinOp::BitXor,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn bit_and(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.shift()?;
        while self.check(&Tok::Op(Op::Amp)) {
            self.bump();
            let right = self.shift()?;
            left = Expr::Binary {
                op: BinOp::BitAnd,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn shift(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.arith()?;
        loop {
            let op = match self.peek() {
                Tok::Op(Op::Shl) => BinOp::Shl,
                Tok::Op(Op::Shr) => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let right = self.arith()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn arith(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Op(Op::Plus) => BinOp::Add,
                Tok::Op(Op::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, PyErr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Op(Op::Star) => BinOp::Mul,
                Tok::Op(Op::Slash) => BinOp::Div,
                Tok::Op(Op::DoubleSlash) => BinOp::FloorDiv,
                Tok::Op(Op::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, PyErr> {
        let op = match self.peek() {
            Tok::Op(Op::Minus) => Some(UnaryOp::Neg),
            Tok::Op(Op::Plus) => Some(UnaryOp::Pos),
            Tok::Op(Op::Tilde) => Some(UnaryOp::Invert),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, PyErr> {
        let base = self.postfix()?;
        if self.eat_op(Op::DoubleStar) {
            // Right-associative; exponent can itself be unary (`2 ** -3`).
            let exp = self.unary()?;
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, PyErr> {
        let mut e = self.atom()?;
        loop {
            if self.eat_op(Op::LParen) {
                let (args, kwargs) = self.call_args()?;
                self.expect_op(Op::RParen)?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    kwargs,
                };
            } else if self.eat_op(Op::Dot) {
                let attr = self.expect_ident()?;
                e = Expr::attr(e, attr);
            } else if self.eat_op(Op::LBracket) {
                let index = self.subscript()?;
                self.expect_op(Op::RBracket)?;
                e = Expr::index(e, index);
            } else {
                break;
            }
        }
        Ok(e)
    }

    #[allow(clippy::type_complexity)]
    fn call_args(&mut self) -> Result<(Vec<Expr>, Vec<(String, Expr)>), PyErr> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        while !self.check(&Tok::Op(Op::RParen)) {
            // keyword argument? ident '=' not '=='
            if let Tok::Ident(name) = self.peek().clone() {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&Tok::Op(Op::Eq)) {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    kwargs.push((name, value));
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                    continue;
                }
            }
            if !kwargs.is_empty() {
                return Err(self.err("positional argument after keyword argument"));
            }
            args.push(self.expr()?);
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok((args, kwargs))
    }

    fn subscript(&mut self) -> Result<Expr, PyErr> {
        // slice forms: [a], [a:b], [:b], [a:], [a:b:c], [:]
        let lower = if self.check(&Tok::Op(Op::Colon)) {
            None
        } else {
            Some(self.expr()?)
        };
        if !self.eat_op(Op::Colon) {
            let idx = lower.ok_or_else(|| self.err("empty subscript"))?;
            // tuple index `d[a, b]`
            if self.check(&Tok::Op(Op::Comma)) {
                let mut items = vec![idx];
                while self.eat_op(Op::Comma) {
                    if self.check(&Tok::Op(Op::RBracket)) {
                        break;
                    }
                    items.push(self.expr()?);
                }
                return Ok(Expr::Tuple(items));
            }
            return Ok(idx);
        }
        let upper = if self.check(&Tok::Op(Op::RBracket)) || self.check(&Tok::Op(Op::Colon)) {
            None
        } else {
            Some(self.expr()?)
        };
        let step = if self.eat_op(Op::Colon) {
            if self.check(&Tok::Op(Op::RBracket)) {
                None
            } else {
                Some(Box::new(self.expr()?))
            }
        } else {
            None
        };
        Ok(Expr::Slice {
            lower: lower.map(Box::new),
            upper: upper.map(Box::new),
            step,
        })
    }

    fn atom(&mut self) -> Result<Expr, PyErr> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => {
                // Adjacent string literal concatenation: 'a' 'b' == 'ab'.
                let mut s = s;
                while let Tok::Str(next) = self.peek() {
                    s.push_str(next);
                    self.bump();
                }
                Ok(Expr::Str(s))
            }
            Tok::Ident(name) => Ok(Expr::Name(name)),
            Tok::Keyword(Kw::None) => Ok(Expr::None),
            Tok::Keyword(Kw::True) => Ok(Expr::Bool(true)),
            Tok::Keyword(Kw::False) => Ok(Expr::Bool(false)),
            Tok::Keyword(Kw::Lambda) => {
                let params = self.param_list(false)?;
                self.expect_op(Op::Colon)?;
                let body = self.expr()?;
                Ok(Expr::Lambda {
                    params,
                    body: Box::new(body),
                })
            }
            Tok::Op(Op::LParen) => {
                if self.eat_op(Op::RParen) {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let e = self.expr_or_tuple()?;
                self.expect_op(Op::RParen)?;
                Ok(e)
            }
            Tok::Op(Op::LBracket) => {
                let mut items = Vec::new();
                while !self.check(&Tok::Op(Op::RBracket)) {
                    items.push(self.expr()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RBracket)?;
                Ok(Expr::List(items))
            }
            Tok::Op(Op::LBrace) => {
                let mut items = Vec::new();
                while !self.check(&Tok::Op(Op::RBrace)) {
                    let key = self.expr()?;
                    self.expect_op(Op::Colon)?;
                    let value = self.expr()?;
                    items.push((key, value));
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RBrace)?;
                Ok(Expr::Dict(items))
            }
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }
}

/// Validate that an expression is a legal assignment target.
fn check_target(e: &Expr, line: u32) -> Result<(), PyErr> {
    match e {
        Expr::Name(_) | Expr::Index { .. } | Expr::Attribute { .. } => Ok(()),
        Expr::Tuple(items) | Expr::List(items) => {
            for item in items {
                check_target(item, line)?;
            }
            Ok(())
        }
        _ => Err(PyErr::at(
            ErrKind::Syntax,
            "cannot assign to expression",
            line,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let m = parse(src).unwrap();
        assert_eq!(m.body.len(), 1, "expected one statement in {src:?}");
        m.body.into_iter().next().unwrap()
    }

    #[test]
    fn parse_assignment() {
        let s = one("x = 1 + 2\n");
        match s.kind {
            StmtKind::Assign { targets, value } => {
                assert_eq!(targets, vec![Expr::name("x")]);
                assert!(matches!(value, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_right_assoc() {
        let e = parse_expr("2 ** 3 ** 2").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Pow,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_power_binding() {
        // -2 ** 2 parses as -(2 ** 2)
        let e = parse_expr("-2 ** 2").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn chained_comparison() {
        let e = parse_expr("0 <= i < n").unwrap();
        match e {
            Expr::Compare {
                ops, comparators, ..
            } => {
                assert_eq!(ops, vec![CmpOp::Le, CmpOp::Lt]);
                assert_eq!(comparators.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_in_operator() {
        let e = parse_expr("x not in d").unwrap();
        assert!(matches!(e, Expr::Compare { ref ops, .. } if ops == &[CmpOp::NotIn]));
    }

    #[test]
    fn call_with_kwargs() {
        let e = parse_expr("f(1, x=2)").unwrap();
        match e {
            Expr::Call { args, kwargs, .. } => {
                assert_eq!(args.len(), 1);
                assert_eq!(kwargs.len(), 1);
                assert_eq!(kwargs[0].0, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn func_def_with_default_and_decorator() {
        let s = one("@omp\ndef f(a, b=2):\n    return a + b\n");
        match s.kind {
            StmtKind::FuncDef(def) => {
                assert_eq!(def.name, "f");
                assert_eq!(def.params.len(), 2);
                assert!(def.params[1].default.is_some());
                assert_eq!(def.decorators, vec![Expr::name("omp")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decorator_with_args() {
        let s = one("@omp(compile=True)\ndef f():\n    pass\n");
        match s.kind {
            StmtKind::FuncDef(def) => {
                assert!(matches!(def.decorators[0], Expr::Call { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elif_else() {
        let s = one("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match s.kind {
            StmtKind::If { orelse, .. } => {
                assert_eq!(orelse.len(), 1);
                assert!(matches!(orelse[0].kind, StmtKind::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_with_tuple_target() {
        let s = one("for k, v in items:\n    pass\n");
        match s.kind {
            StmtKind::For { target, .. } => {
                assert!(matches!(target, Expr::Tuple(ref t) if t.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn with_statement() {
        let s = one("with omp(\"parallel\"):\n    x = 1\n");
        match s.kind {
            StmtKind::With { items, body } => {
                assert_eq!(items.len(), 1);
                assert!(items[0].alias.is_none());
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn try_except_finally() {
        let s = one("try:\n    x = 1\nexcept ValueError as e:\n    y = 2\nfinally:\n    z = 3\n");
        match s.kind {
            StmtKind::Try {
                handlers,
                finalbody,
                ..
            } => {
                assert_eq!(handlers.len(), 1);
                assert_eq!(handlers[0].class_name.as_deref(), Some("ValueError"));
                assert_eq!(handlers[0].alias.as_deref(), Some("e"));
                assert_eq!(finalbody.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slices() {
        let e = parse_expr("a[1:2]").unwrap();
        match e {
            Expr::Index { index, .. } => {
                assert!(matches!(*index, Expr::Slice { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("a[:]").is_ok());
        assert!(parse_expr("a[::2]").is_ok());
        assert!(parse_expr("a[1:]").is_ok());
    }

    #[test]
    fn nested_functions() {
        let m = parse("def outer():\n    def inner():\n        return 1\n    return inner()\n")
            .unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn augmented_assignment() {
        let s = one("x += 1\n");
        assert!(matches!(s.kind, StmtKind::AugAssign { op: BinOp::Add, .. }));
    }

    #[test]
    fn multiple_assignment() {
        let s = one("a = b = 0\n");
        match s.kind {
            StmtKind::Assign { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tuple_assignment() {
        let s = one("a, b = b, a\n");
        match s.kind {
            StmtKind::Assign { targets, value } => {
                assert!(matches!(targets[0], Expr::Tuple(_)));
                assert!(matches!(value, Expr::Tuple(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_and_nonlocal() {
        assert!(matches!(one("global a, b\n").kind, StmtKind::Global(ref v) if v.len() == 2));
        assert!(matches!(one("nonlocal x\n").kind, StmtKind::Nonlocal(ref v) if v.len() == 1));
    }

    #[test]
    fn imports() {
        assert!(matches!(
            one("from omp4py import *\n").kind,
            StmtKind::FromImport { star: true, .. }
        ));
        assert!(matches!(one("import math\n").kind, StmtKind::Import { .. }));
    }

    #[test]
    fn inline_suite() {
        let s = one("if x: y = 1\n");
        match s.kind {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lambda_expr() {
        let e = parse_expr("lambda x: x + 1").unwrap();
        assert!(matches!(e, Expr::Lambda { .. }));
    }

    #[test]
    fn ternary_expr() {
        let e = parse_expr("a if c else b").unwrap();
        assert!(matches!(e, Expr::IfExp { .. }));
    }

    #[test]
    fn dict_and_list_literals() {
        assert!(matches!(parse_expr("{}").unwrap(), Expr::Dict(ref v) if v.is_empty()));
        assert!(matches!(parse_expr("{1: 'a'}").unwrap(), Expr::Dict(ref v) if v.len() == 1));
        assert!(matches!(parse_expr("[1, 2, 3]").unwrap(), Expr::List(ref v) if v.len() == 3));
    }

    #[test]
    fn cannot_assign_to_literal() {
        assert!(parse("1 = x\n").is_err());
        assert!(parse("f(x) = 3\n").is_err());
    }

    #[test]
    fn class_unsupported() {
        assert!(parse("class A:\n    pass\n").is_err());
    }

    #[test]
    fn adjacent_string_concat() {
        assert_eq!(parse_expr("'a' 'b'").unwrap(), Expr::Str("ab".into()));
    }

    #[test]
    fn semicolon_statements() {
        let m = parse("a = 1; b = 2\n").unwrap();
        assert_eq!(m.body.len(), 1);
        match &m.body[0].kind {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
