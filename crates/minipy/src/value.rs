//! Dynamic values.
//!
//! Containers are `Arc`-shared with per-object `RwLock`s — the same design
//! free-threaded CPython uses (per-object locks + shared reference counts).
//! This is deliberate: in Pure/Hybrid execution modes, multithreaded scaling
//! is limited by contention on these shared atomically-refcounted objects,
//! which reproduces the scaling ceiling the OMP4Py paper attributes to the
//! CPython 3.14b1 free-threaded interpreter.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::ast::FuncDef;
use crate::env::Env;
use crate::error::{type_err, PyErr};
use crate::interp::Interp;

/// The per-object lock guarding a shared mutable container — free-threaded
/// CPython's per-object locking, reduced to its essentials.
///
/// A thin wrapper over `RwLock` whose only addition is observability: when
/// [`crate::stats`] collection is armed, every acquisition is counted and
/// flagged as contended if the lock was already held (probed with a
/// non-blocking attempt before falling back to the blocking path). Disarmed —
/// the default — both methods are a single relaxed load away from the plain
/// `RwLock` fast path, so benchmark figures are unperturbed.
pub struct ObjLock<T> {
    inner: RwLock<T>,
}

impl<T> ObjLock<T> {
    /// Wrap a value in a fresh, unlocked per-object lock.
    pub fn new(value: T) -> ObjLock<T> {
        ObjLock {
            inner: RwLock::new(value),
        }
    }

    /// Acquire shared read access (counted when stats are armed).
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        if !crate::stats::enabled() {
            return self.inner.read();
        }
        match self.inner.try_read() {
            Some(guard) => {
                crate::stats::count_obj_lock(false);
                guard
            }
            None => {
                let guard = self.inner.read();
                crate::stats::count_obj_lock(true);
                guard
            }
        }
    }

    /// Acquire exclusive write access (counted when stats are armed).
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, T> {
        if !crate::stats::enabled() {
            return self.inner.write();
        }
        match self.inner.try_write() {
            Some(guard) => {
                crate::stats::count_obj_lock(false);
                guard
            }
            None => {
                let guard = self.inner.write();
                crate::stats::count_obj_lock(true);
                guard
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ObjLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A Python-like dynamic value.
#[derive(Clone)]
pub enum Value {
    /// `None`
    None,
    /// `bool`
    Bool(bool),
    /// `int` (64-bit; minipy does not implement big integers)
    Int(i64),
    /// `float`
    Float(f64),
    /// `str` (immutable, shared)
    Str(Arc<String>),
    /// `list` (mutable, shared, per-object lock)
    List(Arc<ObjLock<Vec<Value>>>),
    /// `dict` (mutable, shared, per-object lock)
    Dict(Arc<ObjLock<HashMap<HKey, Value>>>),
    /// `tuple` (immutable, shared)
    Tuple(Arc<Vec<Value>>),
    /// `range(start, stop, step)` — materialized lazily
    Range(i64, i64, i64),
    /// An interpreted function (closure)
    Func(Arc<FuncValue>),
    /// A host-provided native function
    Native(Arc<NativeFunc>),
    /// A host-provided opaque object (e.g. a graph handle or lock)
    Opaque(Arc<dyn Opaque>),
}

/// An interpreted function value: AST plus captured environment.
pub struct FuncValue {
    /// The function's definition (name, params, body).
    pub def: Arc<FuncDef>,
    /// The lexical environment the function was defined in.
    pub closure: Env,
    /// Qualified name for diagnostics.
    pub name: String,
    /// Default values, evaluated at `def` time (Python semantics); indexed
    /// like `def.params`, `None` for parameters without defaults.
    pub defaults: Vec<Option<Value>>,
}

impl fmt::Debug for FuncValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<function {}>", self.name)
    }
}

/// Call arguments for native functions: positional plus keyword.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments, in order.
    pub pos: Vec<Value>,
    /// Keyword arguments, in source order.
    pub kw: Vec<(String, Value)>,
}

impl Args {
    /// Positional-only arguments.
    pub fn positional(pos: Vec<Value>) -> Args {
        Args {
            pos,
            kw: Vec::new(),
        }
    }

    /// Number of positional arguments.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether there are no arguments at all.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.kw.is_empty()
    }

    /// Fetch positional argument `i`.
    ///
    /// # Errors
    ///
    /// `TypeError` if fewer than `i + 1` positional arguments were passed.
    pub fn req(&self, i: usize) -> Result<&Value, PyErr> {
        self.pos
            .get(i)
            .ok_or_else(|| type_err(format!("missing required argument {}", i + 1)))
    }

    /// Fetch optional positional argument `i`.
    pub fn opt(&self, i: usize) -> Option<&Value> {
        self.pos.get(i)
    }

    /// Fetch a keyword argument by name.
    pub fn kwarg(&self, name: &str) -> Option<&Value> {
        self.kw.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Require an exact positional arity.
    ///
    /// # Errors
    ///
    /// `TypeError` on arity mismatch.
    pub fn expect_len(&self, n: usize, fname: &str) -> Result<(), PyErr> {
        if self.pos.len() != n {
            return Err(type_err(format!(
                "{fname}() takes {n} positional arguments but {} were given",
                self.pos.len()
            )));
        }
        Ok(())
    }
}

/// Signature of host-native functions callable from interpreted code.
///
/// Native functions receive the interpreter so they can call back into
/// interpreted code (the OMP4Py runtime bridge uses this to run parallel
/// region bodies on worker threads).
pub type NativeImpl = dyn Fn(&Interp, Args) -> Result<Value, PyErr> + Send + Sync;

/// A host-native function value.
pub struct NativeFunc {
    /// Name for diagnostics.
    pub name: String,
    /// The implementation.
    pub func: Box<NativeImpl>,
}

impl NativeFunc {
    /// Wrap a Rust closure as a native function value (not `Self`: the
    /// useful unit is the ready-to-store [`Value`]).
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Interp, Args) -> Result<Value, PyErr> + Send + Sync + 'static,
    ) -> Value {
        Value::Native(Arc::new(NativeFunc {
            name: name.into(),
            func: Box::new(f),
        }))
    }
}

impl fmt::Debug for NativeFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<native function {}>", self.name)
    }
}

/// Host objects stored inside interpreted values (graphs, locks, events…).
pub trait Opaque: Send + Sync {
    /// Python-style type name, shown by `type()` and error messages.
    fn type_name(&self) -> &str;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Optional method dispatch: `obj.method(args)` from interpreted code.
    ///
    /// # Errors
    ///
    /// The default implementation reports an `AttributeError` for all names.
    fn call_method(&self, interp: &Interp, name: &str, args: Vec<Value>) -> Result<Value, PyErr> {
        let _ = (interp, args);
        Err(PyErr::new(
            crate::error::ErrKind::Attribute,
            format!("'{}' object has no attribute '{}'", self.type_name(), name),
        ))
    }
    /// Optional length support (`len(obj)`).
    fn len(&self) -> Option<usize> {
        None
    }
    /// `len() == 0`, when length is supported at all.
    fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }
    /// Optional attribute lookup (`obj.attr` without a call). Used by
    /// module objects (`math.pi`).
    fn get_attr(&self, name: &str) -> Option<Value> {
        let _ = name;
        None
    }
    /// Optional `str()` override (exception objects show their message).
    fn str_repr(&self) -> Option<String> {
        None
    }
}

/// Hashable key for dict storage (Python dict keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HKey {
    /// `None` key.
    None,
    /// `bool` key. Note: unlike Python, `True` and `1` are distinct keys.
    Bool(bool),
    /// `int` key.
    Int(i64),
    /// `float` key (bit pattern; `-0.0` normalized to `0.0`).
    FloatBits(u64),
    /// `str` key.
    Str(Arc<String>),
    /// `tuple` key.
    Tuple(Vec<HKey>),
}

impl HKey {
    /// Convert a value into a dict key.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` for unhashable values (lists, dicts, functions).
    pub fn from_value(v: &Value) -> Result<HKey, PyErr> {
        Ok(match v {
            Value::None => HKey::None,
            Value::Bool(b) => HKey::Bool(*b),
            Value::Int(i) => HKey::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                // Floats that are exact integers hash like the int, as in Python.
                if f.fract() == 0.0 && f.abs() < i64::MAX as f64 {
                    HKey::Int(f as i64)
                } else {
                    HKey::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => HKey::Str(Arc::clone(s)),
            Value::Tuple(items) => HKey::Tuple(
                items
                    .iter()
                    .map(HKey::from_value)
                    .collect::<Result<_, _>>()?,
            ),
            other => {
                return Err(type_err(format!(
                    "unhashable type: '{}'",
                    other.type_name()
                )))
            }
        })
    }

    /// Convert a key back to a value (for `keys()` / iteration).
    pub fn to_value(&self) -> Value {
        match self {
            HKey::None => Value::None,
            HKey::Bool(b) => Value::Bool(*b),
            HKey::Int(i) => Value::Int(*i),
            HKey::FloatBits(bits) => Value::Float(f64::from_bits(*bits)),
            HKey::Str(s) => Value::Str(Arc::clone(s)),
            HKey::Tuple(items) => {
                Value::Tuple(Arc::new(items.iter().map(HKey::to_value).collect()))
            }
        }
    }
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Arc::new(s.into()))
    }

    /// Build a list value from items.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(ObjLock::new(items)))
    }

    /// Build an empty dict value.
    pub fn dict() -> Value {
        Value::Dict(Arc::new(ObjLock::new(HashMap::new())))
    }

    /// Build a tuple value from items.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Arc::new(items))
    }

    /// Python-style type name.
    pub fn type_name(&self) -> &str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Tuple(_) => "tuple",
            Value::Range(..) => "range",
            Value::Func(_) => "function",
            Value::Native(_) => "builtin_function_or_method",
            Value::Opaque(o) => o.type_name(),
        }
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.read().is_empty(),
            Value::Dict(d) => !d.read().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Range(start, stop, step) => range_len(*start, *stop, *step) > 0,
            Value::Func(_) | Value::Native(_) | Value::Opaque(_) => true,
        }
    }

    /// Extract an `i64`, accepting `int` and `bool`.
    ///
    /// # Errors
    ///
    /// `TypeError` if the value is not an integer.
    pub fn as_int(&self) -> Result<i64, PyErr> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(type_err(format!("expected int, got {}", other.type_name()))),
        }
    }

    /// Extract an `f64`, accepting `int`, `float`, and `bool`.
    ///
    /// # Errors
    ///
    /// `TypeError` if the value is not numeric.
    pub fn as_float(&self) -> Result<f64, PyErr> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(type_err(format!(
                "expected float, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a string slice.
    ///
    /// # Errors
    ///
    /// `TypeError` if the value is not a `str`.
    pub fn as_str(&self) -> Result<&str, PyErr> {
        match self {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(type_err(format!("expected str, got {}", other.type_name()))),
        }
    }

    /// Identity comparison (`is`).
    pub fn is_identical(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b),
            (Value::List(a), Value::List(b)) => Arc::ptr_eq(a, b),
            (Value::Dict(a), Value::Dict(b)) => Arc::ptr_eq(a, b),
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b),
            (Value::Func(a), Value::Func(b)) => Arc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Arc::ptr_eq(a, b),
            (Value::Opaque(a), Value::Opaque(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Structural equality (`==`), recursing into containers.
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => (*a as i64) == *b,
            (Value::Bool(a), Value::Float(b)) | (Value::Float(b), Value::Bool(a)) => {
                (*a as i64 as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::List(a), Value::List(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.read();
                let b = b.read();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.read();
                let b = b.read();
                a.len() == b.len() && a.iter().all(|(k, v)| b.get(k).is_some_and(|w| v.py_eq(w)))
            }
            (Value::Range(a1, a2, a3), Value::Range(b1, b2, b3)) => (a1, a2, a3) == (b1, b2, b3),
            _ => self.is_identical(other),
        }
    }

    /// Python `repr()`.
    pub fn repr(&self) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Value::List(l) => {
                let items = l.read();
                let inner: Vec<String> = items.iter().map(Value::repr).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Dict(d) => {
                let map = d.read();
                let inner: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.to_value().repr(), v.repr()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Tuple(t) => {
                let inner: Vec<String> = t.iter().map(Value::repr).collect();
                if t.len() == 1 {
                    format!("({},)", inner[0])
                } else {
                    format!("({})", inner.join(", "))
                }
            }
            Value::Range(a, b, c) => {
                if *c == 1 {
                    format!("range({a}, {b})")
                } else {
                    format!("range({a}, {b}, {c})")
                }
            }
            Value::Func(f) => format!("<function {}>", f.name),
            Value::Native(f) => format!("<built-in function {}>", f.name),
            Value::Opaque(o) => match o.str_repr() {
                Some(s) => s,
                None => format!("<{} object>", o.type_name()),
            },
        }
    }

    /// Python `str()`.
    pub fn py_str(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            other => other.repr(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::str(v)
    }
}

/// Number of elements in `range(start, stop, step)`.
pub fn range_len(start: i64, stop: i64, step: i64) -> i64 {
    if step > 0 {
        if stop > start {
            (stop - start + step - 1) / step
        } else {
            0
        }
    } else if step < 0 {
        if start > stop {
            (start - stop + (-step) - 1) / (-step)
        } else {
            0
        }
    } else {
        0
    }
}

/// Format a float the way Python's `repr` does for common cases.
pub fn format_float(f: f64) -> String {
    if f.is_nan() {
        return "nan".into();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{:.1}", f)
    } else {
        let s = format!("{}", f);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::Int(1)]).truthy());
        assert!(!Value::Range(0, 0, 1).truthy());
        assert!(Value::Range(0, 5, 1).truthy());
    }

    #[test]
    fn numeric_equality_coerces() {
        assert!(Value::Int(2).py_eq(&Value::Float(2.0)));
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
        assert!(!Value::Int(2).py_eq(&Value::Float(2.5)));
    }

    #[test]
    fn deep_list_equality() {
        let a = Value::list(vec![Value::Int(1), Value::str("x")]);
        let b = Value::list(vec![Value::Int(1), Value::str("x")]);
        assert!(a.py_eq(&b));
        assert!(!a.is_identical(&b));
        assert!(a.is_identical(&a.clone()));
    }

    #[test]
    fn hkey_float_int_unify() {
        let k1 = HKey::from_value(&Value::Int(3)).unwrap();
        let k2 = HKey::from_value(&Value::Float(3.0)).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn hkey_unhashable() {
        assert!(HKey::from_value(&Value::list(vec![])).is_err());
        assert!(HKey::from_value(&Value::dict()).is_err());
    }

    #[test]
    fn hkey_tuple_round_trip() {
        let t = Value::tuple(vec![Value::Int(1), Value::str("a")]);
        let k = HKey::from_value(&t).unwrap();
        assert!(k.to_value().py_eq(&t));
    }

    #[test]
    fn repr_shapes() {
        assert_eq!(Value::Float(1.0).repr(), "1.0");
        assert_eq!(Value::Float(1.5).repr(), "1.5");
        assert_eq!(Value::str("a'b").repr(), "'a\\'b'");
        assert_eq!(Value::tuple(vec![Value::Int(1)]).repr(), "(1,)");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Int(2)]).repr(),
            "[1, 2]"
        );
    }

    #[test]
    fn range_len_cases() {
        assert_eq!(range_len(0, 10, 1), 10);
        assert_eq!(range_len(0, 10, 3), 4);
        assert_eq!(range_len(10, 0, -1), 10);
        assert_eq!(range_len(10, 0, -3), 4);
        assert_eq!(range_len(0, 0, 1), 0);
        assert_eq!(range_len(5, 0, 1), 0);
        assert_eq!(range_len(0, 5, -1), 0);
        assert_eq!(range_len(0, 5, 0), 0);
    }

    #[test]
    fn values_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
    }
}
