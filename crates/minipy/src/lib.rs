//! # minipy — a Python-subset interpreter substrate
//!
//! `minipy` is a from-scratch lexer, parser, AST, and tree-walking
//! interpreter for a substantial subset of Python, built as the interpreter
//! substrate for the `omp4rs` reproduction of the OMP4Py paper
//! (*Unlocking Python Multithreading Capabilities using OpenMP-Based
//! Programming with OMP4Py*, CGO 2026).
//!
//! Two properties matter for that reproduction:
//!
//! 1. **Free-threading.** All values are `Arc`-shared with per-object locks,
//!    and an [`Interp`] handle can be cloned into any number of OS threads —
//!    like CPython 3.13+ built with `--disable-gil`. A simulated
//!    [`gil::Gil`] can also be *enabled* to reproduce classic GIL behaviour
//!    (no multithreaded speedup for CPU-bound code).
//! 2. **AST rewriting.** Function values carry their [`ast::FuncDef`] trees,
//!    so a decorator implemented by the host (the OMP4Py `@omp` analogue)
//!    can transform the AST and return a new function — exactly the paper's
//!    parser design.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), minipy::PyErr> {
//! let interp = minipy::Interp::new();
//! interp.run("def square(x):\n    return x * x\ntotal = square(3) + square(4)\n")?;
//! assert_eq!(interp.get_global("total").unwrap().as_int()?, 25);
//! # Ok(())
//! # }
//! ```

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod ast;
pub mod builtins;
#[deny(missing_docs)]
pub mod bytecode;
pub mod env;
pub mod error;
pub mod gil;
pub mod interp;
pub mod lexer;
pub mod methods;
pub mod parser;
pub mod printer;
pub mod stats;
pub mod token;
pub mod value;

pub use ast::Module;
pub use env::Env;
pub use error::{ErrKind, PyErr};
pub use gil::{Gil, GilMode};
pub use interp::{Flow, Interp, ValueIter};
pub use parser::{parse, parse_expr};
pub use printer::{print_expr, print_module};
pub use value::{Args, HKey, NativeFunc, Opaque, Value};
