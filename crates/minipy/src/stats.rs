//! Interpreter-level contention counters for the observability layer.
//!
//! The OMP4Py paper attributes Pure/Hybrid-mode scaling losses to
//! serialization *inside* the interpreter: GIL hand-offs (when the GIL is
//! enabled) and per-object lock traffic on shared containers (in the
//! free-threaded build). The core runtime's profiler (`omp4rs::ompt`) cannot
//! see into this crate, so the interpreter publishes scalar counters here and
//! the pyfront bridge copies them into the profiler's counter registry before
//! reporting.
//!
//! Collection follows the same inert-unless-armed idiom as the core layer:
//! every probe is a single relaxed [`enabled`] load when off, and a relaxed
//! `fetch_add` when on — the counters themselves never introduce contention.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

static GIL_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static GIL_HOLD_NS: AtomicU64 = AtomicU64::new(0);
static OBJ_LOCK_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static OBJ_LOCK_CONTENDED: AtomicU64 = AtomicU64::new(0);
static VM_COMPILES: AtomicU64 = AtomicU64::new(0);
static VM_COMPILE_NS: AtomicU64 = AtomicU64::new(0);
static VM_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static VM_FRAMES: AtomicU64 = AtomicU64::new(0);
static VM_OPS: AtomicU64 = AtomicU64::new(0);
static QUICKEN_REWRITES: AtomicU64 = AtomicU64::new(0);
static QUICKEN_DEOPTS: AtomicU64 = AtomicU64::new(0);
static IC_HITS: AtomicU64 = AtomicU64::new(0);
static IC_MISSES: AtomicU64 = AtomicU64::new(0);

/// Whether interpreter counters are being collected.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn counter collection on or off (the pyfront bridge arms this whenever
/// the core profiler is enabled).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Zero all counters.
pub fn reset() {
    GIL_ACQUISITIONS.store(0, Ordering::Relaxed);
    GIL_HOLD_NS.store(0, Ordering::Relaxed);
    OBJ_LOCK_ACQUISITIONS.store(0, Ordering::Relaxed);
    OBJ_LOCK_CONTENDED.store(0, Ordering::Relaxed);
    VM_COMPILES.store(0, Ordering::Relaxed);
    VM_COMPILE_NS.store(0, Ordering::Relaxed);
    VM_FALLBACKS.store(0, Ordering::Relaxed);
    VM_FRAMES.store(0, Ordering::Relaxed);
    VM_OPS.store(0, Ordering::Relaxed);
    QUICKEN_REWRITES.store(0, Ordering::Relaxed);
    QUICKEN_DEOPTS.store(0, Ordering::Relaxed);
    IC_HITS.store(0, Ordering::Relaxed);
    IC_MISSES.store(0, Ordering::Relaxed);
}

/// A snapshot of the interpreter contention counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Outermost GIL lock acquisitions (zero in free-threaded mode — the
    /// paper's point: no global serialization remains to count).
    pub gil_acquisitions: u64,
    /// Total nanoseconds the GIL was held.
    pub gil_hold_ns: u64,
    /// Per-object container-lock acquisitions (list/dict reads and writes).
    pub obj_lock_acquisitions: u64,
    /// How many of those found the lock already held by another thread.
    pub obj_lock_contended: u64,
    /// Function definitions compiled by the bytecode tier.
    pub vm_compiles: u64,
    /// Cumulative bytecode-compilation nanoseconds.
    pub vm_compile_ns: u64,
    /// Definitions the bytecode compiler declined (per-reason breakdown in
    /// [`crate::bytecode::fallback_reasons`]).
    pub vm_fallbacks: u64,
    /// Bytecode frames entered (VM calls).
    pub vm_frames: u64,
    /// Bytecode instructions dispatched.
    pub vm_ops: u64,
    /// Generic instructions rewritten in place to a type-specialized
    /// variant by the quickening tier (at most one per instruction slot).
    pub quicken_rewrites: u64,
    /// Specialized instructions deoptimized back to the generic form on a
    /// guard failure (at most one per instruction slot, so always
    /// `<= quicken_rewrites`).
    pub quicken_deopts: u64,
    /// Inline-cache hits across every cached dispatch site (intrinsic call
    /// sites, method call sites, free-name loads).
    pub ic_hits: u64,
    /// Inline-cache misses (first resolution or invalidated entry).
    pub ic_misses: u64,
}

/// Read the current counter values.
pub fn snapshot() -> InterpStats {
    InterpStats {
        gil_acquisitions: GIL_ACQUISITIONS.load(Ordering::Relaxed),
        gil_hold_ns: GIL_HOLD_NS.load(Ordering::Relaxed),
        obj_lock_acquisitions: OBJ_LOCK_ACQUISITIONS.load(Ordering::Relaxed),
        obj_lock_contended: OBJ_LOCK_CONTENDED.load(Ordering::Relaxed),
        vm_compiles: VM_COMPILES.load(Ordering::Relaxed),
        vm_compile_ns: VM_COMPILE_NS.load(Ordering::Relaxed),
        vm_fallbacks: VM_FALLBACKS.load(Ordering::Relaxed),
        vm_frames: VM_FRAMES.load(Ordering::Relaxed),
        vm_ops: VM_OPS.load(Ordering::Relaxed),
        quicken_rewrites: QUICKEN_REWRITES.load(Ordering::Relaxed),
        quicken_deopts: QUICKEN_DEOPTS.load(Ordering::Relaxed),
        ic_hits: IC_HITS.load(Ordering::Relaxed),
        ic_misses: IC_MISSES.load(Ordering::Relaxed),
    }
}

pub(crate) fn count_gil_acquisition() {
    GIL_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn add_gil_hold_ns(ns: u64) {
    GIL_HOLD_NS.fetch_add(ns, Ordering::Relaxed);
}

pub(crate) fn count_obj_lock(contended: bool) {
    OBJ_LOCK_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    if contended {
        OBJ_LOCK_CONTENDED.fetch_add(1, Ordering::Relaxed);
    }
}

// Compile-time events are one-shot per definition (not per-iteration probes),
// so they are counted unconditionally — the armed/unarmed gate exists to keep
// hot-path probes cheap, which these are not.

pub(crate) fn count_vm_compile(ns: u64) {
    VM_COMPILES.fetch_add(1, Ordering::Relaxed);
    VM_COMPILE_NS.fetch_add(ns, Ordering::Relaxed);
}

pub(crate) fn count_vm_fallback() {
    VM_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// One VM frame finished after dispatching `ops` instructions (gated on
/// [`enabled`] by the caller: this is a per-call hot-path probe).
pub(crate) fn add_vm_frame(ops: u64) {
    VM_FRAMES.fetch_add(1, Ordering::Relaxed);
    VM_OPS.fetch_add(ops, Ordering::Relaxed);
}

// Quickening transitions are once-per-instruction-slot events (a CAS on the
// specialization byte guards each), so like compiles they are counted
// unconditionally.

pub(crate) fn count_quicken_rewrite() {
    QUICKEN_REWRITES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_quicken_deopt() {
    QUICKEN_DEOPTS.fetch_add(1, Ordering::Relaxed);
}

/// One inline-cache probe (gated on [`enabled`] by the caller: cached
/// dispatch sites are per-iteration hot paths).
pub(crate) fn count_ic(hit: bool) {
    if hit {
        IC_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        IC_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Serialized against other stats tests by cargo's per-test threads
        // being the only writers when disabled elsewhere; keep assertions
        // relative to a snapshot so parallel interpreter tests cannot break
        // them.
        let before = snapshot();
        count_obj_lock(false);
        count_obj_lock(true);
        count_gil_acquisition();
        add_gil_hold_ns(25);
        let after = snapshot();
        assert!(after.obj_lock_acquisitions >= before.obj_lock_acquisitions + 2);
        assert!(after.obj_lock_contended > before.obj_lock_contended);
        assert!(after.gil_acquisitions > before.gil_acquisitions);
        assert!(after.gil_hold_ns >= before.gil_hold_ns + 25);
    }

    #[test]
    fn enabled_toggles() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }
}
