//! Token definitions shared by the lexer and parser.

use std::fmt;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: Tok,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// Token kinds produced by [`crate::lexer::tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal (decimal or `0x`-hex, with `_` separators).
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (quotes and escapes already processed).
    Str(String),
    /// Identifier (not a keyword).
    Ident(String),
    /// Reserved keyword.
    Keyword(Kw),
    /// Punctuation or operator.
    Op(Op),
    /// End of a logical line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input.
    Eof,
}

/// Python keywords recognized by minipy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kw {
    Def,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Pass,
    And,
    Or,
    Not,
    None,
    True,
    False,
    Global,
    Nonlocal,
    With,
    As,
    Try,
    Except,
    Finally,
    Raise,
    Assert,
    Lambda,
    Import,
    From,
    Del,
    Is,
    Class,
}

impl Kw {
    /// Parse an identifier into a keyword, if it is one.
    pub fn from_ident(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "return" => Kw::Return,
            "if" => Kw::If,
            "elif" => Kw::Elif,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "in" => Kw::In,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "pass" => Kw::Pass,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "None" => Kw::None,
            "True" => Kw::True,
            "False" => Kw::False,
            "global" => Kw::Global,
            "nonlocal" => Kw::Nonlocal,
            "with" => Kw::With,
            "as" => Kw::As,
            "try" => Kw::Try,
            "except" => Kw::Except,
            "finally" => Kw::Finally,
            "raise" => Kw::Raise,
            "assert" => Kw::Assert,
            "lambda" => Kw::Lambda,
            "import" => Kw::Import,
            "from" => Kw::From,
            "del" => Kw::Del,
            "is" => Kw::Is,
            "class" => Kw::Class,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    Plus,
    Minus,
    Star,
    Slash,
    DoubleSlash,
    Percent,
    DoubleStar,
    Eq,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    DoubleSlashEq,
    PercentEq,
    DoubleStarEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semicolon,
    Dot,
    At,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Arrow,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Plus => "+",
            Op::Minus => "-",
            Op::Star => "*",
            Op::Slash => "/",
            Op::DoubleSlash => "//",
            Op::Percent => "%",
            Op::DoubleStar => "**",
            Op::Eq => "=",
            Op::EqEq => "==",
            Op::NotEq => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::PlusEq => "+=",
            Op::MinusEq => "-=",
            Op::StarEq => "*=",
            Op::SlashEq => "/=",
            Op::DoubleSlashEq => "//=",
            Op::PercentEq => "%=",
            Op::DoubleStarEq => "**=",
            Op::AmpEq => "&=",
            Op::PipeEq => "|=",
            Op::CaretEq => "^=",
            Op::ShlEq => "<<=",
            Op::ShrEq => ">>=",
            Op::LParen => "(",
            Op::RParen => ")",
            Op::LBracket => "[",
            Op::RBracket => "]",
            Op::LBrace => "{",
            Op::RBrace => "}",
            Op::Comma => ",",
            Op::Colon => ":",
            Op::Semicolon => ";",
            Op::Dot => ".",
            Op::At => "@",
            Op::Amp => "&",
            Op::Pipe => "|",
            Op::Caret => "^",
            Op::Tilde => "~",
            Op::Shl => "<<",
            Op::Shr => ">>",
            Op::Arrow => "->",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Keyword(k) => write!(f, "{k:?}"),
            Tok::Op(op) => write!(f, "{op}"),
            Tok::Newline => write!(f, "NEWLINE"),
            Tok::Indent => write!(f, "INDENT"),
            Tok::Dedent => write!(f, "DEDENT"),
            Tok::Eof => write!(f, "EOF"),
        }
    }
}
