//! AST pretty-printer: renders a [`Module`] back to Python-like source.
//!
//! Used by the OMP4Py-style frontend's `dump` option (the paper's `@omp`
//! decorator can emit the transformed source for inspection) and by golden
//! tests of the directive transformer.

use crate::ast::*;

/// Render a module to source text.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for stmt in &module.body {
        print_stmt(stmt, 0, &mut out);
    }
    out
}

/// Render a single statement (and children) at an indentation level.
pub fn print_stmt(stmt: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match &stmt.kind {
        StmtKind::Expr(e) => {
            out.push_str(&pad);
            out.push_str(&print_expr(e));
            out.push('\n');
        }
        StmtKind::Assign { targets, value } => {
            out.push_str(&pad);
            for t in targets {
                out.push_str(&print_expr(t));
                out.push_str(" = ");
            }
            out.push_str(&print_expr(value));
            out.push('\n');
        }
        StmtKind::AugAssign { target, op, value } => {
            out.push_str(&pad);
            out.push_str(&format!(
                "{} {}= {}\n",
                print_expr(target),
                op.symbol(),
                print_expr(value)
            ));
        }
        StmtKind::If { test, body, orelse } => {
            out.push_str(&pad);
            out.push_str(&format!("if {}:\n", print_expr(test)));
            print_block(body, indent + 1, out);
            if !orelse.is_empty() {
                // Collapse `else: if ...` into `elif`.
                if orelse.len() == 1 {
                    if let StmtKind::If { .. } = &orelse[0].kind {
                        let mut tmp = String::new();
                        print_stmt(&orelse[0], indent, &mut tmp);
                        let replaced =
                            tmp.replacen(&format!("{pad}if "), &format!("{pad}elif "), 1);
                        out.push_str(&replaced);
                        return;
                    }
                }
                out.push_str(&pad);
                out.push_str("else:\n");
                print_block(orelse, indent + 1, out);
            }
        }
        StmtKind::While { test, body } => {
            out.push_str(&pad);
            out.push_str(&format!("while {}:\n", print_expr(test)));
            print_block(body, indent + 1, out);
        }
        StmtKind::For { target, iter, body } => {
            out.push_str(&pad);
            out.push_str(&format!(
                "for {} in {}:\n",
                print_expr(target),
                print_expr(iter)
            ));
            print_block(body, indent + 1, out);
        }
        StmtKind::FuncDef(def) => {
            for deco in &def.decorators {
                out.push_str(&pad);
                out.push_str(&format!("@{}\n", print_expr(deco)));
            }
            out.push_str(&pad);
            let params: Vec<String> = def
                .params
                .iter()
                .map(|p| match &p.default {
                    Some(d) => format!("{}={}", p.name, print_expr(d)),
                    None => p.name.clone(),
                })
                .collect();
            out.push_str(&format!("def {}({}):\n", def.name, params.join(", ")));
            print_block(&def.body, indent + 1, out);
        }
        StmtKind::Return(v) => {
            out.push_str(&pad);
            match v {
                Some(e) => out.push_str(&format!("return {}\n", print_expr(e))),
                None => out.push_str("return\n"),
            }
        }
        StmtKind::Break => {
            out.push_str(&pad);
            out.push_str("break\n");
        }
        StmtKind::Continue => {
            out.push_str(&pad);
            out.push_str("continue\n");
        }
        StmtKind::Pass => {
            out.push_str(&pad);
            out.push_str("pass\n");
        }
        StmtKind::Global(names) => {
            out.push_str(&pad);
            out.push_str(&format!("global {}\n", names.join(", ")));
        }
        StmtKind::Nonlocal(names) => {
            out.push_str(&pad);
            out.push_str(&format!("nonlocal {}\n", names.join(", ")));
        }
        StmtKind::With { items, body } => {
            out.push_str(&pad);
            let parts: Vec<String> = items
                .iter()
                .map(|i| match &i.alias {
                    Some(a) => format!("{} as {}", print_expr(&i.context), a),
                    None => print_expr(&i.context),
                })
                .collect();
            out.push_str(&format!("with {}:\n", parts.join(", ")));
            print_block(body, indent + 1, out);
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            out.push_str(&pad);
            out.push_str("try:\n");
            print_block(body, indent + 1, out);
            for h in handlers {
                out.push_str(&pad);
                match (&h.class_name, &h.alias) {
                    (Some(c), Some(a)) => out.push_str(&format!("except {c} as {a}:\n")),
                    (Some(c), None) => out.push_str(&format!("except {c}:\n")),
                    _ => out.push_str("except:\n"),
                }
                print_block(&h.body, indent + 1, out);
            }
            if !orelse.is_empty() {
                out.push_str(&pad);
                out.push_str("else:\n");
                print_block(orelse, indent + 1, out);
            }
            if !finalbody.is_empty() {
                out.push_str(&pad);
                out.push_str("finally:\n");
                print_block(finalbody, indent + 1, out);
            }
        }
        StmtKind::Raise(v) => {
            out.push_str(&pad);
            match v {
                Some(e) => out.push_str(&format!("raise {}\n", print_expr(e))),
                None => out.push_str("raise\n"),
            }
        }
        StmtKind::Assert { test, msg } => {
            out.push_str(&pad);
            match msg {
                Some(m) => {
                    out.push_str(&format!("assert {}, {}\n", print_expr(test), print_expr(m)))
                }
                None => out.push_str(&format!("assert {}\n", print_expr(test))),
            }
        }
        StmtKind::Del(targets) => {
            out.push_str(&pad);
            let parts: Vec<String> = targets.iter().map(print_expr).collect();
            out.push_str(&format!("del {}\n", parts.join(", ")));
        }
        StmtKind::Import { module, alias } => {
            out.push_str(&pad);
            match alias {
                Some(a) => out.push_str(&format!("import {module} as {a}\n")),
                None => out.push_str(&format!("import {module}\n")),
            }
        }
        StmtKind::FromImport {
            module,
            names,
            star,
        } => {
            out.push_str(&pad);
            if *star {
                out.push_str(&format!("from {module} import *\n"));
            } else {
                let parts: Vec<String> = names
                    .iter()
                    .map(|(n, a)| match a {
                        Some(a) => format!("{n} as {a}"),
                        None => n.clone(),
                    })
                    .collect();
                out.push_str(&format!("from {module} import {}\n", parts.join(", ")));
            }
        }
    }
}

fn print_block(body: &[Stmt], indent: usize, out: &mut String) {
    if body.is_empty() {
        out.push_str(&"    ".repeat(indent));
        out.push_str("pass\n");
        return;
    }
    for stmt in body {
        print_stmt(stmt, indent, out);
    }
}

/// Render an expression to source text (fully parenthesized where nested).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => crate::value::format_float(*v),
        Expr::Str(s) => format!("{:?}", s).replace("\\u{", "\\x{"),
        Expr::Bool(true) => "True".into(),
        Expr::Bool(false) => "False".into(),
        Expr::None => "None".into(),
        Expr::Name(n) => n.clone(),
        Expr::Binary { op, left, right } => {
            format!(
                "({} {} {})",
                print_expr(left),
                op.symbol(),
                print_expr(right)
            )
        }
        Expr::Unary { op, operand } => {
            let sym = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Pos => "+",
                UnaryOp::Not => "not ",
                UnaryOp::Invert => "~",
            };
            format!("({}{})", sym, print_expr(operand))
        }
        Expr::BoolOp { op, values } => {
            let sym = match op {
                BoolOpKind::And => " and ",
                BoolOpKind::Or => " or ",
            };
            let parts: Vec<String> = values.iter().map(print_expr).collect();
            format!("({})", parts.join(sym))
        }
        Expr::Compare {
            left,
            ops,
            comparators,
        } => {
            let mut s = format!("({}", print_expr(left));
            for (op, c) in ops.iter().zip(comparators) {
                s.push_str(&format!(" {} {}", op.symbol(), print_expr(c)));
            }
            s.push(')');
            s
        }
        Expr::Call { func, args, kwargs } => {
            let mut parts: Vec<String> = args.iter().map(print_expr).collect();
            parts.extend(kwargs.iter().map(|(k, v)| format!("{k}={}", print_expr(v))));
            format!("{}({})", print_expr(func), parts.join(", "))
        }
        Expr::Attribute { value, attr } => format!("{}.{}", print_expr(value), attr),
        Expr::Index { value, index } => format!("{}[{}]", print_expr(value), print_expr(index)),
        Expr::Slice { lower, upper, step } => {
            let l = lower.as_ref().map(|e| print_expr(e)).unwrap_or_default();
            let u = upper.as_ref().map(|e| print_expr(e)).unwrap_or_default();
            match step {
                Some(s) => format!("{l}:{u}:{}", print_expr(s)),
                None => format!("{l}:{u}"),
            }
        }
        Expr::List(items) => {
            let parts: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", parts.join(", "))
        }
        Expr::Tuple(items) => {
            let parts: Vec<String> = items.iter().map(print_expr).collect();
            if items.len() == 1 {
                format!("({},)", parts[0])
            } else {
                format!("({})", parts.join(", "))
            }
        }
        Expr::Dict(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|(k, v)| format!("{}: {}", print_expr(k), print_expr(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        Expr::IfExp { test, body, orelse } => {
            format!(
                "({} if {} else {})",
                print_expr(body),
                print_expr(test),
                print_expr(orelse)
            )
        }
        Expr::Lambda { params, body } => {
            let parts: Vec<String> = params
                .iter()
                .map(|p| match &p.default {
                    Some(d) => format!("{}={}", p.name, print_expr(d)),
                    None => p.name.clone(),
                })
                .collect();
            format!("(lambda {}: {})", parts.join(", "), print_expr(body))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Round trip: parse → print → parse; the two ASTs must match
    /// modulo parenthesization (which parse normalizes away).
    fn round_trip(src: &str) {
        let m1 = parse(src).unwrap();
        let printed = print_module(&m1);
        let m2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        let printed2 = print_module(&m2);
        assert_eq!(printed, printed2, "printer not a fixpoint for {src:?}");
    }

    #[test]
    fn round_trips() {
        round_trip("x = 1 + 2 * 3\n");
        round_trip("def f(a, b=2):\n    return a ** b\n");
        round_trip("@omp\ndef g(n):\n    with omp(\"parallel\"):\n        pass\n");
        round_trip("for i in range(10):\n    if i % 2 == 0:\n        continue\n    print(i)\n");
        round_trip("try:\n    x = 1\nexcept ValueError as e:\n    pass\nfinally:\n    y = 2\n");
        round_trip("while a < b:\n    a += 1\nelse_done = True\n");
        round_trip("d = {1: 'a', 2: 'b'}\nl = [1, 2, 3]\nt = (1,)\n");
        round_trip("x = a[1:5:2]\ny = a[:]\n");
        round_trip("f = lambda x: x * 2\n");
        round_trip("z = a if c else b\n");
        round_trip("from omp4py import *\nimport math as m\n");
        round_trip("del d[1]\nassert x > 0, 'must be positive'\n");
        round_trip("raise ValueError('bad')\n");
        round_trip("global g\nnonlocal_free = 1\n");
    }

    #[test]
    fn elif_collapses() {
        let src = "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n";
        let m = parse(src).unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("elif"), "expected elif in: {printed}");
        round_trip(src);
    }

    #[test]
    fn empty_block_prints_pass() {
        let m = parse("def f():\n    pass\n").unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("pass"));
    }
}
