//! A simulated Global Interpreter Lock.
//!
//! CPython ≤3.12 serializes bytecode execution through the GIL, releasing it
//! every *switch interval* so other threads can run. Python 3.13+ offers a
//! free-threaded build without the GIL — the feature OMP4Py depends on.
//!
//! [`Gil`] reproduces both behaviours for the minipy interpreter:
//!
//! * [`GilMode::Enabled`] — interpreter threads must hold a global mutex
//!   while executing statements, periodically yielding it. Multithreaded
//!   CPU-bound code gets **no** parallel speedup (the paper's motivation).
//! * [`GilMode::FreeThreaded`] — no global lock; threads run concurrently,
//!   limited only by per-object locks and shared refcount contention.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;

/// Whether the simulated interpreter runs with or without the GIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GilMode {
    /// A global lock serializes interpreted execution (CPython ≤3.12).
    Enabled,
    /// No global lock (CPython 3.13+ `--disable-gil`). The default.
    #[default]
    FreeThreaded,
}

/// Default number of interpreter ticks between voluntary GIL switches.
///
/// CPython's default switch interval is 5 ms; we use an operation count
/// instead of wall time to stay deterministic.
pub const DEFAULT_SWITCH_INTERVAL: u32 = 128;

/// The simulated global interpreter lock. See the module docs.
pub struct Gil {
    mode: GilMode,
    switch_interval: u32,
    raw: RawMutex,
    switches: AtomicU64,
}

impl std::fmt::Debug for Gil {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gil")
            .field("mode", &self.mode)
            .field("switch_interval", &self.switch_interval)
            .field("switches", &self.switches.load(Ordering::Relaxed))
            .finish()
    }
}

thread_local! {
    static HOLD_DEPTH: Cell<u32> = const { Cell::new(0) };
    static TICKS: Cell<u32> = const { Cell::new(0) };
    /// When [`crate::stats`] collection is on: the instant this thread last
    /// acquired the raw GIL lock (for hold-time accounting).
    static HOLD_START: Cell<Option<std::time::Instant>> = const { Cell::new(None) };
}

/// Start a hold-time measurement if counters are armed (called right after
/// the raw lock is taken).
fn stats_hold_begin() {
    if crate::stats::enabled() {
        crate::stats::count_gil_acquisition();
        HOLD_START.with(|h| h.set(Some(std::time::Instant::now())));
    }
}

/// Accumulate the hold time measured since the matching `stats_hold_begin`,
/// tolerating counters being armed mid-hold (the start is simply absent).
fn stats_hold_end() {
    if let Some(start) = HOLD_START.with(Cell::take) {
        crate::stats::add_gil_hold_ns(start.elapsed().as_nanos() as u64);
    }
}

impl Gil {
    /// Create a GIL with the default switch interval.
    pub fn new(mode: GilMode) -> Arc<Gil> {
        Gil::with_interval(mode, DEFAULT_SWITCH_INTERVAL)
    }

    /// Create a GIL with a custom switch interval (ticks between yields).
    pub fn with_interval(mode: GilMode, switch_interval: u32) -> Arc<Gil> {
        Arc::new(Gil {
            mode,
            switch_interval: switch_interval.max(1),
            raw: RawMutex::INIT,
            switches: AtomicU64::new(0),
        })
    }

    /// The configured mode.
    pub fn mode(&self) -> GilMode {
        self.mode
    }

    /// Whether the GIL actually serializes execution.
    pub fn is_enabled(&self) -> bool {
        self.mode == GilMode::Enabled
    }

    /// Number of voluntary switch-interval yields so far (diagnostic).
    pub fn switch_count(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Enter a GIL-holding session on the current thread.
    ///
    /// Re-entrant: nested sessions only lock/unlock at the outermost level.
    /// All interpreter entry points hold a session while executing.
    pub fn enter(self: &Arc<Gil>) -> GilSession {
        if self.is_enabled() {
            let depth = HOLD_DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            if depth == 0 {
                self.raw.lock();
                stats_hold_begin();
            }
        }
        GilSession {
            gil: Arc::clone(self),
        }
    }

    /// Account one interpreter operation; yields the GIL at the switch
    /// interval so other threads can run (as CPython's eval loop does).
    ///
    /// Returns whether another thread may have executed since the previous
    /// tick: `true` on a switch-interval boundary, and always when the GIL
    /// is disabled (nothing serializes execution then). While it returns
    /// `false` the GIL was held continuously, so no other thread can have
    /// mutated interpreter-visible state — callers may cache values that
    /// only Python code can change (e.g. closure cells) across such ticks,
    /// invalidating on `true`.
    #[cfg_attr(not(debug_assertions), inline(always))]
    pub fn tick(&self) -> bool {
        if !self.is_enabled() {
            return true;
        }
        let should_switch = TICKS.with(|t| {
            let v = t.get() + 1;
            if v >= self.switch_interval {
                t.set(0);
                true
            } else {
                t.set(v);
                false
            }
        });
        if should_switch {
            self.switch();
            return true;
        }
        false
    }

    /// Open a batched tick account for a hot loop: the switch-interval
    /// counter moves from thread-local storage into the returned value (a
    /// register, once inlined) and is written back on drop. Tick cadence is
    /// bit-identical to calling [`Gil::tick`] per operation — same counter,
    /// same interval, same switch calls — only the counter's home changes.
    /// The loop must not call [`Gil::tick`] directly while the batch is
    /// live (the TLS counter would be stale); dropping the batch before any
    /// other tick source runs restores it.
    pub fn tick_batch(&self) -> TickBatch<'_> {
        let enabled = self.is_enabled();
        TickBatch {
            gil: self,
            ticks: if enabled { TICKS.with(|t| t.get()) } else { 0 },
            enabled,
        }
    }

    /// The switch-interval boundary: release the GIL (when held) so another
    /// thread can run. Out of line so [`Gil::tick`]'s per-operation fast
    /// path inlines into dispatch loops without this body.
    #[cold]
    fn switch(&self) {
        if HOLD_DEPTH.with(|d| d.get()) > 0 {
            self.switches.fetch_add(1, Ordering::Relaxed);
            stats_hold_end();
            // SAFETY: this thread holds the raw lock (HOLD_DEPTH > 0 and the
            // outermost `enter` locked it).
            unsafe { self.raw.unlock() };
            std::thread::yield_now();
            self.raw.lock();
            if crate::stats::enabled() {
                HOLD_START.with(|h| h.set(Some(std::time::Instant::now())));
            }
        }
    }

    /// Run `f` with the GIL released (the CPython C-API "allow threads"
    /// pattern). Runtime bridge operations that block — barriers, task
    /// waits, mutex acquisition — use this so a GIL-enabled interpreter
    /// does not deadlock its own team.
    ///
    /// The hold depth is reset to zero for the duration of `f`, so code run
    /// by `f` on this thread (e.g. a parallel region executing interpreted
    /// workers, one of which is this thread) re-acquires the GIL through
    /// fresh [`Gil::enter`] sessions instead of silently assuming it is
    /// still held.
    pub fn allow_threads<R>(&self, f: impl FnOnce() -> R) -> R {
        let saved_depth = if self.is_enabled() {
            HOLD_DEPTH.with(|d| {
                let v = d.get();
                d.set(0);
                v
            })
        } else {
            0
        };
        if saved_depth > 0 {
            stats_hold_end();
            // SAFETY: as in `tick`, the lock is held by this thread.
            unsafe { self.raw.unlock() };
        }
        let result = f();
        if saved_depth > 0 {
            self.raw.lock();
            HOLD_DEPTH.with(|d| d.set(saved_depth));
            if crate::stats::enabled() {
                HOLD_START.with(|h| h.set(Some(std::time::Instant::now())));
            }
        }
        result
    }
}

/// A register-resident tick counter for hot loops; see [`Gil::tick_batch`].
///
/// Holds the thread-local switch-interval counter for the duration of a
/// tight loop so each [`TickBatch::tick`] is an increment-and-compare on a
/// local instead of a TLS access. Dropping writes the counter back.
pub struct TickBatch<'g> {
    gil: &'g Gil,
    ticks: u32,
    enabled: bool,
}

impl TickBatch<'_> {
    /// Account one interpreter operation. Identical contract and cadence to
    /// [`Gil::tick`]: returns whether another thread may have executed
    /// since the previous tick.
    #[inline(always)]
    pub fn tick(&mut self) -> bool {
        if !self.enabled {
            return true;
        }
        self.ticks += 1;
        if self.ticks >= self.gil.switch_interval {
            self.ticks = 0;
            self.gil.switch();
            return true;
        }
        false
    }
}

impl Drop for TickBatch<'_> {
    fn drop(&mut self) {
        if self.enabled {
            TICKS.with(|t| t.set(self.ticks));
        }
    }
}

/// RAII token for a GIL-holding session. Dropping releases the outermost hold.
pub struct GilSession {
    gil: Arc<Gil>,
}

impl Drop for GilSession {
    fn drop(&mut self) {
        if self.gil.is_enabled() {
            let depth = HOLD_DEPTH.with(|d| {
                let v = d.get() - 1;
                d.set(v);
                v
            });
            if depth == 0 {
                stats_hold_end();
                // SAFETY: matching unlock for the `enter` that locked.
                unsafe { self.gil.raw.unlock() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn free_threaded_is_noop() {
        let gil = Gil::new(GilMode::FreeThreaded);
        let _s = gil.enter();
        gil.tick();
        assert_eq!(gil.switch_count(), 0);
    }

    #[test]
    fn nested_sessions_are_reentrant() {
        let gil = Gil::new(GilMode::Enabled);
        let s1 = gil.enter();
        let s2 = gil.enter();
        drop(s2);
        drop(s1);
        // If unlock pairing were wrong this would deadlock or panic.
        let s3 = gil.enter();
        drop(s3);
    }

    #[test]
    fn enabled_gil_serializes_threads() {
        let gil = Gil::with_interval(GilMode::Enabled, 1_000_000);
        let in_critical = Arc::new(AtomicBool::new(false));
        let saw_overlap = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gil = Arc::clone(&gil);
            let in_critical = Arc::clone(&in_critical);
            let saw_overlap = Arc::clone(&saw_overlap);
            handles.push(std::thread::spawn(move || {
                let _s = gil.enter();
                for _ in 0..100 {
                    if in_critical.swap(true, Ordering::SeqCst) {
                        saw_overlap.store(true, Ordering::SeqCst);
                    }
                    std::hint::spin_loop();
                    in_critical.store(false, Ordering::SeqCst);
                    gil.tick();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            !saw_overlap.load(Ordering::SeqCst),
            "GIL failed to serialize"
        );
    }

    #[test]
    fn tick_switches_at_interval() {
        let gil = Gil::with_interval(GilMode::Enabled, 4);
        let _s = gil.enter();
        for _ in 0..16 {
            gil.tick();
        }
        assert!(gil.switch_count() >= 3);
    }

    #[test]
    fn tick_batch_matches_tick_cadence() {
        // Same interval, same number of ticks → same switch count, whether
        // the counter lives in TLS or in a batch, including a batch opened
        // mid-stride (it must pick up the TLS counter, not restart at 0).
        let interval = 8;
        // 96 ticks per block (a multiple of the interval) so the
        // thread-local counter returns to its starting phase between blocks.
        let plain = {
            let gil = Gil::with_interval(GilMode::Enabled, interval);
            let _s = gil.enter();
            for _ in 0..96 {
                gil.tick();
            }
            gil.switch_count()
        };
        let batched = {
            let gil = Gil::with_interval(GilMode::Enabled, interval);
            let _s = gil.enter();
            for _ in 0..5 {
                gil.tick();
            }
            let mut batch = gil.tick_batch();
            for _ in 0..86 {
                batch.tick();
            }
            drop(batch);
            for _ in 0..5 {
                gil.tick();
            }
            gil.switch_count()
        };
        assert_eq!(plain, batched);
    }

    #[test]
    fn allow_threads_releases_and_reacquires() {
        let gil = Gil::with_interval(GilMode::Enabled, 1_000_000);
        let _s = gil.enter();
        let gil2 = Arc::clone(&gil);
        let acquired = gil.allow_threads(move || {
            // Another thread can take the GIL while released.
            let handle = std::thread::spawn(move || {
                let _s = gil2.enter();
                true
            });
            handle.join().unwrap()
        });
        assert!(acquired);
        gil.tick(); // still holding afterwards; must not panic
    }

    #[test]
    fn allow_threads_without_session_is_noop() {
        let gil = Gil::new(GilMode::Enabled);
        assert_eq!(gil.allow_threads(|| 7), 7);
    }
}
