//! The instruction set and compiled-function container.
//!
//! Instructions are register-oriented: every operand names a slot in the
//! frame's register file. Locals occupy the low registers (`[0, n_locals)`),
//! resolved to fixed indices at compile time; expression temporaries use the
//! registers above them with stack discipline. Constants are interned into
//! [`CompiledCode::consts`] and preloaded into dedicated registers at frame
//! entry, so straight-line numeric code touches no hash map, no environment
//! chain, and no per-object lock.

use std::sync::atomic::AtomicU8;

use crate::ast::{BinOp, CmpOp, UnaryOp};
use crate::value::Value;

/// Per-instruction specialization states for [`CompiledCode::quick`].
///
/// The state machine is monotone per slot: `UNSEEN` transitions (by CAS)
/// either to exactly one specialized state — counted as a rewrite — or
/// silently to `GENERIC` when the instruction shape is not specializable.
/// A specialized state transitions (by CAS) at most once to `GENERIC` on a
/// guard failure — counted as a deopt. Both transitions being one-shot per
/// slot makes `minipy.vm.quicken.deopts <= minipy.vm.quicken.rewrites` an
/// invariant by construction, even under concurrent execution of shared
/// code.
pub mod quick {
    /// Never executed: the next execution profiles its operand types.
    pub const UNSEEN: u8 = 0;
    /// Permanently generic (unsupported shape, or deoptimized).
    pub const GENERIC: u8 = 1;
    /// `Binary` with two `int` operands (checked `i64` math).
    pub const BIN_II: u8 = 2;
    /// `Binary` with `int`/`float` operands, at least one `float`.
    pub const BIN_FF: u8 = 3;
    /// `Compare` (`==`/`!=`/`<`/`<=`/`>`/`>=`) on `int`/`float` operands.
    pub const CMP_NUM: u8 = 4;
    /// `AugLocal` on a set slot with two `int` operands.
    pub const AUG_II: u8 = 5;
    /// `AugLocal` on a set slot with `int`/`float` operands, one `float`.
    pub const AUG_FF: u8 = 6;
    /// `GetItem` on a `list` container with an `int` index.
    pub const LIST_GET: u8 = 7;
    /// `SetItem` on a `list` container with an `int` index.
    pub const LIST_SET: u8 = 8;
    /// `IterNext` over a `range` iterator (always yields `int`).
    pub const ITER_RANGE: u8 = 9;
    /// `LoadFree` whose cell holds an `int`/`float` (tag-plane store).
    ///
    /// An *unfilled* cell slot (the once-per-frame lazy fill) runs the
    /// generic fill path without deopting — it is per-frame bootstrap, not
    /// an operand-shape change; only a non-numeric cell value deopts.
    pub const LOAD_FREE_NUM: u8 = 10;
    /// `IterNext` over a `range` iterator whose loop body is straight-line
    /// register-only numeric work closed by its own back-edge
    /// ([`super::CompiledCode::fused`] is non-zero at this pc): the VM runs
    /// whole iterations — `IterNext`, body, back-edge GIL tick — inside one
    /// handler, bailing to per-op dispatch (with no effects from the failing
    /// instruction) on any operand-guard failure or arithmetic error.
    pub const FUSED_RANGE: u8 = 11;
}

/// Upper bound on a fused loop body ([`CompiledCode::fused`]): long bodies
/// see diminishing returns and would bloat the fused handler's per-entry
/// caches.
pub const FUSED_MAX_BODY: usize = 32;

/// A register index.
pub type Reg = u16;

/// Sentinel for "no keyword table" on call instructions.
pub const NO_KW: u16 = u16::MAX;

/// One VM instruction.
///
/// Field order convention: destination first, then sources.
#[derive(Debug, Clone)]
pub enum Op {
    /// `dst = src` (register move; also "load name" when `src` is a local
    /// slot, via the unset-local fallback in the frame's read path).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Bind a `nonlocal` name: resolve the enclosing-function cell through
    /// the closure chain into cell slot `cell` (error if unbound, matching
    /// the tree-walker's `nonlocal` statement).
    BindNonlocal {
        /// Cell-table slot to fill.
        cell: u16,
        /// Name-table index.
        name: u16,
    },
    /// Bind a `global` name: find-or-define the cell in the interpreter
    /// globals (defining `None` when absent, as the tree-walker does).
    BindGlobal {
        /// Cell-table slot to fill.
        cell: u16,
        /// Name-table index.
        name: u16,
    },
    /// `dst = *cell` (read through a bound nonlocal/global cell).
    LoadCell {
        /// Destination register.
        dst: Reg,
        /// Cell-table slot.
        cell: u16,
    },
    /// `*cell = src`.
    StoreCell {
        /// Cell-table slot.
        cell: u16,
        /// Source register.
        src: Reg,
    },
    /// Read a free variable (never assigned in this function): resolved
    /// through the closure chain on first use, with the cell cached in the
    /// frame for the rest of the call (CPython closure-cell semantics).
    LoadFree {
        /// Destination register.
        dst: Reg,
        /// Cell-cache slot.
        cell: u16,
        /// Name-table index.
        name: u16,
    },
    /// `dst = l <op> r` via the interpreter's [`crate::interp::binary_op`].
    Binary {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
    },
    /// In-place `local <op>= src`, replicating the tree-walker's augmented
    /// assignment: when the local slot is unset, the write goes through the
    /// enclosing binding found on the chain (and no local is created).
    AugLocal {
        /// The operator.
        op: BinOp,
        /// Local slot (also the name, via `local_names`).
        slot: Reg,
        /// Right-hand-side register.
        src: Reg,
    },
    /// In-place `*cell <op>= src` for nonlocal/global names.
    AugCell {
        /// The operator.
        op: BinOp,
        /// Cell-table slot.
        cell: u16,
        /// Right-hand-side register.
        src: Reg,
    },
    /// `dst = <op> s` via [`crate::interp::unary_op`].
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        s: Reg,
    },
    /// `dst = Bool(l <op> r)` via [`crate::interp::compare`].
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
    },
    /// Unconditional jump. Backward jumps tick the GIL (loop back-edges).
    Jump {
        /// Target pc.
        target: u32,
    },
    /// Jump when `cond` is falsy.
    JumpIfFalse {
        /// Condition register.
        cond: Reg,
        /// Target pc.
        target: u32,
    },
    /// Jump when `cond` is truthy.
    JumpIfTrue {
        /// Condition register.
        cond: Reg,
        /// Target pc.
        target: u32,
    },
    /// Call `regs[func]` with `argc` positional arguments starting at
    /// `argbase` (plus keyword arguments from `kw_tables[kw]` unless
    /// `kw == NO_KW`, their values following the positionals).
    Call {
        /// Destination register.
        dst: Reg,
        /// Callee register.
        func: Reg,
        /// First argument register.
        argbase: Reg,
        /// Positional argument count.
        argc: u16,
        /// Keyword-table index or [`NO_KW`].
        kw: u16,
    },
    /// Call `regs[obj].attr(...)` with the tree-walker's attribute-call
    /// semantics (module attribute if the object is opaque and has one,
    /// otherwise a builtin method).
    CallMethod {
        /// Destination register.
        dst: Reg,
        /// Per-frame inline-cache slot (caches the receiver-type method
        /// dispatch under the quickening tier).
        site: u16,
        /// Receiver register.
        obj: Reg,
        /// Attribute name-table index.
        attr: u16,
        /// First argument register.
        argbase: Reg,
        /// Positional argument count.
        argc: u16,
        /// Keyword-table index or [`NO_KW`].
        kw: u16,
    },
    /// Runtime-intrinsic call: `base.attr(...)` where `base` is a free
    /// module name (in practice the pyfront `__omp` runtime module). The
    /// resolved callable is cached per frame in `site`, so hot-loop
    /// intrinsics (`for_next`, `for_chunk`, `barrier`, reduction merges)
    /// dispatch through one cached indirect call into the runtime instead of
    /// an environment walk plus a module-dict lookup per iteration.
    CallIntrinsic {
        /// Destination register.
        dst: Reg,
        /// Per-frame callable-cache slot.
        site: u16,
        /// Module name-table index (the base name).
        base: u16,
        /// Attribute name-table index.
        attr: u16,
        /// First argument register.
        argbase: Reg,
        /// Positional argument count.
        argc: u16,
    },
    /// `dst = obj[idx]`.
    GetItem {
        /// Destination register.
        dst: Reg,
        /// Container register.
        obj: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `obj[idx] = src`.
    SetItem {
        /// Container register.
        obj: Reg,
        /// Index register.
        idx: Reg,
        /// Source register.
        src: Reg,
    },
    /// `del obj[idx]`.
    DelItem {
        /// Container register.
        obj: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `dst = obj.attr` (non-call attribute read; opaque objects only, as in
    /// the tree-walker).
    GetAttr {
        /// Destination register.
        dst: Reg,
        /// Object register.
        obj: Reg,
        /// Attribute name-table index.
        attr: u16,
    },
    /// `dst = [regs[base..base+n]]`.
    BuildList {
        /// Destination register.
        dst: Reg,
        /// First element register.
        base: Reg,
        /// Element count.
        n: u16,
    },
    /// `dst = (regs[base..base+n],)`.
    BuildTuple {
        /// Destination register.
        dst: Reg,
        /// First element register.
        base: Reg,
        /// Element count.
        n: u16,
    },
    /// `dst = {k: v, ...}` from `n` key/value pairs in `regs[base..base+2n]`.
    BuildDict {
        /// Destination register.
        dst: Reg,
        /// First key register.
        base: Reg,
        /// Pair count.
        n: u16,
    },
    /// `dst = slice(l, u, s)` (registers hold `None` for omitted bounds).
    BuildSlice {
        /// Destination register.
        dst: Reg,
        /// Lower-bound register.
        l: Reg,
        /// Upper-bound register.
        u: Reg,
        /// Step register.
        s: Reg,
    },
    /// Unpack an iterable into `n` consecutive registers at `base`, with
    /// Python's too-many/not-enough `ValueError`s.
    UnpackSeq {
        /// First destination register.
        base: Reg,
        /// Expected element count.
        n: u16,
        /// Source register.
        src: Reg,
    },
    /// Create iterator state for `regs[src]` in iterator slot `iter`.
    IterNew {
        /// Iterator-table slot.
        iter: u16,
        /// Iterable register.
        src: Reg,
    },
    /// Advance iterator `iter`: store the next item in `dst`, or jump to
    /// `exit` (clearing the slot) when exhausted.
    IterNext {
        /// Iterator-table slot.
        iter: u16,
        /// Destination register for the item.
        dst: Reg,
        /// Jump target on exhaustion.
        exit: u32,
    },
    /// Drop iterator state (loop exit via `break`).
    IterClear {
        /// Iterator-table slot.
        iter: u16,
    },
    /// Push a `finally` unwind target onto the block stack.
    SetupFinally {
        /// Error-path pc of the finally block.
        target: u32,
    },
    /// Pop the innermost block (normal completion of a `try` body).
    PopBlock,
    /// Re-raise the pending exception stashed by the error-path unwind.
    Reraise,
    /// `raise regs[src]`.
    Raise {
        /// Exception-value register.
        src: Reg,
    },
    /// Bare `raise`: re-raise the active exception (from an enclosing
    /// tree-walker `except` block), or `RuntimeError` if none.
    RaiseBare,
    /// Assertion failure: raise `AssertionError` with the message in `msg`
    /// (or an empty message when `msg` is `None`-sentinel `NO_KW`).
    AssertFail {
        /// Message register, or [`NO_KW`] for no message.
        msg: u16,
    },
    /// `del` a local slot, falling back to the tree-walker's chain removal
    /// when the slot is unset at runtime.
    DelLocal {
        /// Local slot.
        slot: Reg,
    },
    /// Return `regs[src]`.
    Return {
        /// Result register.
        src: Reg,
    },
    /// Return `None` (also emitted at the implicit end of a body).
    ReturnNone,
}

/// A function compiled to bytecode.
///
/// Shared (behind `Arc`) by every thread calling the function; all mutable
/// state lives in the per-call [`crate::bytecode::frame::Frame`].
#[derive(Debug)]
pub struct CompiledCode {
    /// Function name (diagnostics only).
    pub name: String,
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Per-instruction specialization state ([`quick`] constants). Lives
    /// beside the immutable instruction stream as an atomic plane so the
    /// quickening tier can rewrite instructions "in place" while the
    /// `Arc<CompiledCode>` is shared across threads — a CAS on the state
    /// byte, not a mutation of [`CompiledCode::ops`].
    pub quick: Vec<AtomicU8>,
    /// Fused-loop eligibility, per instruction: at an `IterNext` whose loop
    /// body is straight-line register-only numeric work
    /// (`Binary`/`AugLocal`/`Copy`/`LoadFree`) closed by its own back-edge
    /// `Jump`, this holds the body length **plus one** (so `0` means
    /// ineligible). Computed once at compile time so the quickened tier
    /// ([`quick::FUSED_RANGE`]) never rescans the instruction stream.
    pub fused: Vec<u16>,
    /// Per-instruction source line (innermost enclosing statement; 0 for
    /// synthesized code), used to annotate errors exactly as the
    /// tree-walker's per-statement `with_line` does.
    pub lines: Vec<u32>,
    /// Interned constants, preloaded into `[const_base, const_base+len)` at
    /// frame entry.
    pub consts: Vec<Value>,
    /// Name table (free/global/attr names referenced by index).
    pub names: Vec<String>,
    /// Per-call-site keyword-argument name lists.
    pub kw_tables: Vec<Vec<String>>,
    /// Locals occupy registers `[0, n_locals)`.
    pub n_locals: u16,
    /// First constant register.
    pub const_base: u16,
    /// Total register-file size (locals + constants + temporaries).
    pub n_regs: u16,
    /// Cell-table size (nonlocal/global binds and free-variable caches).
    pub n_cells: u16,
    /// Iterator-table size (maximum loop nesting).
    pub n_iters: u16,
    /// Inline-cache array size (one slot per `CallIntrinsic` and
    /// `CallMethod` site).
    pub n_sites: u16,
    /// Slot → name for locals (unset-slot fallback and diagnostics).
    pub local_names: Vec<String>,
    /// Parameter index → local slot.
    pub param_slots: Vec<u16>,
}
