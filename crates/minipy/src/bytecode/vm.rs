//! The dispatch-loop virtual machine.
//!
//! [`call_compiled`] is the compiled-tier twin of the tree-walker's
//! interpreted call path: it binds arguments into register slots (with the
//! tree-walker's exact arity/keyword error messages), then dispatches the
//! instruction stream over a flat [`Frame`]. Semantics — including error
//! lines, `finally` unwinding, unset-local name resolution, and GIL
//! scheduling points — match the tree-walker; the differential suite in
//! `tests/vm_differential.rs` holds the two executions to identical output.
//!
//! GIL scheduling: the tree-walker calls `gil.tick()` before every
//! statement; compiled code ticks on loop back-edges and calls instead. Each
//! loop iteration and each call boundary therefore remains a potential
//! switch point (what CPython's eval loop guarantees), while straight-line
//! arithmetic runs untouched — that is the point of the tier.
//!
//! # Quickening (tier 2, `OMP4RS_MINIPY_QUICKEN`)
//!
//! Under [`QuickenMode::Auto`]/[`QuickenMode::On`] the dispatch loop runs
//! `step_quick` instead of the generic `step`. Each instruction slot
//! carries a specialization state byte (`CompiledCode::quick`):
//!
//! * `UNSEEN` — the first execution profiles the actual operand types and
//!   CAS-rewrites the slot to a specialized state (`BIN_II`, `BIN_FF`,
//!   `CMP_NUM`, `AUG_II`, `AUG_FF`, `LIST_GET`, `LIST_SET`, `ITER_RANGE`),
//!   counting `minipy.vm.quicken.rewrites`; shapes with no specialization
//!   move to `GENERIC` silently.
//! * specialized — every execution re-checks the operand-type guard; on
//!   mismatch the slot CAS-deopts to `GENERIC` permanently, counting
//!   `minipy.vm.quicken.deopts`, and the generic handler runs (so a failed
//!   guard has no side effects and identical semantics).
//! * `GENERIC` — the tier-1 handler, with the dispatch-site inline caches
//!   ([`super::frame::IcEntry`]) armed and counted.
//!
//! Every specialized arithmetic handler calls the *same* semantic helpers
//! as the tree-walker (`int_binary`, `float_binary`, the `py_eq` coercion
//! table), so values, errors, and error messages cannot drift.
//!
//! # Unboxed registers ([`QuickenMode::On`])
//!
//! The frame grows a tag plane: specialized numeric handlers write results
//! as raw `i64`/`f64` bits instead of `Value`s, and read operands from the
//! plane. Tag-aware instructions (`Jump`, conditional jumps, `Copy`,
//! `Return`, the specialized handlers themselves) execute without boxing;
//! any other instruction is an escape point — the loop calls
//! [`Frame::materialize`] first, so generic handlers (and anything that
//! leaks a register into a call, container, cell, or closure) always see
//! exactly the boxed state a tier-1 execution would have produced.

use crate::ast::{BinOp, CmpOp};
use crate::env::Env;
use crate::error::{name_err, type_err, value_err, ErrKind, PyErr};
use crate::interp::{
    binary_op, compare, current_exception, exception_from_value, float_binary, int_binary,
    normalize_index, unary_op, Interp, SliceValue, ValueIter,
};
use crate::methods;
use crate::stats;
use crate::value::{Args, FuncValue, HKey, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::frame::{Frame, IcEntry, Num};
use super::opcode::{quick as qk, CompiledCode, Op, Reg, NO_KW};
use super::QuickenMode;

/// What one dispatched instruction asks the loop to do next.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Transfer to an absolute pc.
    Jump(usize),
    /// Leave the frame with a value.
    Ret(Value),
}

/// Execute a compiled function.
///
/// The caller (the interpreted call path) has already applied the recursion
/// guard and holds a GIL session; this replaces environment-frame creation
/// and tree-walking for the whole call.
///
/// # Errors
///
/// Exactly the errors the tree-walker would raise for the same call: arity
/// and keyword `TypeError`s, then whatever the body raises (annotated with
/// the innermost statement line).
pub fn call_compiled(
    interp: &Interp,
    f: &FuncValue,
    code: &Arc<CompiledCode>,
    args: Args,
) -> Result<Value, PyErr> {
    // The tier is resolved once per frame: `off` pays nothing (the generic
    // tier-1 loop, bit for bit), `auto`/`on` take the quickened dispatcher.
    // The loop is monomorphized per tier so each release-mode dispatch loop
    // inlines exactly one stepper (merging them bloats the hot loop body
    // and costs more than the quickening wins back).
    let qm = super::quicken_mode();
    let mut frame = Frame::new(code, qm == QuickenMode::On);
    bind_args(f, code, &mut frame, args)?;
    let mut ops = 0u64;
    let result = if qm == QuickenMode::Off {
        run_frame::<false>(interp, f, code, &mut frame, &mut ops)
    } else {
        run_frame::<true>(interp, f, code, &mut frame, &mut ops)
    };
    if stats::enabled() {
        stats::add_vm_frame(ops);
    }
    result
}

/// The dispatch loop, monomorphized over the tier (`QUICK` = quickened).
fn run_frame<const QUICK: bool>(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    ops: &mut u64,
) -> Result<Value, PyErr> {
    let mut pc = 0usize;
    loop {
        *ops += 1;
        match if QUICK {
            step_quick(interp, f, code, frame, pc, ops)
        } else {
            step(interp, f, code, frame, pc)
        } {
            Ok(Ctl::Next) => pc += 1,
            Ok(Ctl::Jump(target)) => pc = target,
            Ok(Ctl::Ret(v)) => break Ok(v),
            Err(mut e) => {
                // The tree-walker annotates errors with the innermost
                // enclosing statement's line (`with_line` keeps the first
                // annotation); `lines[pc]` is exactly that statement.
                let line = code.lines[pc];
                if line > 0 {
                    e = e.with_line(line);
                }
                match frame.blocks.pop() {
                    // Unwind into the nearest `finally` error copy. A new
                    // error raised there replaces the pending one, as the
                    // tree-walker's `finally` result replacement does.
                    Some(target) => {
                        frame.pending = Some(e);
                        pc = target as usize;
                    }
                    None => break Err(e),
                }
            }
        }
    }
}

/// Bind call arguments into parameter slots, replicating the tree-walker's
/// arity and keyword errors verbatim.
fn bind_args(
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    mut args: Args,
) -> Result<(), PyErr> {
    let params = &f.def.params;
    if args.pos.len() > params.len() {
        return Err(type_err(format!(
            "{}() takes {} positional arguments but {} were given",
            f.name,
            params.len(),
            args.pos.len()
        )));
    }
    let npos = args.pos.len();
    for (i, value) in args.pos.drain(..).enumerate() {
        frame.write(code.param_slots[i], value);
    }
    for (name, value) in args.kw.drain(..) {
        match params.iter().position(|p| p.name == name) {
            Some(i) if i < npos => {
                return Err(type_err(format!(
                    "{}() got multiple values for argument '{name}'",
                    f.name
                )))
            }
            Some(i) => {
                let slot = code.param_slots[i];
                if frame.is_set(slot) {
                    return Err(type_err(format!(
                        "{}() got multiple values for argument '{name}'",
                        f.name
                    )));
                }
                frame.write(slot, value);
            }
            None => {
                return Err(type_err(format!(
                    "{}() got an unexpected keyword argument '{name}'",
                    f.name
                )))
            }
        }
    }
    for (i, param) in params.iter().enumerate() {
        let slot = code.param_slots[i];
        if !frame.is_set(slot) {
            match f.defaults.get(i).and_then(Option::as_ref) {
                Some(default) => frame.write(slot, default.clone()),
                None => {
                    return Err(type_err(format!(
                        "{}() missing required argument: '{}'",
                        f.name, param.name
                    )))
                }
            }
        }
    }
    Ok(())
}

/// Collect `argc` positional registers starting at `argbase`.
fn read_args(
    frame: &Frame,
    code: &CompiledCode,
    closure: &Env,
    argbase: Reg,
    argc: u16,
) -> Result<Vec<Value>, PyErr> {
    let mut pos = Vec::with_capacity(argc as usize);
    for i in 0..argc {
        pos.push(frame.read(argbase + i, code, closure)?);
    }
    Ok(pos)
}

/// Dispatch one instruction.
///
/// Force-inlined into the dispatch loop only under optimization: in debug
/// builds the unoptimized inlined frame (no stack-slot reuse across the big
/// match) would multiply per-recursion-level stack usage — `step` is also
/// inlined into [`step_ic`], so a recursive interpreted call would carry two
/// copies per level.
#[cfg_attr(not(debug_assertions), inline(always))]
fn step(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
) -> Result<Ctl, PyErr> {
    let closure = &f.closure;
    match &code.ops[pc] {
        Op::Copy { dst, src } => {
            let v = frame.read(*src, code, closure)?;
            frame.write(*dst, v);
        }
        Op::BindNonlocal { cell, name } => {
            let nm = &code.names[*name as usize];
            // The VM call has no `Env` frame, so "strict ancestors of the
            // frame" is the closure chain itself.
            let resolved = closure.get_cell_below_root(nm).ok_or_else(|| {
                PyErr::new(
                    ErrKind::Syntax,
                    format!("no binding for nonlocal '{nm}' found"),
                )
            })?;
            frame.cells[*cell as usize] = Some(resolved);
        }
        Op::BindGlobal { cell, name } => {
            let nm = &code.names[*name as usize];
            let globals = interp.globals();
            let resolved = match globals.get_local_cell(nm) {
                Some(c) => c,
                None => {
                    globals.define(nm, Value::None);
                    globals.get_local_cell(nm).expect("just defined")
                }
            };
            frame.cells[*cell as usize] = Some(resolved);
        }
        Op::LoadCell { dst, cell } => {
            let v = frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue")
                .read()
                .clone();
            frame.write(*dst, v);
        }
        Op::StoreCell { cell, src } => {
            let v = frame.read(*src, code, closure)?;
            *frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue")
                .write() = v;
        }
        Op::LoadFree { dst, cell, name } => {
            let v = match &frame.cells[*cell as usize] {
                Some(c) => c.read().clone(),
                None => {
                    let nm = &code.names[*name as usize];
                    let c = closure.get_cell(nm).ok_or_else(|| name_err(nm))?;
                    let v = c.read().clone();
                    frame.cells[*cell as usize] = Some(c);
                    v
                }
            };
            frame.write(*dst, v);
        }
        Op::Binary { op, dst, l, r } => {
            // Borrow both operands when possible (the common case: consts,
            // temps, assigned locals) — cloning `Value`s here dominates the
            // dispatch cost of numeric loops otherwise.
            let v = match (frame.read_ref(*l), frame.read_ref(*r)) {
                (Some(a), Some(b)) => binary_op(*op, a, b)?,
                _ => {
                    let a = frame.read(*l, code, closure)?;
                    let b = frame.read(*r, code, closure)?;
                    binary_op(*op, &a, &b)?
                }
            };
            frame.write(*dst, v);
        }
        Op::AugLocal { op, slot, src } => {
            if frame.is_set(*slot) {
                let new = match frame.read_ref(*src) {
                    Some(r) => binary_op(*op, &frame.regs[*slot as usize], r)?,
                    None => {
                        let r = frame.read(*src, code, closure)?;
                        binary_op(*op, &frame.regs[*slot as usize], &r)?
                    }
                };
                frame.write(*slot, new);
            } else {
                let rhs = frame.read(*src, code, closure)?;
                // The tree-walker's `x += v` mutates the nearest existing
                // binding through its cell and never creates a local.
                let nm = &code.local_names[*slot as usize];
                let cell = closure.get_cell(nm).ok_or_else(|| name_err(nm))?;
                let old = cell.read().clone();
                let new = binary_op(*op, &old, &rhs)?;
                *cell.write() = new;
            }
        }
        Op::AugCell { op, cell, src } => {
            let rhs = frame.read(*src, code, closure)?;
            let c = frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue");
            // Read-modify-write without holding the lock across the
            // operator, matching the tree-walker (and CPython: `x += 1` is
            // not atomic).
            let old = c.read().clone();
            let new = binary_op(*op, &old, &rhs)?;
            *c.write() = new;
        }
        Op::Unary { op, dst, s } => {
            let v = match frame.read_ref(*s) {
                Some(x) => unary_op(*op, x)?,
                None => {
                    let x = frame.read(*s, code, closure)?;
                    unary_op(*op, &x)?
                }
            };
            frame.write(*dst, v);
        }
        Op::Compare { op, dst, l, r } => {
            let v = match (frame.read_ref(*l), frame.read_ref(*r)) {
                (Some(a), Some(b)) => compare(*op, a, b)?,
                _ => {
                    let a = frame.read(*l, code, closure)?;
                    let b = frame.read(*r, code, closure)?;
                    compare(*op, &a, &b)?
                }
            };
            frame.write(*dst, Value::Bool(v));
        }
        Op::Jump { target } => {
            let t = *target as usize;
            if t <= pc {
                // Loop back-edge: a GIL switch point per iteration.
                interp.gil().tick();
            }
            return Ok(Ctl::Jump(t));
        }
        Op::JumpIfFalse { cond, target } => {
            let t = match frame.read_ref(*cond) {
                Some(v) => v.truthy(),
                None => frame.read(*cond, code, closure)?.truthy(),
            };
            if !t {
                return Ok(Ctl::Jump(*target as usize));
            }
        }
        Op::JumpIfTrue { cond, target } => {
            let t = match frame.read_ref(*cond) {
                Some(v) => v.truthy(),
                None => frame.read(*cond, code, closure)?.truthy(),
            };
            if t {
                return Ok(Ctl::Jump(*target as usize));
            }
        }
        Op::Call {
            dst,
            func,
            argbase,
            argc,
            kw,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let kwargs = read_kwargs(frame, code, closure, *argbase + *argc, *kw)?;
            // Argument registers were populated before the callee register,
            // preserving the tree-walker's argument-then-callee order.
            let callee = frame.read(*func, code, closure)?;
            interp.gil().tick();
            let v = interp.call_value(&callee, Args { pos, kw: kwargs })?;
            frame.write(*dst, v);
        }
        Op::CallMethod {
            dst,
            site: _,
            obj,
            attr,
            argbase,
            argc,
            kw,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let kwargs = read_kwargs(frame, code, closure, *argbase + *argc, *kw)?;
            let call_args = Args { pos, kw: kwargs };
            let receiver = frame.read(*obj, code, closure)?;
            let nm = &code.names[*attr as usize];
            interp.gil().tick();
            let v = if let Value::Opaque(o) = &receiver {
                match o.get_attr(nm) {
                    Some(callable) => interp.call_value(&callable, call_args)?,
                    None => methods::call_method(interp, &receiver, nm, call_args)?,
                }
            } else {
                methods::call_method(interp, &receiver, nm, call_args)?
            };
            frame.write(*dst, v);
        }
        Op::CallIntrinsic {
            dst,
            site,
            base,
            attr,
            argbase,
            argc,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let call_args = Args::positional(pos);
            interp.gil().tick();
            let cached = match &frame.ics[*site as usize] {
                IcEntry::Callable(v) => Some(v.clone()),
                _ => None,
            };
            let v = match cached {
                Some(callable) => interp.call_value(&callable, call_args)?,
                None => {
                    let base_nm = &code.names[*base as usize];
                    let attr_nm = &code.names[*attr as usize];
                    let receiver = closure.get(base_nm).ok_or_else(|| name_err(base_nm))?;
                    if let Value::Opaque(o) = &receiver {
                        match o.get_attr(attr_nm) {
                            Some(callable) => {
                                // Cache the resolved runtime intrinsic: the
                                // base is a free name this function never
                                // rebinds, so the callable is call-invariant.
                                frame.ics[*site as usize] = IcEntry::Callable(callable.clone());
                                interp.call_value(&callable, call_args)?
                            }
                            None => methods::call_method(interp, &receiver, attr_nm, call_args)?,
                        }
                    } else {
                        methods::call_method(interp, &receiver, attr_nm, call_args)?
                    }
                }
            };
            frame.write(*dst, v);
        }
        Op::GetItem { dst, obj, idx } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            frame.write(*dst, interp.get_item(&container, &index)?);
        }
        Op::SetItem { obj, idx, src } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            let v = frame.read(*src, code, closure)?;
            interp.set_item(&container, &index, v)?;
        }
        Op::DelItem { obj, idx } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            interp.del_item(&container, &index)?;
        }
        Op::GetAttr { dst, obj, attr } => {
            let receiver = frame.read(*obj, code, closure)?;
            let nm = &code.names[*attr as usize];
            let v = match &receiver {
                Value::Opaque(o) => o.get_attr(nm).ok_or_else(|| {
                    PyErr::new(
                        ErrKind::Attribute,
                        format!("'{}' object has no attribute '{}'", o.type_name(), nm),
                    )
                })?,
                other => {
                    return Err(PyErr::new(
                        ErrKind::Attribute,
                        format!(
                            "attribute '{}' of '{}' is only supported in call position",
                            nm,
                            other.type_name()
                        ),
                    ))
                }
            };
            frame.write(*dst, v);
        }
        Op::BuildList { dst, base, n } => {
            let items = read_args(frame, code, closure, *base, *n)?;
            frame.write(*dst, Value::list(items));
        }
        Op::BuildTuple { dst, base, n } => {
            let items = read_args(frame, code, closure, *base, *n)?;
            frame.write(*dst, Value::tuple(items));
        }
        Op::BuildDict { dst, base, n } => {
            let dict = Value::dict();
            if let Value::Dict(map) = &dict {
                let mut map = map.write();
                for j in 0..*n {
                    let k = frame.read(*base + 2 * j, code, closure)?;
                    let v = frame.read(*base + 2 * j + 1, code, closure)?;
                    map.insert(HKey::from_value(&k)?, v);
                }
            }
            frame.write(*dst, dict);
        }
        Op::BuildSlice { dst, l, u, s } => {
            let slice = SliceValue {
                lower: frame.read(*l, code, closure)?,
                upper: frame.read(*u, code, closure)?,
                step: frame.read(*s, code, closure)?,
            };
            frame.write(*dst, Value::Opaque(Arc::new(slice)));
        }
        Op::UnpackSeq { base, n, src } => {
            let v = frame.read(*src, code, closure)?;
            let it = ValueIter::new(&v)?;
            let want = *n as usize;
            let mut supplied = Vec::with_capacity(want);
            for item in it {
                supplied.push(item);
                if supplied.len() > want {
                    return Err(value_err(format!(
                        "too many values to unpack (expected {want})"
                    )));
                }
            }
            if supplied.len() < want {
                return Err(value_err(format!(
                    "not enough values to unpack (expected {}, got {})",
                    want,
                    supplied.len()
                )));
            }
            for (j, item) in supplied.into_iter().enumerate() {
                frame.write(*base + j as u16, item);
            }
        }
        Op::IterNew { iter, src } => {
            let v = frame.read(*src, code, closure)?;
            frame.iters[*iter as usize] = Some(ValueIter::new(&v)?);
        }
        Op::IterNext { iter, dst, exit } => {
            let slot = *iter as usize;
            match frame.iters[slot].as_mut().expect("IterNew precedes").next() {
                Some(item) => frame.write(*dst, item),
                None => {
                    frame.iters[slot] = None;
                    return Ok(Ctl::Jump(*exit as usize));
                }
            }
        }
        Op::IterClear { iter } => frame.iters[*iter as usize] = None,
        Op::SetupFinally { target } => frame.blocks.push(*target),
        Op::PopBlock => {
            frame.blocks.pop();
        }
        Op::Reraise => {
            return Err(frame
                .pending
                .take()
                .expect("unwind path stashed the pending exception"));
        }
        Op::Raise { src } => {
            let v = frame.read(*src, code, closure)?;
            return Err(exception_from_value(&v)?);
        }
        Op::RaiseBare => {
            return Err(current_exception()
                .ok_or_else(|| PyErr::new(ErrKind::Runtime, "no active exception to re-raise"))?);
        }
        Op::AssertFail { msg } => {
            let message = if *msg == NO_KW {
                String::new()
            } else {
                frame.read(*msg, code, closure)?.py_str()
            };
            return Err(PyErr::new(ErrKind::Assertion, message));
        }
        Op::DelLocal { slot } => {
            if frame.is_set(*slot) {
                frame.clear_local(*slot);
            } else {
                // Unset local: the tree-walker's `del` removes the nearest
                // enclosing binding instead.
                let nm = &code.local_names[*slot as usize];
                let mut cur = Some(closure.clone());
                let mut removed = false;
                while let Some(env) = cur {
                    if env.remove(nm) {
                        removed = true;
                        break;
                    }
                    cur = env.parent().cloned();
                }
                if !removed {
                    return Err(name_err(nm));
                }
            }
        }
        Op::Return { src } => return Ok(Ctl::Ret(frame.read(*src, code, closure)?)),
        Op::ReturnNone => return Ok(Ctl::Ret(Value::None)),
    }
    Ok(Ctl::Next)
}

/// Whether a generic handler can run with unboxed registers still pending:
/// it neither reads a value register nor leaks one (it only touches the
/// iterator/block planes, which the tag plane never shadows). Everything
/// else must materialize first.
#[inline]
fn unbox_safe(op: &Op) -> bool {
    matches!(
        op,
        Op::IterNext { .. }
            | Op::IterClear { .. }
            | Op::SetupFinally { .. }
            | Op::PopBlock
            | Op::LoadFree { .. }
    )
}

/// CAS an `UNSEEN` slot to `state`, counting a rewrite for specialized
/// states. Returns the slot's winning state (another thread may have
/// rewritten it first — the caller re-guards, so either outcome is safe).
#[inline]
fn try_specialize(code: &CompiledCode, pc: usize, state: u8) -> u8 {
    match code.quick[pc].compare_exchange(qk::UNSEEN, state, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            if state != qk::GENERIC {
                stats::count_quicken_rewrite();
            }
            state
        }
        Err(current) => current,
    }
}

/// CAS a specialized slot back to `GENERIC` after a guard failure, counting
/// the deopt. One-shot per slot (a racing deopt loses the CAS and counts
/// nothing), so `deopts <= rewrites` holds by construction.
#[inline]
fn deopt(code: &CompiledCode, pc: usize, from: u8) {
    if code.quick[pc]
        .compare_exchange(from, qk::GENERIC, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        stats::count_quicken_deopt();
    }
}

/// Dispatch one instruction under the quickened tier.
///
/// One primary match, parallel to the tier-1 stepper: tag-aware control ops
/// run directly, each quickenable op loads its slot state and runs its
/// specialized handler inline when the operand guard holds, and dispatch
/// sites take the counted-IC generic handler. `UNSEEN` profiling, deopts,
/// and post-deopt generic execution live out of line in [`quick_fallback`]
/// so the hot loop body stays compact.
#[cfg_attr(not(debug_assertions), inline(always))]
fn step_quick(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
    ops: &mut u64,
) -> Result<Ctl, PyErr> {
    let closure = &f.closure;
    match &code.ops[pc] {
        Op::Jump { target } => {
            let t = *target as usize;
            if t <= pc {
                // Loop back-edge: a GIL switch point per iteration.
                interp.gil().tick();
            }
            Ok(Ctl::Jump(t))
        }
        Op::JumpIfFalse { cond, target } => {
            let t = match frame.truthy_unboxed(*cond) {
                Some(t) => t,
                None => match frame.read_ref(*cond) {
                    Some(v) => v.truthy(),
                    None => frame.read(*cond, code, closure)?.truthy(),
                },
            };
            Ok(if t {
                Ctl::Next
            } else {
                Ctl::Jump(*target as usize)
            })
        }
        Op::JumpIfTrue { cond, target } => {
            let t = match frame.truthy_unboxed(*cond) {
                Some(t) => t,
                None => match frame.read_ref(*cond) {
                    Some(v) => v.truthy(),
                    None => frame.read(*cond, code, closure)?.truthy(),
                },
            };
            Ok(if t {
                Ctl::Jump(*target as usize)
            } else {
                Ctl::Next
            })
        }
        Op::Copy { dst, src } => {
            if !frame.copy_unboxed(*dst, *src) {
                let v = frame.read(*src, code, closure)?;
                frame.write(*dst, v);
            }
            Ok(Ctl::Next)
        }
        Op::Return { src } => Ok(Ctl::Ret(frame.read_boxed(*src, code, closure)?)),
        Op::ReturnNone => Ok(Ctl::Ret(Value::None)),
        Op::Binary { op, dst, l, r } => {
            match code.quick[pc].load(Ordering::Relaxed) {
                qk::BIN_II => {
                    if let (Some(Num::I(a)), Some(Num::I(b))) =
                        (frame.read_num(*l), frame.read_num(*r))
                    {
                        return write_num_result(frame, *dst, int_binary(*op, a, b));
                    }
                }
                qk::BIN_FF => {
                    if let (Some(a), Some(b)) = (frame.read_num(*l), frame.read_num(*r)) {
                        // int/int must take the int path (e.g. `//` stays an
                        // int).
                        if !matches!((a, b), (Num::I(_), Num::I(_))) {
                            return write_num_result(
                                frame,
                                *dst,
                                float_binary(*op, a.as_f64(), b.as_f64()),
                            );
                        }
                    }
                }
                _ => {}
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::AugLocal { op, slot, src } => {
            match code.quick[pc].load(Ordering::Relaxed) {
                qk::AUG_II => {
                    if let (Some(Num::I(a)), Some(Num::I(b))) =
                        (frame.read_num(*slot), frame.read_num(*src))
                    {
                        return write_num_result(frame, *slot, int_binary(*op, a, b));
                    }
                }
                qk::AUG_FF => {
                    if let (Some(a), Some(b)) = (frame.read_num(*slot), frame.read_num(*src)) {
                        if !matches!((a, b), (Num::I(_), Num::I(_))) {
                            return write_num_result(
                                frame,
                                *slot,
                                float_binary(*op, a.as_f64(), b.as_f64()),
                            );
                        }
                    }
                }
                _ => {}
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::Compare { op, dst, l, r } => {
            if code.quick[pc].load(Ordering::Relaxed) == qk::CMP_NUM {
                if let (Some(a), Some(b)) = (frame.read_num(*l), frame.read_num(*r)) {
                    let t = match op {
                        // The `py_eq` numeric coercion table: int/int exact,
                        // anything involving a float compares as f64.
                        CmpOp::Eq | CmpOp::NotEq => {
                            let eq = match (a, b) {
                                (Num::I(x), Num::I(y)) => x == y,
                                (x, y) => x.as_f64() == y.as_f64(),
                            };
                            Some(eq == matches!(op, CmpOp::Eq))
                        }
                        // `py_ordering`'s numeric arm: both as f64,
                        // `partial_cmp`, unordered (NaN) raises the
                        // tree-walker's ValueError.
                        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                            match a.as_f64().partial_cmp(&b.as_f64()) {
                                Some(ord) => Some(match op {
                                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                                    _ => ord != std::cmp::Ordering::Less,
                                }),
                                None => return Err(value_err("cannot order NaN")),
                            }
                        }
                        // `CMP_NUM` is only ever installed for the six
                        // numeric comparators; anything else re-routes.
                        _ => None,
                    };
                    if let Some(t) = t {
                        frame.write(*dst, Value::Bool(t));
                        return Ok(Ctl::Next);
                    }
                }
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::GetItem { dst, obj, idx } => {
            if code.quick[pc].load(Ordering::Relaxed) == qk::LIST_GET && !frame.is_unboxed(*obj) {
                if let (Some(Num::I(i)), Some(Value::List(l))) =
                    (frame.read_num(*idx), frame.read_ref(*obj))
                {
                    let l = Arc::clone(l);
                    let v = {
                        let items = l.read();
                        match normalize_index(i, items.len()) {
                            Ok(ix) => items[ix].clone(),
                            Err(e) => return Err(e),
                        }
                    };
                    frame.write(*dst, v);
                    return Ok(Ctl::Next);
                }
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::SetItem { obj, idx, src } => {
            if code.quick[pc].load(Ordering::Relaxed) == qk::LIST_SET && !frame.is_unboxed(*obj) {
                if let Some(Num::I(i)) = frame.read_num(*idx) {
                    if matches!(frame.read_ref(*obj), Some(Value::List(_))) {
                        // Guards passed: from here on, effects and error
                        // order match the generic handler (src read first,
                        // then the index check).
                        let v = frame.read_boxed(*src, code, closure)?;
                        let Some(Value::List(l)) = frame.read_ref(*obj) else {
                            unreachable!("guard above matched a list");
                        };
                        let l = Arc::clone(l);
                        let mut items = l.write();
                        return match normalize_index(i, items.len()) {
                            Ok(ix) => {
                                items[ix] = v;
                                Ok(Ctl::Next)
                            }
                            Err(e) => Err(e),
                        };
                    }
                }
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::IterNext { iter, dst, exit } => {
            let slot = *iter as usize;
            let state = code.quick[pc].load(Ordering::Relaxed);
            if state == qk::FUSED_RANGE {
                if matches!(frame.iters[slot], Some(ValueIter::Range { .. })) {
                    return run_fused(interp, code, frame, pc, ops);
                }
            } else if state == qk::ITER_RANGE {
                if let Some(ValueIter::Range { cur, stop, step }) = frame.iters[slot].as_mut() {
                    // `ValueIter::next`'s Range arm, writing to the tag
                    // plane.
                    let next = if (*step > 0 && *cur < *stop) || (*step < 0 && *cur > *stop) {
                        let v = *cur;
                        *cur += *step;
                        Some(v)
                    } else {
                        None
                    };
                    return Ok(match next {
                        Some(v) => {
                            frame.write_num(*dst, Num::I(v));
                            Ctl::Next
                        }
                        None => {
                            frame.iters[slot] = None;
                            Ctl::Jump(*exit as usize)
                        }
                    });
                }
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        // `LoadFree` reads a cell and writes one register through tag-aware
        // stores, so it never observes a stale unboxed register: no
        // materialization (free-variable reads are common on loop hot paths
        // — the pyfront outlining turns enclosing locals into free
        // variables).
        Op::LoadFree { dst, cell, .. } => {
            if code.quick[pc].load(Ordering::Relaxed) == qk::LOAD_FREE_NUM {
                let n = match &frame.cells[*cell as usize] {
                    Some(c) => match &*c.read() {
                        Value::Int(v) => Some(Num::I(*v)),
                        Value::Float(v) => Some(Num::F(*v)),
                        _ => None,
                    },
                    // Unfilled cell slot: the generic handler performs the
                    // once-per-frame lazy fill (counted as the IC miss).
                    // Frame bootstrap, not an operand-shape change — no
                    // deopt.
                    None => return step_ic(interp, f, code, frame, pc),
                };
                if let Some(n) = n {
                    // A filled cell holding a number: one IC hit, exactly
                    // as the generic tier counts this execution.
                    if stats::enabled() {
                        stats::count_ic(true);
                    }
                    frame.write_num(*dst, n);
                    return Ok(Ctl::Next);
                }
                // The cell no longer holds a number: operand-shape change.
                deopt(code, pc, qk::LOAD_FREE_NUM);
                return step_ic(interp, f, code, frame, pc);
            }
            quick_fallback(interp, f, code, frame, pc)
        }
        Op::CallMethod { .. } | Op::CallIntrinsic { .. } => {
            if frame.has_unboxed() {
                frame.materialize();
            }
            step_ic(interp, f, code, frame, pc)
        }
        op => {
            if frame.has_unboxed() && !unbox_safe(op) {
                frame.materialize();
            }
            step_generic(interp, f, code, frame, pc)
        }
    }
}

/// Out-of-line tier-1 dispatch for ops the quickened tier has no fast path
/// for. A plain call (rather than re-inlining [`step`]'s whole match into
/// the quickened loop) keeps the numeric hot loop cache-resident; the off
/// tier still gets `step` fully inlined via `run_frame::<false>`.
#[inline(never)]
fn step_generic(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
) -> Result<Ctl, PyErr> {
    step(interp, f, code, frame, pc)
}

/// Execute a fused `range` loop ([`qk::FUSED_RANGE`]): the `IterNext`, its
/// straight-line register-only body (`CompiledCode::fused` holds the
/// compile-time-verified body length), and the back-edge run as one handler
/// without returning to the dispatch loop between instructions.
///
/// Semantics are preserved exactly:
///
/// * **GIL cadence** — `tick()` runs once per completed iteration, where
///   the back-edge `Jump` would have ticked.
/// * **Errors and guard failures** — the handler bails via
///   `Ctl::Jump(sub_pc)` *without executing the failing instruction* (the
///   arithmetic helpers are pure, so nothing has happened); the per-op tier
///   re-executes it and raises the identical error with the correct
///   per-instruction line annotation.
/// * **Counters** — `executed` tracks every completed sub-instruction so
///   `vm_ops` matches per-op execution exactly, and a fused `LoadFree`
///   counts its IC hit exactly as the generic tier would.
#[inline(never)]
fn run_fused(
    interp: &Interp,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
    ops: &mut u64,
) -> Result<Ctl, PyErr> {
    let Op::IterNext { iter, dst, exit } = &code.ops[pc] else {
        unreachable!("FUSED_RANGE is only installed on IterNext");
    };
    let slot = *iter as usize;
    let body = code.fused[pc] as usize - 1;
    // Hoist the range state into locals: body ops never touch the iterator
    // plane, and the frame is per-call, so no other thread can observe the
    // stale slot across a GIL yield. Written back before any bail-out.
    let (mut cur, stop, step) = match &frame.iters[slot] {
        Some(ValueIter::Range { cur, stop, step }) => (*cur, *stop, *step),
        // Unreachable (the caller just checked), but bail to per-op
        // dispatch rather than trusting that.
        _ => return Ok(Ctl::Jump(pc)),
    };
    // Decode the body once: the iteration loop dispatches over flat
    // [`FusedOp`]s instead of re-walking the `Op` enum (and the `BinOp`
    // jump table inside the arithmetic helpers) every iteration.
    let mut micro = [FusedOp::NOP; super::opcode::FUSED_MAX_BODY];
    decode_fused(code, pc, body, &mut micro);
    // Keep the GIL tick counter in a register for the whole loop; identical
    // cadence to one `tick()` per back-edge.
    let mut batch = interp.gil().tick_batch();
    // Per-body-slot cache of `LoadFree` cell values. Sound because `tick`
    // reports any window in which another thread may have run (and only
    // Python code, which runs under the GIL, can write a cell): while it
    // returns `false` the cell provably holds the cached value, and body
    // ops themselves cannot write cells (`StoreCell`/`AugCell` are not
    // fusible).
    let mut free_cache = [None::<Num>; super::opcode::FUSED_MAX_BODY];
    // Stats enablement is loop-invariant here: it only ever flips outside a
    // measured region (tests/benches toggle it around whole calls).
    let stats_on = stats::enabled();
    // The caller's dispatch already counted one op for this pc.
    let mut executed: u64 = 0;
    let ctl = 'iter: loop {
        // -- the IterNext itself --
        executed += 1;
        if !((step > 0 && cur < stop) || (step < 0 && cur > stop)) {
            frame.iters[slot] = None;
            break 'iter Ctl::Jump(*exit as usize);
        }
        let v = cur;
        cur += step;
        frame.write_num(*dst, Num::I(v));
        // -- the body --
        for k in 0..body {
            if !exec_fused(frame, &micro[k], &mut free_cache[k], stats_on) {
                if let Some(ValueIter::Range { cur: c, .. }) = frame.iters[slot].as_mut() {
                    *c = cur;
                }
                break 'iter Ctl::Jump(pc + 1 + k);
            }
            executed += 1;
        }
        // -- the back-edge: a GIL switch point per iteration --
        executed += 1;
        if batch.tick() {
            for c in free_cache[..body].iter_mut() {
                *c = None;
            }
        }
    };
    *ops += executed.saturating_sub(1);
    Ok(ctl)
}

/// The executable shape of one fused-body instruction; see [`FusedOp`].
#[derive(Clone, Copy)]
enum FusedKind {
    /// `int`/`int` checked add, anything else numeric as `f64` add.
    Add,
    /// As [`FusedKind::Add`] for `-`.
    Sub,
    /// As [`FusedKind::Add`] for `*`.
    Mul,
    /// True division: zero divisors bail (the per-op helper raises).
    Div,
    /// Any other operator: route through [`fused_binary`].
    Helper,
    /// Register copy.
    Copy,
    /// Closure-cell read with the per-slot value cache.
    LoadFree,
}

/// A fused-body instruction pre-decoded at loop entry: operator shape and
/// register operands flattened out of the `Op` enum so the per-iteration
/// dispatch is one small jump table with the common arithmetic inline. The
/// inline arithmetic is bit-identical to `int_binary`/`float_binary` for
/// the success cases; **every** error case (overflow, zero divisor) bails
/// so the real helper raises it with identical kind and message.
#[derive(Clone, Copy)]
struct FusedOp {
    kind: FusedKind,
    /// The original operator, for the [`FusedKind::Helper`] path.
    op: BinOp,
    dst: Reg,
    /// Left operand register, or the cell slot for `LoadFree`.
    a: Reg,
    b: Reg,
}

impl FusedOp {
    /// Filler for unused decode slots; never executed.
    const NOP: FusedOp = FusedOp {
        kind: FusedKind::Helper,
        op: BinOp::Add,
        dst: 0,
        a: 0,
        b: 0,
    };
}

/// Decode a compile-time-verified fused body (see `CompiledCode::fused`)
/// into [`FusedOp`]s. Once per [`run_fused`] entry, not per iteration.
#[inline(never)]
fn decode_fused(code: &CompiledCode, pc: usize, body: usize, out: &mut [FusedOp]) {
    let kind_of = |op: BinOp| match op {
        BinOp::Add => FusedKind::Add,
        BinOp::Sub => FusedKind::Sub,
        BinOp::Mul => FusedKind::Mul,
        BinOp::Div => FusedKind::Div,
        _ => FusedKind::Helper,
    };
    for (k, slot) in out.iter_mut().enumerate().take(body) {
        *slot = match &code.ops[pc + 1 + k] {
            Op::Binary { op, dst, l, r } => FusedOp {
                kind: kind_of(*op),
                op: *op,
                dst: *dst,
                a: *l,
                b: *r,
            },
            // In-place update: `dst = dst <op> src` on the same slot.
            Op::AugLocal { op, slot, src } => FusedOp {
                kind: kind_of(*op),
                op: *op,
                dst: *slot,
                a: *slot,
                b: *src,
            },
            Op::Copy { dst, src } => FusedOp {
                kind: FusedKind::Copy,
                dst: *dst,
                a: *src,
                ..FusedOp::NOP
            },
            Op::LoadFree { dst, cell, .. } => FusedOp {
                kind: FusedKind::LoadFree,
                dst: *dst,
                a: *cell,
                ..FusedOp::NOP
            },
            // `CompiledCode::fused` only marks bodies made of the arms above.
            op => unreachable!("non-fusible op in fused body: {op:?}"),
        };
    }
}

/// Execute one pre-decoded fused-body instruction against the tag plane.
/// Returns `false` — with **no effects** — when an operand guard fails or
/// the operation would raise; the caller bails so the per-op tier
/// re-executes the instruction and raises the identical error.
#[cfg_attr(not(debug_assertions), inline(always))]
fn exec_fused(frame: &mut Frame, m: &FusedOp, cache: &mut Option<Num>, stats_on: bool) -> bool {
    // `int`/`int` takes the checked-int path, anything mixed computes as
    // `f64` — the same coercion ladder as `binary_op`.
    macro_rules! arith {
        ($checked:ident, $op:tt) => {
            match (frame.read_num(m.a), frame.read_num(m.b)) {
                (Some(Num::I(x)), Some(Num::I(y))) => match x.$checked(y) {
                    Some(v) => {
                        frame.write_num(m.dst, Num::I(v));
                        true
                    }
                    // Overflow: `int_binary` raises `OverflowError` per-op.
                    None => false,
                },
                (Some(x), Some(y)) => {
                    frame.write_num(m.dst, Num::F(x.as_f64() $op y.as_f64()));
                    true
                }
                _ => false,
            }
        };
    }
    match m.kind {
        FusedKind::Add => arith!(checked_add, +),
        FusedKind::Sub => arith!(checked_sub, -),
        FusedKind::Mul => arith!(checked_mul, *),
        FusedKind::Div => match (frame.read_num(m.a), frame.read_num(m.b)) {
            // Zero divisors bail: `int_binary`/`float_binary` raise the
            // matching `ZeroDivisionError` per-op.
            (Some(Num::I(x)), Some(Num::I(y))) => {
                y != 0 && {
                    frame.write_num(m.dst, Num::F(x as f64 / y as f64));
                    true
                }
            }
            (Some(x), Some(y)) => {
                let d = y.as_f64();
                d != 0.0 && {
                    frame.write_num(m.dst, Num::F(x.as_f64() / d));
                    true
                }
            }
            _ => false,
        },
        FusedKind::Helper => fused_binary(frame, m.op, m.dst, m.a, m.b),
        FusedKind::Copy => {
            if frame.copy_unboxed(m.dst, m.a) {
                return true;
            }
            match frame.read_ref(m.a) {
                Some(v) => {
                    let v = v.clone();
                    frame.write(m.dst, v);
                    true
                }
                // Unset local: the generic handler's closure-chain read.
                None => false,
            }
        }
        FusedKind::LoadFree => {
            let n = match *cache {
                Some(n) => n,
                None => {
                    let n = match &frame.cells[m.a as usize] {
                        Some(c) => match &*c.read() {
                            Value::Int(v) => Num::I(*v),
                            Value::Float(v) => Num::F(*v),
                            // Non-numeric cell value: bail.
                            _ => return false,
                        },
                        // Unfilled cell slot: the generic handler performs
                        // the once-per-frame lazy fill (counted as the IC
                        // miss).
                        None => return false,
                    };
                    *cache = Some(n);
                    n
                }
            };
            // One dispatch, one IC hit — cached or not, exactly as the
            // generic tier counts this execution.
            if stats_on {
                stats::count_ic(true);
            }
            frame.write_num(m.dst, n);
            true
        }
    }
}

/// The fused numeric-binary kernel: the same operand coercion as the
/// generic `binary_op` (`int`/`int` takes the int path, anything mixed
/// compares as `f64`) through the same semantic helpers. `false` (no
/// effects) on a non-numeric operand or a helper error.
#[cfg_attr(not(debug_assertions), inline(always))]
fn fused_binary(frame: &mut Frame, op: BinOp, dst: Reg, l: Reg, r: Reg) -> bool {
    let result = match (frame.read_num(l), frame.read_num(r)) {
        (Some(Num::I(a)), Some(Num::I(b))) => int_binary(op, a, b),
        (Some(a), Some(b)) => float_binary(op, a.as_f64(), b.as_f64()),
        _ => return false,
    };
    match result {
        Ok(Value::Int(v)) => frame.write_num(dst, Num::I(v)),
        Ok(Value::Float(v)) => frame.write_num(dst, Num::F(v)),
        Ok(v) => frame.write(dst, v),
        Err(_) => return false,
    }
    true
}

/// Out-of-line slow path for a quickenable op whose inline fast path did
/// not fire: profile and rewrite an `UNSEEN` slot, deopt a specialized slot
/// whose operand guard just failed (guards are side-effect-free, so nothing
/// has happened yet), then run this execution generically. The next
/// execution of the slot dispatches on the settled state.
#[cold]
#[inline(never)]
fn quick_fallback(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
) -> Result<Ctl, PyErr> {
    match code.quick[pc].load(Ordering::Relaxed) {
        qk::UNSEEN => {
            // First execution: profile the live operand shapes and CAS the
            // slot to the matching specialized state (or `GENERIC` when
            // nothing applies).
            let profiled = profile(f, code, frame, pc);
            try_specialize(code, pc, profiled);
        }
        qk::GENERIC => {}
        from => deopt(code, pc, from),
    }
    if frame.has_unboxed() && !unbox_safe(&code.ops[pc]) {
        frame.materialize();
    }
    step_ic(interp, f, code, frame, pc)
}

/// Pick the specialized state matching a slot's live operand shapes, or
/// `GENERIC` when nothing applies. Side-effect-free: the `LoadFree` arm
/// peeks at the cell (or the closure chain) without filling the frame's
/// cell slot — the generic execution that follows does the actual fill.
fn profile(f: &FuncValue, code: &CompiledCode, frame: &Frame, pc: usize) -> u8 {
    match &code.ops[pc] {
        Op::LoadFree { cell, name, .. } => {
            let numeric = match &frame.cells[*cell as usize] {
                Some(c) => matches!(&*c.read(), Value::Int(_) | Value::Float(_)),
                None => match f.closure.get_cell(&code.names[*name as usize]) {
                    Some(c) => matches!(&*c.read(), Value::Int(_) | Value::Float(_)),
                    // Unbound name: the generic handler raises NameError.
                    None => false,
                },
            };
            if numeric {
                qk::LOAD_FREE_NUM
            } else {
                qk::GENERIC
            }
        }
        Op::Binary { l, r, .. } => match (frame.read_num(*l), frame.read_num(*r)) {
            (Some(Num::I(_)), Some(Num::I(_))) => qk::BIN_II,
            (Some(_), Some(_)) => qk::BIN_FF,
            _ => qk::GENERIC,
        },
        Op::AugLocal { slot, src, .. } => match (frame.read_num(*slot), frame.read_num(*src)) {
            (Some(Num::I(_)), Some(Num::I(_))) => qk::AUG_II,
            (Some(_), Some(_)) => qk::AUG_FF,
            _ => qk::GENERIC,
        },
        Op::Compare {
            op: CmpOp::Eq | CmpOp::NotEq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge,
            l,
            r,
            ..
        } => match (frame.read_num(*l), frame.read_num(*r)) {
            (Some(_), Some(_)) => qk::CMP_NUM,
            _ => qk::GENERIC,
        },
        Op::GetItem { obj, idx, .. } => {
            if !frame.is_unboxed(*obj)
                && matches!(frame.read_ref(*obj), Some(Value::List(_)))
                && matches!(frame.read_num(*idx), Some(Num::I(_)))
            {
                qk::LIST_GET
            } else {
                qk::GENERIC
            }
        }
        Op::SetItem { obj, idx, .. } => {
            if !frame.is_unboxed(*obj)
                && matches!(frame.read_ref(*obj), Some(Value::List(_)))
                && matches!(frame.read_num(*idx), Some(Num::I(_)))
            {
                qk::LIST_SET
            } else {
                qk::GENERIC
            }
        }
        Op::IterNext { iter, .. } => {
            if matches!(frame.iters[*iter as usize], Some(ValueIter::Range { .. })) {
                if code.fused[pc] != 0 {
                    qk::FUSED_RANGE
                } else {
                    qk::ITER_RANGE
                }
            } else {
                qk::GENERIC
            }
        }
        _ => qk::GENERIC,
    }
}

/// Store a specialized arithmetic result: numeric values go to the tag
/// plane (unboxed under `on`, boxed under `auto`), anything else boxes.
#[inline]
fn write_num_result(frame: &mut Frame, dst: Reg, r: Result<Value, PyErr>) -> Result<Ctl, PyErr> {
    match r? {
        Value::Int(v) => frame.write_num(dst, Num::I(v)),
        Value::Float(v) => frame.write_num(dst, Num::F(v)),
        v => frame.write(dst, v),
    }
    Ok(Ctl::Next)
}

/// The `GENERIC` tier under quickening: identical to [`step`] except that
/// the dispatch-site inline caches are armed and counted — `LoadFree` cell
/// fills, `CallMethod` receiver-type dispatch, and `CallIntrinsic` callable
/// caching each record a `minipy.vm.ic.*` hit or miss per execution.
fn step_ic(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
) -> Result<Ctl, PyErr> {
    let closure = &f.closure;
    match &code.ops[pc] {
        Op::LoadFree { dst, cell, name } => {
            let v = match &frame.cells[*cell as usize] {
                Some(c) => {
                    if stats::enabled() {
                        stats::count_ic(true);
                    }
                    c.read().clone()
                }
                None => {
                    if stats::enabled() {
                        stats::count_ic(false);
                    }
                    let nm = &code.names[*name as usize];
                    let c = closure.get_cell(nm).ok_or_else(|| name_err(nm))?;
                    let v = c.read().clone();
                    frame.cells[*cell as usize] = Some(c);
                    v
                }
            };
            frame.write(*dst, v);
            Ok(Ctl::Next)
        }
        Op::CallMethod {
            dst,
            site,
            obj,
            attr,
            argbase,
            argc,
            kw,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let kwargs = read_kwargs(frame, code, closure, *argbase + *argc, *kw)?;
            let call_args = Args { pos, kw: kwargs };
            let receiver = frame.read(*obj, code, closure)?;
            let nm = &code.names[*attr as usize];
            interp.gil().tick();
            let v = if let Value::Opaque(o) = &receiver {
                // Opaque attribute tables are dynamic — never cached.
                if stats::enabled() {
                    stats::count_ic(false);
                }
                match o.get_attr(nm) {
                    Some(callable) => interp.call_value(&callable, call_args)?,
                    None => methods::call_method(interp, &receiver, nm, call_args)?,
                }
            } else {
                let cached = match &frame.ics[*site as usize] {
                    IcEntry::Method(tag, func) => Some((*tag, *func)),
                    _ => None,
                };
                let dispatch = match (cached, methods::resolve_dispatch(&receiver)) {
                    (Some((tag, func)), Some((t, _))) if tag == t => {
                        if stats::enabled() {
                            stats::count_ic(true);
                        }
                        Some(func)
                    }
                    (_, Some((t, func))) => {
                        if stats::enabled() {
                            stats::count_ic(false);
                        }
                        frame.ics[*site as usize] = IcEntry::Method(t, func);
                        Some(func)
                    }
                    (_, None) => {
                        if stats::enabled() {
                            stats::count_ic(false);
                        }
                        None
                    }
                };
                match dispatch {
                    Some(func) => func(interp, &receiver, nm, call_args)?,
                    None => methods::call_method(interp, &receiver, nm, call_args)?,
                }
            };
            frame.write(*dst, v);
            Ok(Ctl::Next)
        }
        Op::CallIntrinsic {
            dst,
            site,
            base,
            attr,
            argbase,
            argc,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let call_args = Args::positional(pos);
            interp.gil().tick();
            let cached = match &frame.ics[*site as usize] {
                IcEntry::Callable(v) => Some(v.clone()),
                _ => None,
            };
            if stats::enabled() {
                stats::count_ic(cached.is_some());
            }
            let v = match cached {
                Some(callable) => interp.call_value(&callable, call_args)?,
                None => {
                    let base_nm = &code.names[*base as usize];
                    let attr_nm = &code.names[*attr as usize];
                    let receiver = closure.get(base_nm).ok_or_else(|| name_err(base_nm))?;
                    if let Value::Opaque(o) = &receiver {
                        match o.get_attr(attr_nm) {
                            Some(callable) => {
                                frame.ics[*site as usize] = IcEntry::Callable(callable.clone());
                                interp.call_value(&callable, call_args)?
                            }
                            None => methods::call_method(interp, &receiver, attr_nm, call_args)?,
                        }
                    } else {
                        methods::call_method(interp, &receiver, attr_nm, call_args)?
                    }
                }
            };
            frame.write(*dst, v);
            Ok(Ctl::Next)
        }
        _ => step(interp, f, code, frame, pc),
    }
}

/// Read a call's keyword arguments (values follow the positionals).
fn read_kwargs(
    frame: &Frame,
    code: &CompiledCode,
    closure: &Env,
    kwbase: Reg,
    kw: u16,
) -> Result<Vec<(String, Value)>, PyErr> {
    if kw == NO_KW {
        return Ok(Vec::new());
    }
    let names = &code.kw_tables[kw as usize];
    let mut out = Vec::with_capacity(names.len());
    for (j, name) in names.iter().enumerate() {
        out.push((name.clone(), frame.read(kwbase + j as u16, code, closure)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile::compile_function;
    use crate::value::Value;

    /// Compile `src` (which must define `f`), then call `f` with `args`
    /// through the VM directly (no global-mode flip, so tests stay
    /// parallel-safe) and through the tree-walker via a fresh interpreter,
    /// asserting identical results.
    fn vm_vs_tree(src: &str, args: Vec<Value>) -> (Result<Value, PyErr>, Option<String>) {
        let interp = Interp::new().capture_output();
        interp.run(src).expect("test source runs");
        let func = match interp.get_global("f").expect("f defined") {
            Value::Func(fv) => fv,
            other => panic!("f is {other:?}"),
        };
        let code = compile_function(&func.def).expect("test function compiles");
        let vm = call_compiled(&interp, &func, &code, Args::positional(args.clone()));
        let vm_out = interp.output();

        let tree = Interp::new().capture_output();
        tree.run(src).expect("test source runs");
        let tfunc = tree.get_global("f").expect("f defined");
        let expected = tree.call(&tfunc, args);
        let tree_out = tree.output();
        match (&vm, &expected) {
            (Ok(a), Ok(b)) => assert!(a.py_eq(b), "vm {a:?} != tree {b:?}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            other => panic!("vm/tree diverge: {other:?}"),
        }
        assert_eq!(vm_out, tree_out, "stdout diverges");
        (vm, vm_out)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (r, _) = vm_vs_tree(
            "def f(a, b):\n    c = a * b + 2\n    c = c - a\n    return c\n",
            vec![Value::Int(6), Value::Int(7)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 38);
    }

    #[test]
    fn while_loop_sums() {
        let (r, _) = vm_vs_tree(
            "def f(n):\n    total = 0\n    i = 0\n    while i < n:\n        total += i\n        i += 1\n    return total\n",
            vec![Value::Int(100)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 4950);
    }

    #[test]
    fn for_loop_over_range_and_list() {
        let _ = vm_vs_tree(
            "def f(n):\n    out = []\n    for i in range(n):\n        out.append(i * i)\n    s = 0\n    for v in out:\n        s += v\n    return s\n",
            vec![Value::Int(10)],
        );
    }

    #[test]
    fn try_finally_runs_on_error_and_success() {
        let _ = vm_vs_tree(
            "def f(x):\n    log = []\n    try:\n        log.append(1)\n        y = 1 // x\n    finally:\n        log.append(2)\n    return log\n",
            vec![Value::Int(2)],
        );
        let (r, _) = vm_vs_tree(
            "def f(x):\n    print('enter')\n    try:\n        y = 1 // x\n    finally:\n        print('cleanup')\n    return y\n",
            vec![Value::Int(0)],
        );
        assert!(r.unwrap_err().to_string().contains("ZeroDivisionError"));
    }

    #[test]
    fn unset_local_falls_back_to_enclosing_scope() {
        let (r, _) = vm_vs_tree(
            "g = 41\ndef f(flag):\n    if flag:\n        g = 1\n    return g + 1\n",
            vec![Value::Bool(false)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn arity_errors_match_the_tree_walker() {
        let (r, _) = vm_vs_tree(
            "def f(a, b):\n    return a\n",
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        assert_eq!(
            r.unwrap_err().to_string(),
            "TypeError: f() takes 2 positional arguments but 3 were given"
        );
        let (r, _) = vm_vs_tree("def f(a, b):\n    return a\n", vec![Value::Int(1)]);
        assert_eq!(
            r.unwrap_err().to_string(),
            "TypeError: f() missing required argument: 'b'"
        );
    }

    #[test]
    fn unpack_and_bool_ops() {
        let _ = vm_vs_tree(
            "def f(p):\n    a, b = p\n    c = a or b\n    d = a and b\n    return [a, b, c, d, a < b < 10]\n",
            vec![Value::tuple(vec![Value::Int(0), Value::Int(5)])],
        );
    }

    #[test]
    fn errors_carry_statement_lines() {
        let (r, _) = vm_vs_tree("def f():\n    x = 1\n    return x + ''\n", vec![]);
        assert_eq!(r.unwrap_err().line, Some(3));
    }
}
