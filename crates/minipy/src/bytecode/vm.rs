//! The dispatch-loop virtual machine.
//!
//! [`call_compiled`] is the compiled-tier twin of the tree-walker's
//! interpreted call path: it binds arguments into register slots (with the
//! tree-walker's exact arity/keyword error messages), then dispatches the
//! instruction stream over a flat [`Frame`]. Semantics — including error
//! lines, `finally` unwinding, unset-local name resolution, and GIL
//! scheduling points — match the tree-walker; the differential suite in
//! `tests/vm_differential.rs` holds the two executions to identical output.
//!
//! GIL scheduling: the tree-walker calls `gil.tick()` before every
//! statement; compiled code ticks on loop back-edges and calls instead. Each
//! loop iteration and each call boundary therefore remains a potential
//! switch point (what CPython's eval loop guarantees), while straight-line
//! arithmetic runs untouched — that is the point of the tier.

use crate::env::Env;
use crate::error::{name_err, type_err, value_err, ErrKind, PyErr};
use crate::interp::{
    binary_op, compare, current_exception, exception_from_value, unary_op, Interp, SliceValue,
    ValueIter,
};
use crate::methods;
use crate::stats;
use crate::value::{Args, FuncValue, HKey, Value};
use std::sync::Arc;

use super::frame::Frame;
use super::opcode::{CompiledCode, Op, Reg, NO_KW};

/// What one dispatched instruction asks the loop to do next.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Transfer to an absolute pc.
    Jump(usize),
    /// Leave the frame with a value.
    Ret(Value),
}

/// Execute a compiled function.
///
/// The caller (the interpreted call path) has already applied the recursion
/// guard and holds a GIL session; this replaces environment-frame creation
/// and tree-walking for the whole call.
///
/// # Errors
///
/// Exactly the errors the tree-walker would raise for the same call: arity
/// and keyword `TypeError`s, then whatever the body raises (annotated with
/// the innermost statement line).
pub fn call_compiled(
    interp: &Interp,
    f: &FuncValue,
    code: &Arc<CompiledCode>,
    args: Args,
) -> Result<Value, PyErr> {
    let mut frame = Frame::new(code);
    bind_args(f, code, &mut frame, args)?;
    let mut pc = 0usize;
    let mut ops = 0u64;
    let result = loop {
        ops += 1;
        match step(interp, f, code, &mut frame, pc) {
            Ok(Ctl::Next) => pc += 1,
            Ok(Ctl::Jump(target)) => pc = target,
            Ok(Ctl::Ret(v)) => break Ok(v),
            Err(mut e) => {
                // The tree-walker annotates errors with the innermost
                // enclosing statement's line (`with_line` keeps the first
                // annotation); `lines[pc]` is exactly that statement.
                let line = code.lines[pc];
                if line > 0 {
                    e = e.with_line(line);
                }
                match frame.blocks.pop() {
                    // Unwind into the nearest `finally` error copy. A new
                    // error raised there replaces the pending one, as the
                    // tree-walker's `finally` result replacement does.
                    Some(target) => {
                        frame.pending = Some(e);
                        pc = target as usize;
                    }
                    None => break Err(e),
                }
            }
        }
    };
    if stats::enabled() {
        stats::add_vm_frame(ops);
    }
    result
}

/// Bind call arguments into parameter slots, replicating the tree-walker's
/// arity and keyword errors verbatim.
fn bind_args(
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    mut args: Args,
) -> Result<(), PyErr> {
    let params = &f.def.params;
    if args.pos.len() > params.len() {
        return Err(type_err(format!(
            "{}() takes {} positional arguments but {} were given",
            f.name,
            params.len(),
            args.pos.len()
        )));
    }
    let npos = args.pos.len();
    for (i, value) in args.pos.drain(..).enumerate() {
        frame.write(code.param_slots[i], value);
    }
    for (name, value) in args.kw.drain(..) {
        match params.iter().position(|p| p.name == name) {
            Some(i) if i < npos => {
                return Err(type_err(format!(
                    "{}() got multiple values for argument '{name}'",
                    f.name
                )))
            }
            Some(i) => {
                let slot = code.param_slots[i];
                if frame.is_set(slot) {
                    return Err(type_err(format!(
                        "{}() got multiple values for argument '{name}'",
                        f.name
                    )));
                }
                frame.write(slot, value);
            }
            None => {
                return Err(type_err(format!(
                    "{}() got an unexpected keyword argument '{name}'",
                    f.name
                )))
            }
        }
    }
    for (i, param) in params.iter().enumerate() {
        let slot = code.param_slots[i];
        if !frame.is_set(slot) {
            match f.defaults.get(i).and_then(Option::as_ref) {
                Some(default) => frame.write(slot, default.clone()),
                None => {
                    return Err(type_err(format!(
                        "{}() missing required argument: '{}'",
                        f.name, param.name
                    )))
                }
            }
        }
    }
    Ok(())
}

/// Collect `argc` positional registers starting at `argbase`.
fn read_args(
    frame: &Frame,
    code: &CompiledCode,
    closure: &Env,
    argbase: Reg,
    argc: u16,
) -> Result<Vec<Value>, PyErr> {
    let mut pos = Vec::with_capacity(argc as usize);
    for i in 0..argc {
        pos.push(frame.read(argbase + i, code, closure)?);
    }
    Ok(pos)
}

/// Dispatch one instruction.
#[inline(always)]
fn step(
    interp: &Interp,
    f: &FuncValue,
    code: &CompiledCode,
    frame: &mut Frame,
    pc: usize,
) -> Result<Ctl, PyErr> {
    let closure = &f.closure;
    match &code.ops[pc] {
        Op::Copy { dst, src } => {
            let v = frame.read(*src, code, closure)?;
            frame.write(*dst, v);
        }
        Op::BindNonlocal { cell, name } => {
            let nm = &code.names[*name as usize];
            // The VM call has no `Env` frame, so "strict ancestors of the
            // frame" is the closure chain itself.
            let resolved = closure.get_cell_below_root(nm).ok_or_else(|| {
                PyErr::new(
                    ErrKind::Syntax,
                    format!("no binding for nonlocal '{nm}' found"),
                )
            })?;
            frame.cells[*cell as usize] = Some(resolved);
        }
        Op::BindGlobal { cell, name } => {
            let nm = &code.names[*name as usize];
            let globals = interp.globals();
            let resolved = match globals.get_local_cell(nm) {
                Some(c) => c,
                None => {
                    globals.define(nm, Value::None);
                    globals.get_local_cell(nm).expect("just defined")
                }
            };
            frame.cells[*cell as usize] = Some(resolved);
        }
        Op::LoadCell { dst, cell } => {
            let v = frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue")
                .read()
                .clone();
            frame.write(*dst, v);
        }
        Op::StoreCell { cell, src } => {
            let v = frame.read(*src, code, closure)?;
            *frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue")
                .write() = v;
        }
        Op::LoadFree { dst, cell, name } => {
            let v = match &frame.cells[*cell as usize] {
                Some(c) => c.read().clone(),
                None => {
                    let nm = &code.names[*name as usize];
                    let c = closure.get_cell(nm).ok_or_else(|| name_err(nm))?;
                    let v = c.read().clone();
                    frame.cells[*cell as usize] = Some(c);
                    v
                }
            };
            frame.write(*dst, v);
        }
        Op::Binary { op, dst, l, r } => {
            // Borrow both operands when possible (the common case: consts,
            // temps, assigned locals) — cloning `Value`s here dominates the
            // dispatch cost of numeric loops otherwise.
            let v = match (frame.read_ref(*l), frame.read_ref(*r)) {
                (Some(a), Some(b)) => binary_op(*op, a, b)?,
                _ => {
                    let a = frame.read(*l, code, closure)?;
                    let b = frame.read(*r, code, closure)?;
                    binary_op(*op, &a, &b)?
                }
            };
            frame.write(*dst, v);
        }
        Op::AugLocal { op, slot, src } => {
            if frame.is_set(*slot) {
                let new = match frame.read_ref(*src) {
                    Some(r) => binary_op(*op, &frame.regs[*slot as usize], r)?,
                    None => {
                        let r = frame.read(*src, code, closure)?;
                        binary_op(*op, &frame.regs[*slot as usize], &r)?
                    }
                };
                frame.write(*slot, new);
            } else {
                let rhs = frame.read(*src, code, closure)?;
                // The tree-walker's `x += v` mutates the nearest existing
                // binding through its cell and never creates a local.
                let nm = &code.local_names[*slot as usize];
                let cell = closure.get_cell(nm).ok_or_else(|| name_err(nm))?;
                let old = cell.read().clone();
                let new = binary_op(*op, &old, &rhs)?;
                *cell.write() = new;
            }
        }
        Op::AugCell { op, cell, src } => {
            let rhs = frame.read(*src, code, closure)?;
            let c = frame.cells[*cell as usize]
                .as_ref()
                .expect("cell bound by prologue");
            // Read-modify-write without holding the lock across the
            // operator, matching the tree-walker (and CPython: `x += 1` is
            // not atomic).
            let old = c.read().clone();
            let new = binary_op(*op, &old, &rhs)?;
            *c.write() = new;
        }
        Op::Unary { op, dst, s } => {
            let v = match frame.read_ref(*s) {
                Some(x) => unary_op(*op, x)?,
                None => {
                    let x = frame.read(*s, code, closure)?;
                    unary_op(*op, &x)?
                }
            };
            frame.write(*dst, v);
        }
        Op::Compare { op, dst, l, r } => {
            let v = match (frame.read_ref(*l), frame.read_ref(*r)) {
                (Some(a), Some(b)) => compare(*op, a, b)?,
                _ => {
                    let a = frame.read(*l, code, closure)?;
                    let b = frame.read(*r, code, closure)?;
                    compare(*op, &a, &b)?
                }
            };
            frame.write(*dst, Value::Bool(v));
        }
        Op::Jump { target } => {
            let t = *target as usize;
            if t <= pc {
                // Loop back-edge: a GIL switch point per iteration.
                interp.gil().tick();
            }
            return Ok(Ctl::Jump(t));
        }
        Op::JumpIfFalse { cond, target } => {
            let t = match frame.read_ref(*cond) {
                Some(v) => v.truthy(),
                None => frame.read(*cond, code, closure)?.truthy(),
            };
            if !t {
                return Ok(Ctl::Jump(*target as usize));
            }
        }
        Op::JumpIfTrue { cond, target } => {
            let t = match frame.read_ref(*cond) {
                Some(v) => v.truthy(),
                None => frame.read(*cond, code, closure)?.truthy(),
            };
            if t {
                return Ok(Ctl::Jump(*target as usize));
            }
        }
        Op::Call {
            dst,
            func,
            argbase,
            argc,
            kw,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let kwargs = read_kwargs(frame, code, closure, *argbase + *argc, *kw)?;
            // Argument registers were populated before the callee register,
            // preserving the tree-walker's argument-then-callee order.
            let callee = frame.read(*func, code, closure)?;
            interp.gil().tick();
            let v = interp.call_value(&callee, Args { pos, kw: kwargs })?;
            frame.write(*dst, v);
        }
        Op::CallMethod {
            dst,
            obj,
            attr,
            argbase,
            argc,
            kw,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let kwargs = read_kwargs(frame, code, closure, *argbase + *argc, *kw)?;
            let call_args = Args { pos, kw: kwargs };
            let receiver = frame.read(*obj, code, closure)?;
            let nm = &code.names[*attr as usize];
            interp.gil().tick();
            let v = if let Value::Opaque(o) = &receiver {
                match o.get_attr(nm) {
                    Some(callable) => interp.call_value(&callable, call_args)?,
                    None => methods::call_method(interp, &receiver, nm, call_args)?,
                }
            } else {
                methods::call_method(interp, &receiver, nm, call_args)?
            };
            frame.write(*dst, v);
        }
        Op::CallIntrinsic {
            dst,
            site,
            base,
            attr,
            argbase,
            argc,
        } => {
            let pos = read_args(frame, code, closure, *argbase, *argc)?;
            let call_args = Args::positional(pos);
            interp.gil().tick();
            let cached = frame.sites[*site as usize].clone();
            let v = match cached {
                Some(callable) => interp.call_value(&callable, call_args)?,
                None => {
                    let base_nm = &code.names[*base as usize];
                    let attr_nm = &code.names[*attr as usize];
                    let receiver = closure.get(base_nm).ok_or_else(|| name_err(base_nm))?;
                    if let Value::Opaque(o) = &receiver {
                        match o.get_attr(attr_nm) {
                            Some(callable) => {
                                // Cache the resolved runtime intrinsic: the
                                // base is a free name this function never
                                // rebinds, so the callable is call-invariant.
                                frame.sites[*site as usize] = Some(callable.clone());
                                interp.call_value(&callable, call_args)?
                            }
                            None => methods::call_method(interp, &receiver, attr_nm, call_args)?,
                        }
                    } else {
                        methods::call_method(interp, &receiver, attr_nm, call_args)?
                    }
                }
            };
            frame.write(*dst, v);
        }
        Op::GetItem { dst, obj, idx } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            frame.write(*dst, interp.get_item(&container, &index)?);
        }
        Op::SetItem { obj, idx, src } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            let v = frame.read(*src, code, closure)?;
            interp.set_item(&container, &index, v)?;
        }
        Op::DelItem { obj, idx } => {
            let container = frame.read(*obj, code, closure)?;
            let index = frame.read(*idx, code, closure)?;
            interp.del_item(&container, &index)?;
        }
        Op::GetAttr { dst, obj, attr } => {
            let receiver = frame.read(*obj, code, closure)?;
            let nm = &code.names[*attr as usize];
            let v = match &receiver {
                Value::Opaque(o) => o.get_attr(nm).ok_or_else(|| {
                    PyErr::new(
                        ErrKind::Attribute,
                        format!("'{}' object has no attribute '{}'", o.type_name(), nm),
                    )
                })?,
                other => {
                    return Err(PyErr::new(
                        ErrKind::Attribute,
                        format!(
                            "attribute '{}' of '{}' is only supported in call position",
                            nm,
                            other.type_name()
                        ),
                    ))
                }
            };
            frame.write(*dst, v);
        }
        Op::BuildList { dst, base, n } => {
            let items = read_args(frame, code, closure, *base, *n)?;
            frame.write(*dst, Value::list(items));
        }
        Op::BuildTuple { dst, base, n } => {
            let items = read_args(frame, code, closure, *base, *n)?;
            frame.write(*dst, Value::tuple(items));
        }
        Op::BuildDict { dst, base, n } => {
            let dict = Value::dict();
            if let Value::Dict(map) = &dict {
                let mut map = map.write();
                for j in 0..*n {
                    let k = frame.read(*base + 2 * j, code, closure)?;
                    let v = frame.read(*base + 2 * j + 1, code, closure)?;
                    map.insert(HKey::from_value(&k)?, v);
                }
            }
            frame.write(*dst, dict);
        }
        Op::BuildSlice { dst, l, u, s } => {
            let slice = SliceValue {
                lower: frame.read(*l, code, closure)?,
                upper: frame.read(*u, code, closure)?,
                step: frame.read(*s, code, closure)?,
            };
            frame.write(*dst, Value::Opaque(Arc::new(slice)));
        }
        Op::UnpackSeq { base, n, src } => {
            let v = frame.read(*src, code, closure)?;
            let it = ValueIter::new(&v)?;
            let want = *n as usize;
            let mut supplied = Vec::with_capacity(want);
            for item in it {
                supplied.push(item);
                if supplied.len() > want {
                    return Err(value_err(format!(
                        "too many values to unpack (expected {want})"
                    )));
                }
            }
            if supplied.len() < want {
                return Err(value_err(format!(
                    "not enough values to unpack (expected {}, got {})",
                    want,
                    supplied.len()
                )));
            }
            for (j, item) in supplied.into_iter().enumerate() {
                frame.write(*base + j as u16, item);
            }
        }
        Op::IterNew { iter, src } => {
            let v = frame.read(*src, code, closure)?;
            frame.iters[*iter as usize] = Some(ValueIter::new(&v)?);
        }
        Op::IterNext { iter, dst, exit } => {
            let slot = *iter as usize;
            match frame.iters[slot].as_mut().expect("IterNew precedes").next() {
                Some(item) => frame.write(*dst, item),
                None => {
                    frame.iters[slot] = None;
                    return Ok(Ctl::Jump(*exit as usize));
                }
            }
        }
        Op::IterClear { iter } => frame.iters[*iter as usize] = None,
        Op::SetupFinally { target } => frame.blocks.push(*target),
        Op::PopBlock => {
            frame.blocks.pop();
        }
        Op::Reraise => {
            return Err(frame
                .pending
                .take()
                .expect("unwind path stashed the pending exception"));
        }
        Op::Raise { src } => {
            let v = frame.read(*src, code, closure)?;
            return Err(exception_from_value(&v)?);
        }
        Op::RaiseBare => {
            return Err(current_exception()
                .ok_or_else(|| PyErr::new(ErrKind::Runtime, "no active exception to re-raise"))?);
        }
        Op::AssertFail { msg } => {
            let message = if *msg == NO_KW {
                String::new()
            } else {
                frame.read(*msg, code, closure)?.py_str()
            };
            return Err(PyErr::new(ErrKind::Assertion, message));
        }
        Op::DelLocal { slot } => {
            if frame.is_set(*slot) {
                frame.clear_local(*slot);
            } else {
                // Unset local: the tree-walker's `del` removes the nearest
                // enclosing binding instead.
                let nm = &code.local_names[*slot as usize];
                let mut cur = Some(closure.clone());
                let mut removed = false;
                while let Some(env) = cur {
                    if env.remove(nm) {
                        removed = true;
                        break;
                    }
                    cur = env.parent().cloned();
                }
                if !removed {
                    return Err(name_err(nm));
                }
            }
        }
        Op::Return { src } => return Ok(Ctl::Ret(frame.read(*src, code, closure)?)),
        Op::ReturnNone => return Ok(Ctl::Ret(Value::None)),
    }
    Ok(Ctl::Next)
}

/// Read a call's keyword arguments (values follow the positionals).
fn read_kwargs(
    frame: &Frame,
    code: &CompiledCode,
    closure: &Env,
    kwbase: Reg,
    kw: u16,
) -> Result<Vec<(String, Value)>, PyErr> {
    if kw == NO_KW {
        return Ok(Vec::new());
    }
    let names = &code.kw_tables[kw as usize];
    let mut out = Vec::with_capacity(names.len());
    for (j, name) in names.iter().enumerate() {
        out.push((name.clone(), frame.read(kwbase + j as u16, code, closure)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile::compile_function;
    use crate::value::Value;

    /// Compile `src` (which must define `f`), then call `f` with `args`
    /// through the VM directly (no global-mode flip, so tests stay
    /// parallel-safe) and through the tree-walker via a fresh interpreter,
    /// asserting identical results.
    fn vm_vs_tree(src: &str, args: Vec<Value>) -> (Result<Value, PyErr>, Option<String>) {
        let interp = Interp::new().capture_output();
        interp.run(src).expect("test source runs");
        let func = match interp.get_global("f").expect("f defined") {
            Value::Func(fv) => fv,
            other => panic!("f is {other:?}"),
        };
        let code = compile_function(&func.def).expect("test function compiles");
        let vm = call_compiled(&interp, &func, &code, Args::positional(args.clone()));
        let vm_out = interp.output();

        let tree = Interp::new().capture_output();
        tree.run(src).expect("test source runs");
        let tfunc = tree.get_global("f").expect("f defined");
        let expected = tree.call(&tfunc, args);
        let tree_out = tree.output();
        match (&vm, &expected) {
            (Ok(a), Ok(b)) => assert!(a.py_eq(b), "vm {a:?} != tree {b:?}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            other => panic!("vm/tree diverge: {other:?}"),
        }
        assert_eq!(vm_out, tree_out, "stdout diverges");
        (vm, vm_out)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (r, _) = vm_vs_tree(
            "def f(a, b):\n    c = a * b + 2\n    c = c - a\n    return c\n",
            vec![Value::Int(6), Value::Int(7)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 38);
    }

    #[test]
    fn while_loop_sums() {
        let (r, _) = vm_vs_tree(
            "def f(n):\n    total = 0\n    i = 0\n    while i < n:\n        total += i\n        i += 1\n    return total\n",
            vec![Value::Int(100)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 4950);
    }

    #[test]
    fn for_loop_over_range_and_list() {
        let _ = vm_vs_tree(
            "def f(n):\n    out = []\n    for i in range(n):\n        out.append(i * i)\n    s = 0\n    for v in out:\n        s += v\n    return s\n",
            vec![Value::Int(10)],
        );
    }

    #[test]
    fn try_finally_runs_on_error_and_success() {
        let _ = vm_vs_tree(
            "def f(x):\n    log = []\n    try:\n        log.append(1)\n        y = 1 // x\n    finally:\n        log.append(2)\n    return log\n",
            vec![Value::Int(2)],
        );
        let (r, _) = vm_vs_tree(
            "def f(x):\n    print('enter')\n    try:\n        y = 1 // x\n    finally:\n        print('cleanup')\n    return y\n",
            vec![Value::Int(0)],
        );
        assert!(r.unwrap_err().to_string().contains("ZeroDivisionError"));
    }

    #[test]
    fn unset_local_falls_back_to_enclosing_scope() {
        let (r, _) = vm_vs_tree(
            "g = 41\ndef f(flag):\n    if flag:\n        g = 1\n    return g + 1\n",
            vec![Value::Bool(false)],
        );
        assert_eq!(r.unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn arity_errors_match_the_tree_walker() {
        let (r, _) = vm_vs_tree(
            "def f(a, b):\n    return a\n",
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        assert_eq!(
            r.unwrap_err().to_string(),
            "TypeError: f() takes 2 positional arguments but 3 were given"
        );
        let (r, _) = vm_vs_tree("def f(a, b):\n    return a\n", vec![Value::Int(1)]);
        assert_eq!(
            r.unwrap_err().to_string(),
            "TypeError: f() missing required argument: 'b'"
        );
    }

    #[test]
    fn unpack_and_bool_ops() {
        let _ = vm_vs_tree(
            "def f(p):\n    a, b = p\n    c = a or b\n    d = a and b\n    return [a, b, c, d, a < b < 10]\n",
            vec![Value::tuple(vec![Value::Int(0), Value::Int(5)])],
        );
    }

    #[test]
    fn errors_carry_statement_lines() {
        let (r, _) = vm_vs_tree("def f():\n    x = 1\n    return x + ''\n", vec![]);
        assert_eq!(r.unwrap_err().line, Some(3));
    }
}
