//! Per-call VM state: the register file and its side tables.

use crate::env::{Cell, Env};
use crate::error::{name_err, PyErr};
use crate::interp::ValueIter;
use crate::methods;
use crate::value::Value;

use super::opcode::{CompiledCode, Reg};

/// An unboxed numeric operand: the register-plane dual of `Value::Int` /
/// `Value::Float`. Everything the quickened arithmetic handlers touch moves
/// through this type, so no `Value` is constructed (or dropped) on the hot
/// path when the unboxed tier is on.
#[derive(Debug, Clone, Copy)]
pub enum Num {
    /// An `int` (`Value::Int` dual).
    I(i64),
    /// A `float` (`Value::Float` dual).
    F(f64),
}

impl Num {
    /// Coerce to `f64`, exactly like `Value::as_float` on the boxed dual.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }

    /// Materialize the boxed dual.
    #[inline]
    pub fn to_value(self) -> Value {
        match self {
            Num::I(v) => Value::Int(v),
            Num::F(v) => Value::Float(v),
        }
    }
}

/// One inline-cache slot: the cached resolution of a dispatch site.
///
/// This generalizes the original intrinsic-only site cache into a uniform
/// array: `CallIntrinsic` sites cache the resolved runtime callable,
/// `CallMethod` sites cache the receiver-type method dispatch
/// (guard-checked against the receiver's current type tag on every hit).
#[derive(Clone, Default)]
pub enum IcEntry {
    /// Nothing cached yet (every probe is a miss).
    #[default]
    Empty,
    /// A resolved intrinsic callable (`CallIntrinsic`: the base is a free
    /// name the function never rebinds, so the callable is call-invariant).
    Callable(Value),
    /// A resolved built-in method dispatch for `CallMethod`, valid while
    /// the receiver keeps the cached type tag.
    Method(methods::TypeTag, methods::MethodFn),
}

/// `tags` low bits: what the unboxed `raw` slot holds (0 = register is
/// boxed in `regs` as usual).
const TAG_BOXED: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_KIND: u8 = 0x3;
/// `tags` bit 2: the register is queued in `unboxed` for materialization
/// (kept set when a boxed write overwrites the slot, so the queue never
/// grows more than one entry per register between two materialize points).
const TAG_QUEUED: u8 = 0x4;

/// The mutable state of one bytecode-function invocation.
///
/// Everything a call touches lives here; the [`CompiledCode`] itself is
/// immutable and shared across threads. Locals occupy the low registers and
/// carry a definedness bitmask: reading an *unset* local falls back to the
/// closure chain, exactly like the tree-walker's dynamic name lookup for a
/// local that has not been assigned yet on this path.
///
/// Under the unboxed tier (`OMP4RS_MINIPY_QUICKEN=on`) a register may live
/// in the `tags`/`raw` plane instead of `regs`: quickened numeric handlers
/// read and write registers there without boxing, and the dispatch loop
/// materializes the boxed `Value`s back into `regs` before any instruction
/// that is not tag-aware (calls, container builds, returns — the escape
/// points).
pub struct Frame {
    /// The register file: `[locals][temporaries][constants]`.
    pub regs: Vec<Value>,
    /// Definedness bits for the local registers.
    set: Vec<u64>,
    /// Bound cells (`global`/`nonlocal` declarations) and cached
    /// free-variable cells, indexed by cell slot.
    pub cells: Vec<Option<Cell>>,
    /// Live iterator state, indexed by loop-nesting depth.
    pub iters: Vec<Option<ValueIter>>,
    /// The inline-cache array, indexed by dispatch site.
    pub ics: Vec<IcEntry>,
    /// Active `finally` unwind targets (innermost last).
    pub blocks: Vec<u32>,
    /// The exception being unwound through a `finally` block.
    pub pending: Option<PyErr>,
    /// Unboxed-register kind tags (empty unless the unboxed tier is on).
    tags: Vec<u8>,
    /// Unboxed register payloads (`i64` bits or `f64` bits, per `tags`).
    raw: Vec<u64>,
    /// Registers currently holding (or recently holding) unboxed values,
    /// drained by [`Frame::materialize`].
    unboxed: Vec<Reg>,
    n_locals: u16,
}

impl Frame {
    /// Allocate the register file for `code`, preloading its constants.
    /// `unbox` arms the unboxed-register tag plane (quicken tier `on`).
    pub fn new(code: &CompiledCode, unbox: bool) -> Frame {
        let mut regs = vec![Value::None; code.n_regs as usize];
        for (i, c) in code.consts.iter().enumerate() {
            regs[code.const_base as usize + i] = c.clone();
        }
        let mut tags = if unbox {
            vec![0; code.n_regs as usize]
        } else {
            Vec::new()
        };
        let mut raw = if unbox {
            vec![0; code.n_regs as usize]
        } else {
            Vec::new()
        };
        if unbox {
            // Numeric constants live in the tag plane permanently: tagged
            // but never queued, so `materialize` never resets them and
            // `read_num` hits the fast path for every constant operand. The
            // boxed copy in `regs` stays identical, so generic handlers
            // reading the register boxed observe the same value.
            for (i, c) in code.consts.iter().enumerate() {
                let slot = code.const_base as usize + i;
                match c {
                    Value::Int(v) => {
                        tags[slot] = TAG_INT;
                        raw[slot] = *v as u64;
                    }
                    Value::Float(v) => {
                        tags[slot] = TAG_FLOAT;
                        raw[slot] = v.to_bits();
                    }
                    _ => {}
                }
            }
        }
        Frame {
            regs,
            set: vec![0; (code.n_locals as usize).div_ceil(64)],
            cells: vec![None; code.n_cells as usize],
            iters: (0..code.n_iters).map(|_| None).collect(),
            ics: vec![IcEntry::Empty; code.n_sites as usize],
            blocks: Vec::new(),
            pending: None,
            tags,
            raw,
            unboxed: Vec::new(),
            n_locals: code.n_locals,
        }
    }

    /// Whether local slot `slot` has been assigned in this call.
    #[inline(always)]
    pub fn is_set(&self, slot: Reg) -> bool {
        self.set[slot as usize / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Un-assign a local slot (`del x`): later reads fall back to the chain.
    #[inline]
    pub fn clear_local(&mut self, slot: Reg) {
        self.set[slot as usize / 64] &= !(1u64 << (slot % 64));
        self.regs[slot as usize] = Value::None;
        if let Some(t) = self.tags.get_mut(slot as usize) {
            *t &= TAG_QUEUED;
        }
    }

    /// Write a register, marking locals as assigned.
    #[inline(always)]
    pub fn write(&mut self, reg: Reg, v: Value) {
        if reg < self.n_locals {
            self.set[reg as usize / 64] |= 1u64 << (reg % 64);
        }
        if let Some(t) = self.tags.get_mut(reg as usize) {
            // Boxed write supersedes any unboxed value; keep the queued bit
            // so the slot stays tracked (materialize skips boxed tags).
            *t &= TAG_QUEUED;
        }
        self.regs[reg as usize] = v;
    }

    /// Borrow an operand register, or `None` when the register is an unset
    /// local (the caller must take the owned [`Frame::read`] fallback path).
    ///
    /// This is the dispatch loop's hot path: constants, temporaries, and
    /// assigned locals — everything straight-line numeric code touches —
    /// borrow without cloning.
    ///
    /// Callers must have materialized the frame first (the dispatch loop
    /// does this before every non-tag-aware instruction), so an unboxed
    /// register can never be observed stale here.
    #[inline(always)]
    pub fn read_ref(&self, reg: Reg) -> Option<&Value> {
        if reg < self.n_locals && !self.is_set(reg) {
            return None;
        }
        Some(&self.regs[reg as usize])
    }

    /// Read an operand register.
    ///
    /// Unset locals fall back to a dynamic lookup through the function's
    /// closure chain (the tree-walker reads any name it cannot find in the
    /// call frame from enclosing scopes), raising `NameError` if the name is
    /// bound nowhere.
    ///
    /// # Errors
    ///
    /// `NameError` for an unset local bound nowhere on the chain.
    #[inline]
    pub fn read(&self, reg: Reg, code: &CompiledCode, closure: &Env) -> Result<Value, PyErr> {
        if reg < self.n_locals && !self.is_set(reg) {
            let name = &code.local_names[reg as usize];
            return closure.get(name).ok_or_else(|| name_err(name));
        }
        Ok(self.regs[reg as usize].clone())
    }

    // ---- unboxed tag plane (quicken tier `on`) --------------------------

    /// Read a register as an unboxed number: from the tag plane when the
    /// register is unboxed, otherwise from the boxed `Value`. `None` when
    /// the register holds a non-`int`/`float` value or is an unset local —
    /// the specialized handler's guard failure.
    #[inline(always)]
    pub fn read_num(&self, reg: Reg) -> Option<Num> {
        let i = reg as usize;
        if let Some(t) = self.tags.get(i) {
            match t & TAG_KIND {
                TAG_INT => return Some(Num::I(self.raw[i] as i64)),
                TAG_FLOAT => return Some(Num::F(f64::from_bits(self.raw[i]))),
                _ => {}
            }
        }
        match self.read_ref(reg)? {
            Value::Int(v) => Some(Num::I(*v)),
            Value::Float(v) => Some(Num::F(*v)),
            _ => None,
        }
    }

    /// Write a numeric result: into the tag plane when the unboxed tier is
    /// on (no `Value` constructed), boxed otherwise.
    #[inline(always)]
    pub fn write_num(&mut self, reg: Reg, n: Num) {
        if self.tags.is_empty() {
            self.write(reg, n.to_value());
            return;
        }
        if reg < self.n_locals {
            self.set[reg as usize / 64] |= 1u64 << (reg % 64);
        }
        let i = reg as usize;
        let (kind, bits) = match n {
            Num::I(v) => (TAG_INT, v as u64),
            Num::F(v) => (TAG_FLOAT, v.to_bits()),
        };
        if self.tags[i] & TAG_QUEUED == 0 {
            self.unboxed.push(reg);
        }
        self.tags[i] = kind | TAG_QUEUED;
        self.raw[i] = bits;
    }

    /// Tag-aware truthiness for jump conditions, without materializing.
    /// `None` when the register is boxed (caller falls back to the generic
    /// read path).
    #[inline(always)]
    pub fn truthy_unboxed(&self, reg: Reg) -> Option<bool> {
        let i = reg as usize;
        match self.tags.get(i)? & TAG_KIND {
            TAG_INT => Some(self.raw[i] as i64 != 0),
            TAG_FLOAT => Some(f64::from_bits(self.raw[i]) != 0.0),
            _ => None,
        }
    }

    /// Whether any register is pending materialization.
    #[inline(always)]
    pub fn has_unboxed(&self) -> bool {
        !self.unboxed.is_empty()
    }

    /// Whether `reg` currently holds an unboxed value (its boxed slot in
    /// `regs` is stale). Guards for specialized handlers that read a boxed
    /// payload (e.g. a list reference) must reject unboxed registers.
    #[inline(always)]
    pub fn is_unboxed(&self, reg: Reg) -> bool {
        self.tags
            .get(reg as usize)
            .is_some_and(|t| t & TAG_KIND != 0)
    }

    /// Box every unboxed register back into `regs` (the escape point: the
    /// next instruction sees exactly the state a boxed-only execution would
    /// have produced).
    pub fn materialize(&mut self) {
        while let Some(reg) = self.unboxed.pop() {
            let i = reg as usize;
            match self.tags[i] & TAG_KIND {
                TAG_INT => self.regs[i] = Value::Int(self.raw[i] as i64),
                TAG_FLOAT => self.regs[i] = Value::Float(f64::from_bits(self.raw[i])),
                // A boxed write superseded the unboxed value; nothing to do.
                _ => {}
            }
            self.tags[i] = TAG_BOXED;
        }
    }

    /// Tag-aware owning read: boxes an unboxed register on the fly (without
    /// changing the register's state), otherwise defers to [`Frame::read`].
    ///
    /// # Errors
    ///
    /// `NameError` as for [`Frame::read`].
    #[inline(always)]
    pub fn read_boxed(&self, reg: Reg, code: &CompiledCode, closure: &Env) -> Result<Value, PyErr> {
        let i = reg as usize;
        if let Some(t) = self.tags.get(i) {
            match t & TAG_KIND {
                TAG_INT => return Ok(Value::Int(self.raw[i] as i64)),
                TAG_FLOAT => return Ok(Value::Float(f64::from_bits(self.raw[i]))),
                _ => {}
            }
        }
        self.read(reg, code, closure)
    }

    /// Tag-aware register copy for the quickened `Copy` handler: forwards
    /// the unboxed payload when the source is unboxed. Returns `false` when
    /// the source is boxed (caller takes the generic copy path).
    #[inline]
    pub fn copy_unboxed(&mut self, dst: Reg, src: Reg) -> bool {
        let i = src as usize;
        let Some(t) = self.tags.get(i) else {
            return false;
        };
        let n = match t & TAG_KIND {
            TAG_INT => Num::I(self.raw[i] as i64),
            TAG_FLOAT => Num::F(f64::from_bits(self.raw[i])),
            _ => return false,
        };
        self.write_num(dst, n);
        true
    }
}
