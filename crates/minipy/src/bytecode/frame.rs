//! Per-call VM state: the register file and its side tables.

use crate::env::{Cell, Env};
use crate::error::{name_err, PyErr};
use crate::interp::ValueIter;
use crate::value::Value;

use super::opcode::{CompiledCode, Reg};

/// The mutable state of one bytecode-function invocation.
///
/// Everything a call touches lives here; the [`CompiledCode`] itself is
/// immutable and shared across threads. Locals occupy the low registers and
/// carry a definedness bitmask: reading an *unset* local falls back to the
/// closure chain, exactly like the tree-walker's dynamic name lookup for a
/// local that has not been assigned yet on this path.
pub struct Frame {
    /// The register file: `[locals][temporaries][constants]`.
    pub regs: Vec<Value>,
    /// Definedness bits for the local registers.
    set: Vec<u64>,
    /// Bound cells (`global`/`nonlocal` declarations) and cached
    /// free-variable cells, indexed by cell slot.
    pub cells: Vec<Option<Cell>>,
    /// Live iterator state, indexed by loop-nesting depth.
    pub iters: Vec<Option<ValueIter>>,
    /// Cached intrinsic callables, indexed by call site.
    pub sites: Vec<Option<Value>>,
    /// Active `finally` unwind targets (innermost last).
    pub blocks: Vec<u32>,
    /// The exception being unwound through a `finally` block.
    pub pending: Option<PyErr>,
    n_locals: u16,
}

impl Frame {
    /// Allocate the register file for `code`, preloading its constants.
    pub fn new(code: &CompiledCode) -> Frame {
        let mut regs = vec![Value::None; code.n_regs as usize];
        for (i, c) in code.consts.iter().enumerate() {
            regs[code.const_base as usize + i] = c.clone();
        }
        Frame {
            regs,
            set: vec![0; (code.n_locals as usize).div_ceil(64)],
            cells: vec![None; code.n_cells as usize],
            iters: (0..code.n_iters).map(|_| None).collect(),
            sites: vec![None; code.n_sites as usize],
            blocks: Vec::new(),
            pending: None,
            n_locals: code.n_locals,
        }
    }

    /// Whether local slot `slot` has been assigned in this call.
    #[inline]
    pub fn is_set(&self, slot: Reg) -> bool {
        self.set[slot as usize / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Un-assign a local slot (`del x`): later reads fall back to the chain.
    #[inline]
    pub fn clear_local(&mut self, slot: Reg) {
        self.set[slot as usize / 64] &= !(1u64 << (slot % 64));
        self.regs[slot as usize] = Value::None;
    }

    /// Write a register, marking locals as assigned.
    #[inline]
    pub fn write(&mut self, reg: Reg, v: Value) {
        if reg < self.n_locals {
            self.set[reg as usize / 64] |= 1u64 << (reg % 64);
        }
        self.regs[reg as usize] = v;
    }

    /// Borrow an operand register, or `None` when the register is an unset
    /// local (the caller must take the owned [`Frame::read`] fallback path).
    ///
    /// This is the dispatch loop's hot path: constants, temporaries, and
    /// assigned locals — everything straight-line numeric code touches —
    /// borrow without cloning.
    #[inline]
    pub fn read_ref(&self, reg: Reg) -> Option<&Value> {
        if reg < self.n_locals && !self.is_set(reg) {
            return None;
        }
        Some(&self.regs[reg as usize])
    }

    /// Read an operand register.
    ///
    /// Unset locals fall back to a dynamic lookup through the function's
    /// closure chain (the tree-walker reads any name it cannot find in the
    /// call frame from enclosing scopes), raising `NameError` if the name is
    /// bound nowhere.
    ///
    /// # Errors
    ///
    /// `NameError` for an unset local bound nowhere on the chain.
    #[inline]
    pub fn read(&self, reg: Reg, code: &CompiledCode, closure: &Env) -> Result<Value, PyErr> {
        if reg < self.n_locals && !self.is_set(reg) {
            let name = &code.local_names[reg as usize];
            return closure.get(name).ok_or_else(|| name_err(name));
        }
        Ok(self.regs[reg as usize].clone())
    }
}
