//! A bytecode compiler and register VM for minipy hot paths.
//!
//! The OMP4Py paper's Pure/Hybrid modes pay for every loop iteration with
//! tree-walking overhead: per-statement dispatch over boxed AST nodes, a
//! hash-map + `RwLock` environment probe per name, and a per-object lock per
//! container touch. This module is the compiled execution tier that removes
//! that overhead *without* leaving the interpreter's semantics: the existing
//! lexer/parser/AST are shared, and a compiler ([`compile`]) lowers function
//! bodies to compact register bytecode ([`opcode`]) executed by a dispatch
//! loop ([`vm`]) over a flat register file ([`frame`]).
//!
//! What makes the generated OMP4Py-style parallel bodies fast here:
//!
//! * locals are fixed register slots resolved at compile time — no
//!   environment frame exists at all for a VM call;
//! * constants are interned and preloaded into registers at entry;
//! * chunk bounds and loop strides live in registers, so the per-iteration
//!   `obj_lock` traffic the profiler attributed to `value.rs` disappears for
//!   straight-line numeric code; and
//! * pyfront runtime intrinsics (`__omp.for_next`, `for_chunk`, `barrier`,
//!   reduction merges) compile to a dedicated [`opcode::Op::CallIntrinsic`]
//!   whose resolved callable is cached per frame — one indirect call into
//!   the `omp4rs` bridge instead of an environment walk plus module-dict
//!   lookup per chunk.
//!
//! # Mode selection (`OMP4RS_MINIPY_VM`)
//!
//! The tier is governed by a tri-state ICV, mirrored in
//! `omp4rs::icv::Icvs::minipy_vm` and documented in `docs/ENVIRONMENT.md`:
//!
//! * [`VmMode::Off`] — every call tree-walks (the pre-VM behavior).
//! * [`VmMode::Auto`] — the default: functions whose bodies use only
//!   VM-supported constructs are compiled lazily on first call; everything
//!   else falls back to the tree-walker per function.
//! * [`VmMode::On`] — like `Auto`, but the pyfront `@omp` decorator also
//!   compiles the transformed function and its generated parallel bodies
//!   eagerly at decoration time, so no compile latency lands on the first
//!   parallel region and fallback reasons surface immediately.
//!
//! Fallback always preserves semantics, GIL toggling, and the
//! `minipy.gil.*` / `minipy.obj_lock.*` counters — a function the VM cannot
//! compile behaves exactly as before. Compile results (including negative
//! ones) are cached per function definition, so the decision is paid once.
//!
//! # Tier 2 (`OMP4RS_MINIPY_QUICKEN`)
//!
//! On top of the compiled tier sits an adaptive specialization tier governed
//! by [`QuickenMode`]: generic instructions rewrite themselves in place to
//! type-specialized variants on first execution (guard-and-deopt back to
//! generic on mismatch), cached dispatch sites become uniform inline caches
//! with hit/miss counters, and — at `on` — provably-local `int`/`float`
//! registers are kept unboxed in a per-frame tag plane. See
//! [`vm`] for the state machine and escape rules.
//!
//! # Observability
//!
//! The tier publishes `minipy.vm.*` counters through [`crate::stats`] (the
//! pyfront bridge copies them into the `omp4rs::ompt` registry): compiled
//! functions, cumulative compile nanoseconds, VM frames entered, dispatched
//! ops, and per-reason fallback counts (`minipy.vm.fallback.<reason>`).

pub mod compile;
pub mod frame;
pub mod opcode;
pub mod vm;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::ast::FuncDef;
use crate::stats;

pub use compile::FallbackReason;
pub use opcode::{CompiledCode, Op};

/// The `OMP4RS_MINIPY_VM` tri-state: how much execution the bytecode tier
/// takes over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VmMode {
    /// Tree-walk everything (the pre-VM interpreter).
    Off,
    /// Compile VM-supported functions lazily on first call; per-function
    /// fallback to the tree-walker otherwise. The default.
    #[default]
    Auto,
    /// Like `Auto`, plus eager compilation of `@omp`-transformed functions
    /// (and their generated parallel bodies) at decoration time.
    On,
}

impl VmMode {
    /// Parse the `OMP4RS_MINIPY_VM` spellings. `None` for unrecognized text
    /// (the caller keeps the default).
    pub fn parse(text: &str) -> Option<VmMode> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" | "no" => Some(VmMode::Off),
            "auto" => Some(VmMode::Auto),
            "on" | "true" | "1" | "yes" => Some(VmMode::On),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> VmMode {
        match v {
            1 => VmMode::Off,
            3 => VmMode::On,
            _ => VmMode::Auto,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            VmMode::Off => 1,
            VmMode::Auto => 2,
            VmMode::On => 3,
        }
    }
}

/// The `OMP4RS_MINIPY_QUICKEN` tri-state: how aggressive the VM's tier-2
/// specialization (quickened opcodes, inline caches, unboxed registers) is.
///
/// The tier only changes *how* instructions execute, never *what* they
/// compute: every specialized handler shares its semantics helpers with the
/// tree-walker and deoptimizes back to the generic form on any guard
/// failure, so all three settings are differential-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuickenMode {
    /// Generic dispatch only — the exact tier-1 VM (the A/B baseline).
    Off,
    /// Quickened opcodes plus inline caches, with boxed register writes.
    /// The default.
    #[default]
    Auto,
    /// Like `Auto`, plus the unboxed-register tag plane: provably-local
    /// `int`/`float` values stay out of `Value` inside a bytecode body and
    /// are materialized only at escape points.
    On,
}

impl QuickenMode {
    /// Parse the `OMP4RS_MINIPY_QUICKEN` spellings (same table as
    /// [`VmMode::parse`]). `None` for unrecognized text.
    pub fn parse(text: &str) -> Option<QuickenMode> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" | "no" => Some(QuickenMode::Off),
            "auto" => Some(QuickenMode::Auto),
            "on" | "true" | "1" | "yes" => Some(QuickenMode::On),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> QuickenMode {
        match v {
            1 => QuickenMode::Off,
            3 => QuickenMode::On,
            _ => QuickenMode::Auto,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            QuickenMode::Off => 1,
            QuickenMode::Auto => 2,
            QuickenMode::On => 3,
        }
    }
}

/// 0 = uninitialized (read the environment on first use).
static MODE: AtomicU8 = AtomicU8::new(0);

/// 0 = uninitialized (read the environment on first use).
static QUICKEN: AtomicU8 = AtomicU8::new(0);

/// The current quickening mode (initialized from `OMP4RS_MINIPY_QUICKEN` on
/// first read).
pub fn quicken_mode() -> QuickenMode {
    match QUICKEN.load(Ordering::Relaxed) {
        0 => {
            let m = std::env::var("OMP4RS_MINIPY_QUICKEN")
                .ok()
                .as_deref()
                .and_then(QuickenMode::parse)
                .unwrap_or_default();
            // Racing first reads agree (same env), so a plain store is fine.
            QUICKEN.store(m.as_u8(), Ordering::Relaxed);
            m
        }
        v => QuickenMode::from_u8(v),
    }
}

/// Set the quickening mode, returning the previous one. Used by the pyfront
/// bridge (mirroring `Icvs::minipy_quicken`) and by tests/benchmarks that
/// sweep the tier in-process.
pub fn set_quicken_mode(m: QuickenMode) -> QuickenMode {
    let prev = quicken_mode();
    QUICKEN.store(m.as_u8(), Ordering::SeqCst);
    prev
}

/// The current VM mode (initialized from `OMP4RS_MINIPY_VM` on first read).
pub fn mode() -> VmMode {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let m = std::env::var("OMP4RS_MINIPY_VM")
                .ok()
                .as_deref()
                .and_then(VmMode::parse)
                .unwrap_or_default();
            // Racing first reads agree (same env), so a plain store is fine.
            MODE.store(m.as_u8(), Ordering::Relaxed);
            m
        }
        v => VmMode::from_u8(v),
    }
}

/// Set the VM mode, returning the previous one. Used by the pyfront bridge
/// (to mirror the `Icvs` value) and by tests/benchmarks that sweep modes.
pub fn set_mode(m: VmMode) -> VmMode {
    let prev = mode();
    MODE.store(m.as_u8(), Ordering::SeqCst);
    prev
}

/// Whether calls should consult the compiler at all.
#[inline]
pub fn enabled() -> bool {
    mode() != VmMode::Off
}

// ---- per-definition code cache -----------------------------------------

/// Cached compile outcome for one function definition.
type CacheEntry = (Weak<FuncDef>, Result<Arc<CompiledCode>, FallbackReason>);

fn cache() -> &'static Mutex<HashMap<usize, CacheEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, CacheEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up (or compile and cache) the bytecode for a function definition.
///
/// Returns `None` when the function is not VM-eligible — the caller must
/// tree-walk it. The cache is keyed by definition identity (the shared
/// `Arc<FuncDef>` produced by the parser), so the many `FuncValue`s created
/// by re-executing a `def` statement — e.g. the per-call closures pyfront
/// generates for parallel regions — share one compilation. A `Weak` guard
/// detects address reuse after the original definition is dropped.
pub fn lookup_or_compile(def: &Arc<FuncDef>) -> Option<Arc<CompiledCode>> {
    let key = Arc::as_ptr(def) as usize;
    let mut map = cache().lock().expect("bytecode cache poisoned");
    if let Some((weak, outcome)) = map.get(&key) {
        if weak.upgrade().is_some_and(|live| Arc::ptr_eq(&live, def)) {
            return outcome.as_ref().ok().cloned();
        }
    }
    // Miss (or a stale entry from a dropped definition at a reused address):
    // compile under the lock so concurrent first calls — every thread of a
    // parallel region calls the region body at once — compile exactly once.
    let start = std::time::Instant::now();
    let outcome = compile::compile_function(def);
    let elapsed = start.elapsed().as_nanos() as u64;
    match &outcome {
        Ok(_) => stats::count_vm_compile(elapsed),
        Err(reason) => record_fallback(*reason),
    }
    if map.len() >= 1024 {
        map.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    let result = outcome.as_ref().ok().cloned();
    map.insert(key, (Arc::downgrade(def), outcome));
    result
}

/// Eagerly compile a definition and (recursively) every function defined
/// inside it. Used by the pyfront `@omp` decorator under [`VmMode::On`]: the
/// nested definitions are the generated parallel bodies — the hot paths —
/// so warming them at decoration time keeps compile latency out of the
/// first parallel region.
pub fn precompile_def(def: &Arc<FuncDef>) {
    let _ = lookup_or_compile(def);
    precompile_nested(&def.body);
}

fn precompile_nested(body: &[crate::ast::Stmt]) {
    use crate::ast::StmtKind;
    for stmt in body {
        match &stmt.kind {
            StmtKind::FuncDef(inner) => precompile_def(inner),
            StmtKind::If { body, orelse, .. } => {
                precompile_nested(body);
                precompile_nested(orelse);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => precompile_nested(body),
            StmtKind::With { body, .. } => precompile_nested(body),
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                precompile_nested(body);
                for h in handlers {
                    precompile_nested(&h.body);
                }
                precompile_nested(orelse);
                precompile_nested(finalbody);
            }
            _ => {}
        }
    }
}

// ---- fallback-reason accounting ----------------------------------------

fn fallback_map() -> &'static Mutex<HashMap<&'static str, u64>> {
    static REASONS: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
    REASONS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn record_fallback(reason: FallbackReason) {
    stats::count_vm_fallback();
    *fallback_map()
        .lock()
        .expect("fallback map poisoned")
        .entry(reason.as_str())
        .or_insert(0) += 1;
}

/// Per-reason fallback counts (sorted by reason for deterministic output).
/// Published by the pyfront bridge as `minipy.vm.fallback.<reason>`.
pub fn fallback_reasons() -> Vec<(&'static str, u64)> {
    let map = fallback_map().lock().expect("fallback map poisoned");
    let mut out: Vec<(&'static str, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_spellings() {
        assert_eq!(VmMode::parse("off"), Some(VmMode::Off));
        assert_eq!(VmMode::parse(" ON "), Some(VmMode::On));
        assert_eq!(VmMode::parse("auto"), Some(VmMode::Auto));
        assert_eq!(VmMode::parse("0"), Some(VmMode::Off));
        assert_eq!(VmMode::parse("1"), Some(VmMode::On));
        assert_eq!(VmMode::parse("bogus"), None);
        assert_eq!(VmMode::default(), VmMode::Auto);
    }

    #[test]
    fn quicken_spellings() {
        assert_eq!(QuickenMode::parse("off"), Some(QuickenMode::Off));
        assert_eq!(QuickenMode::parse(" ON "), Some(QuickenMode::On));
        assert_eq!(QuickenMode::parse("auto"), Some(QuickenMode::Auto));
        assert_eq!(QuickenMode::parse("no"), Some(QuickenMode::Off));
        assert_eq!(QuickenMode::parse("bogus"), None);
        assert_eq!(QuickenMode::default(), QuickenMode::Auto);
    }

    #[test]
    fn quicken_mode_round_trips() {
        let prev = set_quicken_mode(QuickenMode::On);
        assert_eq!(quicken_mode(), QuickenMode::On);
        assert_eq!(set_quicken_mode(prev), QuickenMode::On);
    }

    #[test]
    fn mode_round_trips() {
        let prev = set_mode(VmMode::On);
        assert_eq!(mode(), VmMode::On);
        assert_eq!(set_mode(prev), VmMode::On);
    }

    #[test]
    fn cache_is_keyed_by_definition_identity() {
        let module = crate::parse("def f(a, b):\n    return a + b\n").unwrap();
        let def = match &module.body[0].kind {
            crate::ast::StmtKind::FuncDef(d) => Arc::clone(d),
            _ => unreachable!(),
        };
        let first = lookup_or_compile(&def).expect("simple function compiles");
        let second = lookup_or_compile(&def).expect("cache hit");
        assert!(Arc::ptr_eq(&first, &second), "one compilation is shared");
    }

    #[test]
    fn unsupported_functions_record_a_reason() {
        let module = crate::parse("def f():\n    import math\n    return 0\n").unwrap();
        let def = match &module.body[0].kind {
            crate::ast::StmtKind::FuncDef(d) => Arc::clone(d),
            _ => unreachable!(),
        };
        assert!(lookup_or_compile(&def).is_none());
        let reasons = fallback_reasons();
        assert!(
            reasons.iter().any(|(r, n)| *r == "import" && *n > 0),
            "import fallback recorded: {reasons:?}"
        );
    }
}
