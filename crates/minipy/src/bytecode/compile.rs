//! AST → bytecode lowering.
//!
//! Compilation is two passes over the (shared, immutable) function body:
//!
//! 1. **Scan** — reject constructs the VM does not execute (returning a
//!    [`FallbackReason`] so the caller tree-walks instead), assign register
//!    slots to every name the function assigns, record `global`/`nonlocal`
//!    declarations, and intern literal constants.
//! 2. **Emit** — lower statements to [`Op`]s. Temporaries are allocated with
//!    stack discipline above the locals; constants are referenced through a
//!    high-bit tag and rewritten to their final registers (above the highest
//!    temporary) once the temporary high-water mark is known.
//!
//! The compiler is deliberately conservative: anything whose tree-walker
//! semantics the VM cannot reproduce *exactly* (nested `def`, `lambda`,
//! `try`/`except`, imports, late `global` declarations, …) falls back, so
//! `OMP4RS_MINIPY_VM=auto` is always safe to leave on.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::*;
use crate::value::Value;

use super::opcode::{CompiledCode, Op, Reg, NO_KW};

/// Why a function is not VM-eligible (the tree-walker runs it instead).
///
/// Each variant's [`FallbackReason::as_str`] spelling is published as a
/// `minipy.vm.fallback.<reason>` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// A nested `def` (closures over VM locals are not representable).
    NestedDef,
    /// A `lambda` expression (same restriction as nested `def`).
    Lambda,
    /// `import` / `from … import` (mutates the frame dynamically).
    Import,
    /// `try` with `except` handlers or an `else` clause.
    TryExcept,
    /// `return` / `break` / `continue` lexically inside a `try` block.
    ControlFlowInTry,
    /// `global` / `nonlocal` not in leading position of the function body.
    LateDeclaration,
    /// A parameter also declared `global` / `nonlocal`.
    DeclaredParam,
    /// `del` of a `global` / `nonlocal`-declared name.
    DelDeclared,
    /// An assignment or `del` target shape the VM does not lower
    /// (e.g. attribute assignment).
    UnsupportedTarget,
    /// Register / constant / name-table demand exceeds the 15-bit encoding.
    TooLarge,
}

impl FallbackReason {
    /// Stable counter-suffix spelling of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::NestedDef => "nested-def",
            FallbackReason::Lambda => "lambda",
            FallbackReason::Import => "import",
            FallbackReason::TryExcept => "try-except",
            FallbackReason::ControlFlowInTry => "control-flow-in-try",
            FallbackReason::LateDeclaration => "late-declaration",
            FallbackReason::DeclaredParam => "declared-param",
            FallbackReason::DelDeclared => "del-declared",
            FallbackReason::UnsupportedTarget => "unsupported-target",
            FallbackReason::TooLarge => "too-large",
        }
    }
}

/// Constant registers are referenced through this tag during emission and
/// rewritten to concrete registers in [`Compiler::finalize`].
const CONST_TAG: u16 = 0x8000;
/// Hard ceiling on locals + temporaries + constants (15-bit register space).
const MAX_REGS: usize = 0x4000;

/// How a name binds inside the function being compiled.
#[derive(Clone, Copy, PartialEq)]
enum Binding {
    /// Assigned somewhere in the body: a local register slot.
    Local(u16),
    /// Declared `global`/`nonlocal`: reads/writes go through a bound cell.
    Cell(u16),
}

/// Interning key for the constant table (`f64` by bit pattern).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    None,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(String),
}

/// Compile one function definition to bytecode.
///
/// # Errors
///
/// Returns the first [`FallbackReason`] encountered; the caller must run the
/// function through the tree-walker.
pub fn compile_function(def: &Arc<FuncDef>) -> Result<Arc<CompiledCode>, FallbackReason> {
    let mut c = Compiler::new(def);
    c.scan()?;
    c.emit_body()?;
    c.finalize()
}

/// One `(global|nonlocal, name, cell slot, line)` leading declaration.
struct Decl {
    is_global: bool,
    name: String,
    cell: u16,
    line: u32,
}

struct Compiler<'a> {
    def: &'a FuncDef,

    // Scan results.
    bindings: HashMap<String, Binding>,
    local_names: Vec<String>,
    decls: Vec<Decl>,
    n_cells: u16,
    consts: Vec<Value>,
    const_map: HashMap<ConstKey, u16>,

    // Emission state.
    ops: Vec<Op>,
    lines: Vec<u32>,
    cur_line: u32,
    names: Vec<String>,
    name_map: HashMap<String, u16>,
    kw_tables: Vec<Vec<String>>,
    free_cells: HashMap<String, u16>,
    n_sites: u16,
    temp_sp: u16,
    max_temp: u16,
    loop_depth: u16,
    n_iters: u16,
    /// `(continue_target, break_patch_sites, iterator_slot)` per open loop.
    loops: Vec<(u32, Vec<usize>, Option<u16>)>,
}

impl<'a> Compiler<'a> {
    fn new(def: &'a FuncDef) -> Compiler<'a> {
        Compiler {
            def,
            bindings: HashMap::new(),
            local_names: Vec::new(),
            decls: Vec::new(),
            n_cells: 0,
            consts: Vec::new(),
            const_map: HashMap::new(),
            ops: Vec::new(),
            lines: Vec::new(),
            cur_line: def.line,
            names: Vec::new(),
            name_map: HashMap::new(),
            kw_tables: Vec::new(),
            free_cells: HashMap::new(),
            n_sites: 0,
            temp_sp: 0,
            max_temp: 0,
            loop_depth: 0,
            n_iters: 0,
            loops: Vec::new(),
        }
    }

    // ---- pass 1: scan ---------------------------------------------------

    /// Number of leading `global`/`nonlocal` statements (the only position
    /// the VM supports declarations in; they lower to prologue cell binds).
    fn leading_decls(def: &FuncDef) -> usize {
        def.body
            .iter()
            .take_while(|s| matches!(s.kind, StmtKind::Global(_) | StmtKind::Nonlocal(_)))
            .count()
    }

    fn scan(&mut self) -> Result<(), FallbackReason> {
        let def = self.def;
        // Leading `global`/`nonlocal` declarations bind cells; anywhere else
        // they would change binding kinds mid-function, which the slot model
        // cannot express — fall back (scan_stmt rejects late ones).
        for stmt in &def.body[..Self::leading_decls(def)] {
            let (is_global, names) = match &stmt.kind {
                StmtKind::Global(names) => (true, names),
                StmtKind::Nonlocal(names) => (false, names),
                _ => unreachable!("leading_decls only admits declarations"),
            };
            for name in names {
                if def.params.iter().any(|p| &p.name == name) {
                    return Err(FallbackReason::DeclaredParam);
                }
                let cell = match self.bindings.get(name) {
                    Some(Binding::Cell(c)) => *c,
                    _ => {
                        let c = self.n_cells;
                        self.n_cells += 1;
                        self.bindings.insert(name.clone(), Binding::Cell(c));
                        c
                    }
                };
                self.decls.push(Decl {
                    is_global,
                    name: name.clone(),
                    cell,
                    line: stmt.line,
                });
            }
        }
        for param in &def.params {
            self.add_local(&param.name);
        }
        for stmt in &def.body[Self::leading_decls(def)..] {
            self.scan_stmt(stmt, false)?;
        }
        Ok(())
    }

    fn add_local(&mut self, name: &str) -> u16 {
        match self.bindings.get(name) {
            Some(Binding::Local(s)) => *s,
            Some(Binding::Cell(_)) => u16::MAX, // declared: never a slot
            None => {
                let slot = self.local_names.len() as u16;
                self.local_names.push(name.to_owned());
                self.bindings.insert(name.to_owned(), Binding::Local(slot));
                slot
            }
        }
    }

    fn scan_stmt(&mut self, stmt: &Stmt, in_try: bool) -> Result<(), FallbackReason> {
        match &stmt.kind {
            StmtKind::Expr(e) => self.scan_expr(e),
            StmtKind::Assign { targets, value } => {
                self.scan_expr(value)?;
                for t in targets {
                    self.scan_target(t)?;
                }
                Ok(())
            }
            StmtKind::AugAssign { target, value, .. } => {
                self.scan_expr(value)?;
                match target {
                    Expr::Name(name) => {
                        self.add_local(name);
                        Ok(())
                    }
                    Expr::Index { value, index } => {
                        self.scan_expr(value)?;
                        self.scan_expr(index)
                    }
                    _ => Err(FallbackReason::UnsupportedTarget),
                }
            }
            StmtKind::If { test, body, orelse } => {
                self.scan_expr(test)?;
                self.scan_block(body, in_try)?;
                self.scan_block(orelse, in_try)
            }
            StmtKind::While { test, body } => {
                self.scan_expr(test)?;
                self.scan_block(body, in_try)
            }
            StmtKind::For { target, iter, body } => {
                self.scan_expr(iter)?;
                self.scan_target(target)?;
                self.scan_block(body, in_try)
            }
            StmtKind::FuncDef(_) => Err(FallbackReason::NestedDef),
            StmtKind::Return(v) => {
                if in_try {
                    return Err(FallbackReason::ControlFlowInTry);
                }
                if let Some(e) = v {
                    self.scan_expr(e)?;
                }
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => {
                if in_try {
                    return Err(FallbackReason::ControlFlowInTry);
                }
                Ok(())
            }
            StmtKind::Pass => Ok(()),
            StmtKind::Global(_) | StmtKind::Nonlocal(_) => Err(FallbackReason::LateDeclaration),
            StmtKind::With { items, body } => {
                for item in items {
                    self.scan_expr(&item.context)?;
                    if let Some(alias) = &item.alias {
                        self.add_local(alias);
                    }
                }
                self.scan_block(body, in_try)
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                if !handlers.is_empty() || !orelse.is_empty() {
                    return Err(FallbackReason::TryExcept);
                }
                self.scan_block(body, true)?;
                self.scan_block(finalbody, in_try)
            }
            StmtKind::Raise(v) => {
                if let Some(e) = v {
                    self.scan_expr(e)?;
                }
                Ok(())
            }
            StmtKind::Assert { test, msg } => {
                self.scan_expr(test)?;
                if let Some(m) = msg {
                    self.scan_expr(m)?;
                }
                Ok(())
            }
            StmtKind::Del(targets) => {
                for t in targets {
                    match t {
                        Expr::Name(name) => {
                            if matches!(self.bindings.get(name), Some(Binding::Cell(_))) {
                                return Err(FallbackReason::DelDeclared);
                            }
                            self.add_local(name);
                        }
                        Expr::Index { value, index } => {
                            self.scan_expr(value)?;
                            self.scan_expr(index)?;
                        }
                        _ => return Err(FallbackReason::UnsupportedTarget),
                    }
                }
                Ok(())
            }
            StmtKind::Import { .. } | StmtKind::FromImport { .. } => Err(FallbackReason::Import),
        }
    }

    fn scan_block(&mut self, body: &[Stmt], in_try: bool) -> Result<(), FallbackReason> {
        for stmt in body {
            self.scan_stmt(stmt, in_try)?;
        }
        Ok(())
    }

    fn scan_target(&mut self, target: &Expr) -> Result<(), FallbackReason> {
        match target {
            Expr::Name(name) => {
                self.add_local(name);
                Ok(())
            }
            Expr::Tuple(items) | Expr::List(items) => {
                for item in items {
                    self.scan_target(item)?;
                }
                Ok(())
            }
            Expr::Index { value, index } => {
                self.scan_expr(value)?;
                self.scan_expr(index)
            }
            _ => Err(FallbackReason::UnsupportedTarget),
        }
    }

    fn scan_expr(&mut self, expr: &Expr) -> Result<(), FallbackReason> {
        match expr {
            Expr::Int(v) => {
                self.intern(ConstKey::Int(*v), || Value::Int(*v));
                Ok(())
            }
            Expr::Float(v) => {
                self.intern(ConstKey::Float(v.to_bits()), || Value::Float(*v));
                Ok(())
            }
            Expr::Str(s) => {
                self.intern(ConstKey::Str(s.clone()), || Value::str(s.clone()));
                Ok(())
            }
            Expr::Bool(b) => {
                self.intern(ConstKey::Bool(*b), || Value::Bool(*b));
                Ok(())
            }
            Expr::None => {
                self.intern(ConstKey::None, || Value::None);
                Ok(())
            }
            Expr::Name(_) => Ok(()),
            Expr::Binary { left, right, .. } => {
                self.scan_expr(left)?;
                self.scan_expr(right)
            }
            Expr::Unary { operand, .. } => self.scan_expr(operand),
            Expr::BoolOp { values, .. } => {
                for v in values {
                    self.scan_expr(v)?;
                }
                Ok(())
            }
            Expr::Compare {
                left, comparators, ..
            } => {
                self.scan_expr(left)?;
                for c in comparators {
                    self.scan_expr(c)?;
                }
                Ok(())
            }
            Expr::Call { func, args, kwargs } => {
                // The callee of an attribute call is dispatched specially at
                // emit time; its base is still an ordinary expression.
                match &**func {
                    Expr::Attribute { value, .. } => self.scan_expr(value)?,
                    other => self.scan_expr(other)?,
                }
                for a in args {
                    self.scan_expr(a)?;
                }
                for (_, v) in kwargs {
                    self.scan_expr(v)?;
                }
                Ok(())
            }
            Expr::Attribute { value, .. } => self.scan_expr(value),
            Expr::Index { value, index } => {
                self.scan_expr(value)?;
                self.scan_expr(index)
            }
            Expr::Slice { lower, upper, step } => {
                for bound in [lower, upper, step] {
                    match bound {
                        Some(e) => self.scan_expr(e)?,
                        None => {
                            self.intern(ConstKey::None, || Value::None);
                        }
                    }
                }
                Ok(())
            }
            Expr::List(items) | Expr::Tuple(items) => {
                for item in items {
                    self.scan_expr(item)?;
                }
                Ok(())
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    self.scan_expr(k)?;
                    self.scan_expr(v)?;
                }
                Ok(())
            }
            Expr::IfExp { test, body, orelse } => {
                self.scan_expr(test)?;
                self.scan_expr(body)?;
                self.scan_expr(orelse)
            }
            Expr::Lambda { .. } => Err(FallbackReason::Lambda),
        }
    }

    fn intern(&mut self, key: ConstKey, make: impl FnOnce() -> Value) -> u16 {
        if let Some(idx) = self.const_map.get(&key) {
            return *idx;
        }
        let idx = self.consts.len() as u16;
        self.consts.push(make());
        self.const_map.insert(key, idx);
        idx
    }

    // ---- pass 2: emit ---------------------------------------------------

    fn n_locals(&self) -> u16 {
        self.local_names.len() as u16
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.lines.push(self.cur_line);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump { target: t }
            | Op::JumpIfFalse { target: t, .. }
            | Op::JumpIfTrue { target: t, .. }
            | Op::IterNext { exit: t, .. }
            | Op::SetupFinally { target: t } => *t = target,
            other => unreachable!("patch target is not a jump: {other:?}"),
        }
    }

    fn push_temp(&mut self) -> Result<Reg, FallbackReason> {
        let reg = self.n_locals() + self.temp_sp;
        self.temp_sp += 1;
        self.max_temp = self.max_temp.max(self.temp_sp);
        if (reg as usize) + self.consts.len() >= MAX_REGS {
            return Err(FallbackReason::TooLarge);
        }
        Ok(reg)
    }

    fn name_idx(&mut self, name: &str) -> u16 {
        if let Some(i) = self.name_map.get(name) {
            return *i;
        }
        let i = self.names.len() as u16;
        self.names.push(name.to_owned());
        self.name_map.insert(name.to_owned(), i);
        i
    }

    /// The cell-cache slot for a free (never-assigned, undeclared) name.
    fn free_cell(&mut self, name: &str) -> u16 {
        if let Some(c) = self.free_cells.get(name) {
            return *c;
        }
        let c = self.n_cells;
        self.n_cells += 1;
        self.free_cells.insert(name.to_owned(), c);
        c
    }

    fn emit_body(&mut self) -> Result<(), FallbackReason> {
        // Prologue: bind declared cells in declaration order.
        let decls = std::mem::take(&mut self.decls);
        for d in &decls {
            self.cur_line = if d.line > 0 { d.line } else { self.def.line };
            let name = self.name_idx(&d.name);
            if d.is_global {
                self.emit(Op::BindGlobal { cell: d.cell, name });
            } else {
                self.emit(Op::BindNonlocal { cell: d.cell, name });
            }
        }
        self.decls = decls;
        // Skip the leading declarations already lowered above.
        let def = self.def;
        self.block(&def.body[Self::leading_decls(def)..])?;
        self.emit(Op::ReturnNone);
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), FallbackReason> {
        for stmt in stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), FallbackReason> {
        let saved_line = self.cur_line;
        if stmt.line > 0 {
            self.cur_line = stmt.line;
        }
        let saved_sp = self.temp_sp;
        let result = self.stmt_inner(stmt);
        self.temp_sp = saved_sp;
        self.cur_line = saved_line;
        result
    }

    fn stmt_inner(&mut self, stmt: &Stmt) -> Result<(), FallbackReason> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let t = self.push_temp()?;
                self.expr(e, t)
            }
            StmtKind::Assign { targets, value } => {
                // Single local-name target: evaluate straight into the slot
                // (expr() guarantees the slot is written exactly once, as its
                // last action, so a mid-expression error leaves it untouched).
                if let [Expr::Name(name)] = targets.as_slice() {
                    if let Some(Binding::Local(slot)) = self.bindings.get(name).copied() {
                        return self.expr(value, slot);
                    }
                }
                let t = self.push_temp()?;
                self.expr(value, t)?;
                for target in targets {
                    self.assign_to(target, t)?;
                }
                Ok(())
            }
            StmtKind::AugAssign { target, op, value } => {
                // Tree-walker order: RHS first, then the target.
                let src = self.operand(value)?;
                match target {
                    Expr::Name(name) => match self.bindings.get(name).copied() {
                        Some(Binding::Local(slot)) => {
                            self.emit(Op::AugLocal { op: *op, slot, src });
                            Ok(())
                        }
                        Some(Binding::Cell(cell)) => {
                            self.emit(Op::AugCell { op: *op, cell, src });
                            Ok(())
                        }
                        None => unreachable!("scan allocated a slot for aug target"),
                    },
                    Expr::Index { value: obj, index } => {
                        let o = self.operand(obj)?;
                        let i = self.operand(index)?;
                        let old = self.push_temp()?;
                        self.emit(Op::GetItem {
                            dst: old,
                            obj: o,
                            idx: i,
                        });
                        self.emit(Op::Binary {
                            op: *op,
                            dst: old,
                            l: old,
                            r: src,
                        });
                        self.emit(Op::SetItem {
                            obj: o,
                            idx: i,
                            src: old,
                        });
                        Ok(())
                    }
                    _ => unreachable!("scan rejected other aug targets"),
                }
            }
            StmtKind::If { test, body, orelse } => {
                let cond = self.operand(test)?;
                let jf = self.emit(Op::JumpIfFalse { cond, target: 0 });
                self.block(body)?;
                if orelse.is_empty() {
                    let end = self.here();
                    self.patch(jf, end);
                } else {
                    let je = self.emit(Op::Jump { target: 0 });
                    let l_else = self.here();
                    self.patch(jf, l_else);
                    self.block(orelse)?;
                    let end = self.here();
                    self.patch(je, end);
                }
                Ok(())
            }
            StmtKind::While { test, body } => {
                let top = self.here();
                let saved_sp = self.temp_sp;
                let cond = self.operand(test)?;
                let jf = self.emit(Op::JumpIfFalse { cond, target: 0 });
                self.temp_sp = saved_sp;
                self.loops.push((top, Vec::new(), None));
                self.block(body)?;
                self.emit(Op::Jump { target: top });
                let exit = self.here();
                self.patch(jf, exit);
                let (_, breaks, _) = self.loops.pop().expect("loop stack");
                for b in breaks {
                    self.patch(b, exit);
                }
                Ok(())
            }
            StmtKind::For { target, iter, body } => {
                let iter_slot = self.loop_depth;
                self.n_iters = self.n_iters.max(iter_slot + 1);
                let src = self.operand(iter)?;
                self.emit(Op::IterNew {
                    iter: iter_slot,
                    src,
                });
                let top = self.here();
                let saved_sp = self.temp_sp;
                // A plain local-name target receives the item directly.
                let direct = match target {
                    Expr::Name(name) => match self.bindings.get(name).copied() {
                        Some(Binding::Local(slot)) => Some(slot),
                        _ => None,
                    },
                    _ => None,
                };
                let (dst, next) = match direct {
                    Some(slot) => {
                        let next = self.emit(Op::IterNext {
                            iter: iter_slot,
                            dst: slot,
                            exit: 0,
                        });
                        (None, next)
                    }
                    None => {
                        let t = self.push_temp()?;
                        let next = self.emit(Op::IterNext {
                            iter: iter_slot,
                            dst: t,
                            exit: 0,
                        });
                        (Some(t), next)
                    }
                };
                if let Some(t) = dst {
                    self.assign_to(target, t)?;
                }
                self.temp_sp = saved_sp;
                self.loops.push((top, Vec::new(), Some(iter_slot)));
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                self.emit(Op::Jump { target: top });
                let exit = self.here();
                self.patch(next, exit);
                let (_, breaks, _) = self.loops.pop().expect("loop stack");
                for b in breaks {
                    self.patch(b, exit);
                }
                Ok(())
            }
            StmtKind::Return(value) => {
                match value {
                    Some(e) => {
                        let src = self.operand(e)?;
                        self.emit(Op::Return { src });
                    }
                    None => {
                        self.emit(Op::ReturnNone);
                    }
                }
                Ok(())
            }
            StmtKind::Break => {
                let (_, _, iter_slot) = *self.loops.last().expect("scan verified loop context");
                if let Some(slot) = iter_slot {
                    self.emit(Op::IterClear { iter: slot });
                }
                let j = self.emit(Op::Jump { target: 0 });
                self.loops.last_mut().expect("loop stack").1.push(j);
                Ok(())
            }
            StmtKind::Continue => {
                let (top, _, _) = *self.loops.last().expect("scan verified loop context");
                self.emit(Op::Jump { target: top });
                Ok(())
            }
            StmtKind::Pass => Ok(()),
            StmtKind::Global(_) | StmtKind::Nonlocal(_) => {
                unreachable!("leading declarations lowered in prologue; late ones rejected")
            }
            StmtKind::With { items, body } => {
                for item in items {
                    let saved = self.temp_sp;
                    let t = self.push_temp()?;
                    self.expr(&item.context, t)?;
                    if let Some(alias) = &item.alias {
                        self.assign_to(&Expr::Name(alias.clone()), t)?;
                    }
                    self.temp_sp = saved;
                }
                self.block(body)
            }
            StmtKind::Try {
                body, finalbody, ..
            } => {
                if finalbody.is_empty() {
                    // `try:` with nothing but a body (no handlers — scan
                    // rejected those) degenerates to the body.
                    return self.block(body);
                }
                let setup = self.emit(Op::SetupFinally { target: 0 });
                self.block(body)?;
                self.emit(Op::PopBlock);
                // Normal path: run the finally body inline, skip the
                // error-path copy.
                self.block(finalbody)?;
                let done = self.emit(Op::Jump { target: 0 });
                let l_err = self.here();
                self.patch(setup, l_err);
                // Error path: same finally body, then re-raise the pending
                // exception (a fresh error inside the body replaces it, as
                // the tree-walker's finalbody result replacement does).
                self.block(finalbody)?;
                self.emit(Op::Reraise);
                let end = self.here();
                self.patch(done, end);
                Ok(())
            }
            StmtKind::Raise(value) => {
                match value {
                    Some(e) => {
                        let src = self.operand(e)?;
                        self.emit(Op::Raise { src });
                    }
                    None => {
                        self.emit(Op::RaiseBare);
                    }
                }
                Ok(())
            }
            StmtKind::Assert { test, msg } => {
                let cond = self.operand(test)?;
                let jt = self.emit(Op::JumpIfTrue { cond, target: 0 });
                // The message is evaluated only on failure.
                let msg_reg = match msg {
                    Some(m) => self.operand(m)?,
                    None => NO_KW,
                };
                self.emit(Op::AssertFail { msg: msg_reg });
                let end = self.here();
                self.patch(jt, end);
                Ok(())
            }
            StmtKind::Del(targets) => {
                for target in targets {
                    match target {
                        Expr::Name(name) => match self.bindings.get(name).copied() {
                            Some(Binding::Local(slot)) => {
                                self.emit(Op::DelLocal { slot });
                            }
                            _ => unreachable!("scan allocated slots for del names"),
                        },
                        Expr::Index { value, index } => {
                            let obj = self.operand(value)?;
                            let idx = self.operand(index)?;
                            self.emit(Op::DelItem { obj, idx });
                        }
                        _ => unreachable!("scan rejected other del targets"),
                    }
                }
                Ok(())
            }
            StmtKind::FuncDef(_) | StmtKind::Import { .. } | StmtKind::FromImport { .. } => {
                unreachable!("scan rejected this statement kind")
            }
        }
    }

    fn assign_to(&mut self, target: &Expr, src: Reg) -> Result<(), FallbackReason> {
        match target {
            Expr::Name(name) => match self.bindings.get(name).copied() {
                Some(Binding::Local(slot)) => {
                    if slot != src {
                        self.emit(Op::Copy { dst: slot, src });
                    }
                    Ok(())
                }
                Some(Binding::Cell(cell)) => {
                    self.emit(Op::StoreCell { cell, src });
                    Ok(())
                }
                None => unreachable!("scan allocated slots for assigned names"),
            },
            Expr::Tuple(items) | Expr::List(items) => {
                let saved = self.temp_sp;
                let base = self.n_locals() + self.temp_sp;
                for _ in items {
                    self.push_temp()?;
                }
                self.emit(Op::UnpackSeq {
                    base,
                    n: items.len() as u16,
                    src,
                });
                for (i, item) in items.iter().enumerate() {
                    self.assign_to(item, base + i as u16)?;
                }
                self.temp_sp = saved;
                Ok(())
            }
            Expr::Index { value, index } => {
                let saved = self.temp_sp;
                let obj = self.operand(value)?;
                let idx = self.operand(index)?;
                self.emit(Op::SetItem { obj, idx, src });
                self.temp_sp = saved;
                Ok(())
            }
            _ => unreachable!("scan rejected other assignment targets"),
        }
    }

    /// Place an expression's value in a register with minimal copying:
    /// literals and local names map to existing registers with no code.
    fn operand(&mut self, expr: &Expr) -> Result<Reg, FallbackReason> {
        match expr {
            Expr::Int(v) => Ok(CONST_TAG | self.intern(ConstKey::Int(*v), || Value::Int(*v))),
            Expr::Float(v) => {
                Ok(CONST_TAG | self.intern(ConstKey::Float(v.to_bits()), || Value::Float(*v)))
            }
            Expr::Str(s) => {
                Ok(CONST_TAG | self.intern(ConstKey::Str(s.clone()), || Value::str(s.clone())))
            }
            Expr::Bool(b) => Ok(CONST_TAG | self.intern(ConstKey::Bool(*b), || Value::Bool(*b))),
            Expr::None => Ok(CONST_TAG | self.intern(ConstKey::None, || Value::None)),
            Expr::Name(name) => match self.bindings.get(name).copied() {
                Some(Binding::Local(slot)) => Ok(slot),
                _ => {
                    let t = self.push_temp()?;
                    self.expr(expr, t)?;
                    Ok(t)
                }
            },
            _ => {
                let t = self.push_temp()?;
                self.expr(expr, t)?;
                Ok(t)
            }
        }
    }

    /// Compile `expr` so that `dst` is written exactly once, as the final
    /// action (so an error mid-expression leaves `dst` untouched, and `dst`
    /// may alias a register the expression itself reads).
    fn expr(&mut self, expr: &Expr, dst: Reg) -> Result<(), FallbackReason> {
        let saved_sp = self.temp_sp;
        self.expr_inner(expr, dst)?;
        self.temp_sp = saved_sp;
        Ok(())
    }

    /// Whether `dst` is a scratch register the program cannot observe
    /// mid-expression (multi-write lowerings are only safe there).
    fn is_scratch(&self, dst: Reg) -> bool {
        dst >= self.n_locals() && dst & CONST_TAG == 0
    }

    fn expr_inner(&mut self, expr: &Expr, dst: Reg) -> Result<(), FallbackReason> {
        match expr {
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::None => {
                let src = self.operand(expr)?;
                self.emit(Op::Copy { dst, src });
                Ok(())
            }
            Expr::Name(name) => match self.bindings.get(name).copied() {
                Some(Binding::Local(slot)) => {
                    self.emit(Op::Copy { dst, src: slot });
                    Ok(())
                }
                Some(Binding::Cell(cell)) => {
                    self.emit(Op::LoadCell { dst, cell });
                    Ok(())
                }
                None => {
                    let cell = self.free_cell(name);
                    let name = self.name_idx(name);
                    self.emit(Op::LoadFree { dst, cell, name });
                    Ok(())
                }
            },
            Expr::Binary { op, left, right } => {
                let l = self.operand(left)?;
                let r = self.operand(right)?;
                self.emit(Op::Binary { op: *op, dst, l, r });
                Ok(())
            }
            Expr::Unary { op, operand } => {
                let s = self.operand(operand)?;
                self.emit(Op::Unary { op: *op, dst, s });
                Ok(())
            }
            Expr::BoolOp { op, values } => {
                // Multi-write lowering: route through a scratch register when
                // dst could be read by a later value expression.
                if !self.is_scratch(dst) {
                    let t = self.push_temp()?;
                    self.expr_inner(expr, t)?;
                    self.emit(Op::Copy { dst, src: t });
                    return Ok(());
                }
                let mut exits = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    let saved = self.temp_sp;
                    self.expr_inner(v, dst)?;
                    self.temp_sp = saved;
                    if i + 1 < values.len() {
                        let j = match op {
                            BoolOpKind::And => self.emit(Op::JumpIfFalse {
                                cond: dst,
                                target: 0,
                            }),
                            BoolOpKind::Or => self.emit(Op::JumpIfTrue {
                                cond: dst,
                                target: 0,
                            }),
                        };
                        exits.push(j);
                    }
                }
                let end = self.here();
                for j in exits {
                    self.patch(j, end);
                }
                Ok(())
            }
            Expr::Compare {
                left,
                ops,
                comparators,
            } => {
                if ops.len() == 1 {
                    let l = self.operand(left)?;
                    let r = self.operand(&comparators[0])?;
                    self.emit(Op::Compare {
                        op: ops[0],
                        dst,
                        l,
                        r,
                    });
                    return Ok(());
                }
                // Chained comparison: multi-write, needs a scratch dst.
                if !self.is_scratch(dst) {
                    let t = self.push_temp()?;
                    self.expr_inner(expr, t)?;
                    self.emit(Op::Copy { dst, src: t });
                    return Ok(());
                }
                let mut lhs = self.operand(left)?;
                let mut exits = Vec::new();
                for (i, (op, comp)) in ops.iter().zip(comparators).enumerate() {
                    let rhs = self.operand(comp)?;
                    self.emit(Op::Compare {
                        op: *op,
                        dst,
                        l: lhs,
                        r: rhs,
                    });
                    if i + 1 < ops.len() {
                        exits.push(self.emit(Op::JumpIfFalse {
                            cond: dst,
                            target: 0,
                        }));
                    }
                    lhs = rhs;
                }
                let end = self.here();
                for j in exits {
                    self.patch(j, end);
                }
                Ok(())
            }
            Expr::Call { func, args, kwargs } => self.call(func, args, kwargs, dst),
            Expr::Attribute { value, attr } => {
                let obj = self.operand(value)?;
                let attr = self.name_idx(attr);
                self.emit(Op::GetAttr { dst, obj, attr });
                Ok(())
            }
            Expr::Index { value, index } => {
                let obj = self.operand(value)?;
                let idx = self.operand(index)?;
                self.emit(Op::GetItem { dst, obj, idx });
                Ok(())
            }
            Expr::Slice { lower, upper, step } => {
                let none = CONST_TAG | self.intern(ConstKey::None, || Value::None);
                let l = match lower {
                    Some(e) => self.operand(e)?,
                    None => none,
                };
                let u = match upper {
                    Some(e) => self.operand(e)?,
                    None => none,
                };
                let s = match step {
                    Some(e) => self.operand(e)?,
                    None => none,
                };
                self.emit(Op::BuildSlice { dst, l, u, s });
                Ok(())
            }
            Expr::List(items) => {
                let base = self.eval_seq(items)?;
                self.emit(Op::BuildList {
                    dst,
                    base,
                    n: items.len() as u16,
                });
                Ok(())
            }
            Expr::Tuple(items) => {
                let base = self.eval_seq(items)?;
                self.emit(Op::BuildTuple {
                    dst,
                    base,
                    n: items.len() as u16,
                });
                Ok(())
            }
            Expr::Dict(pairs) => {
                let base = self.n_locals() + self.temp_sp;
                for (k, v) in pairs {
                    let tk = self.push_temp()?;
                    self.expr(k, tk)?;
                    let tv = self.push_temp()?;
                    self.expr(v, tv)?;
                }
                self.emit(Op::BuildDict {
                    dst,
                    base,
                    n: pairs.len() as u16,
                });
                Ok(())
            }
            Expr::IfExp { test, body, orelse } => {
                let saved = self.temp_sp;
                let cond = self.operand(test)?;
                let jf = self.emit(Op::JumpIfFalse { cond, target: 0 });
                self.temp_sp = saved;
                self.expr_inner(body, dst)?;
                self.temp_sp = saved;
                let je = self.emit(Op::Jump { target: 0 });
                let l_else = self.here();
                self.patch(jf, l_else);
                self.expr_inner(orelse, dst)?;
                self.temp_sp = saved;
                let end = self.here();
                self.patch(je, end);
                Ok(())
            }
            Expr::Lambda { .. } => unreachable!("scan rejected lambdas"),
        }
    }

    /// Evaluate expressions into consecutive fresh temporaries; returns the
    /// base register.
    fn eval_seq(&mut self, items: &[Expr]) -> Result<Reg, FallbackReason> {
        let base = self.n_locals() + self.temp_sp;
        for item in items {
            let t = self.push_temp()?;
            self.expr(item, t)?;
        }
        Ok(base)
    }

    fn call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        dst: Reg,
    ) -> Result<(), FallbackReason> {
        // Tree-walker evaluation order: all arguments first (positional then
        // keyword), then the callee / receiver.
        if let Expr::Attribute { value, attr } = func {
            if let Expr::Name(base) = &**value {
                if kwargs.is_empty() && !self.bindings.contains_key(base.as_str()) {
                    // Free-name receiver (`__omp.for_next(…)`, `math.sqrt(…)`):
                    // dedicated opcode with a per-frame callable cache.
                    let argbase = self.eval_seq(args)?;
                    let site = self.n_sites;
                    self.n_sites += 1;
                    let base = self.name_idx(base);
                    let attr = self.name_idx(attr);
                    self.emit(Op::CallIntrinsic {
                        dst,
                        site,
                        base,
                        attr,
                        argbase,
                        argc: args.len() as u16,
                    });
                    return Ok(());
                }
            }
            let (argbase, kw) = self.eval_args(args, kwargs)?;
            let obj = self.operand(value)?;
            let attr = self.name_idx(attr);
            // Method calls get an inline-cache slot like intrinsics: the
            // quickening tier caches the receiver-type dispatch there.
            let site = self.n_sites;
            self.n_sites += 1;
            self.emit(Op::CallMethod {
                dst,
                site,
                obj,
                attr,
                argbase,
                argc: args.len() as u16,
                kw,
            });
            return Ok(());
        }
        let (argbase, kw) = self.eval_args(args, kwargs)?;
        let f = self.operand(func)?;
        self.emit(Op::Call {
            dst,
            func: f,
            argbase,
            argc: args.len() as u16,
            kw,
        });
        Ok(())
    }

    fn eval_args(
        &mut self,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<(Reg, u16), FallbackReason> {
        let base = self.n_locals() + self.temp_sp;
        for a in args {
            let t = self.push_temp()?;
            self.expr(a, t)?;
        }
        let kw = if kwargs.is_empty() {
            NO_KW
        } else {
            for (_, v) in kwargs {
                let t = self.push_temp()?;
                self.expr(v, t)?;
            }
            let names: Vec<String> = kwargs.iter().map(|(k, _)| k.clone()).collect();
            self.kw_tables.push(names);
            (self.kw_tables.len() - 1) as u16
        };
        Ok((base, kw))
    }

    // ---- finalize -------------------------------------------------------

    fn finalize(mut self) -> Result<Arc<CompiledCode>, FallbackReason> {
        let n_locals = self.n_locals();
        let const_base = n_locals + self.max_temp;
        let n_regs = const_base as usize + self.consts.len();
        if n_regs >= MAX_REGS || self.names.len() >= u16::MAX as usize {
            return Err(FallbackReason::TooLarge);
        }
        let fix = |r: Reg| -> Reg {
            if r != NO_KW && r & CONST_TAG != 0 {
                const_base + (r & !CONST_TAG)
            } else {
                r
            }
        };
        for op in &mut self.ops {
            match op {
                Op::Copy { src, .. } => *src = fix(*src),
                Op::Binary { l, r, .. } | Op::Compare { l, r, .. } => {
                    *l = fix(*l);
                    *r = fix(*r);
                }
                Op::AugLocal { src, .. }
                | Op::AugCell { src, .. }
                | Op::StoreCell { src, .. }
                | Op::Raise { src }
                | Op::Return { src }
                | Op::UnpackSeq { src, .. }
                | Op::IterNew { src, .. } => *src = fix(*src),
                Op::Unary { s, .. } => *s = fix(*s),
                Op::JumpIfFalse { cond, .. } | Op::JumpIfTrue { cond, .. } => *cond = fix(*cond),
                Op::Call { func, .. } => *func = fix(*func),
                Op::CallMethod { obj, .. } | Op::GetAttr { obj, .. } => *obj = fix(*obj),
                Op::GetItem { obj, idx, .. } | Op::DelItem { obj, idx } => {
                    *obj = fix(*obj);
                    *idx = fix(*idx);
                }
                Op::SetItem { obj, idx, src } => {
                    *obj = fix(*obj);
                    *idx = fix(*idx);
                    *src = fix(*src);
                }
                Op::BuildSlice { l, u, s, .. } => {
                    *l = fix(*l);
                    *u = fix(*u);
                    *s = fix(*s);
                }
                Op::AssertFail { msg } => *msg = fix(*msg),
                Op::BindNonlocal { .. }
                | Op::BindGlobal { .. }
                | Op::LoadCell { .. }
                | Op::LoadFree { .. }
                | Op::Jump { .. }
                | Op::CallIntrinsic { .. }
                | Op::BuildList { .. }
                | Op::BuildTuple { .. }
                | Op::BuildDict { .. }
                | Op::IterNext { .. }
                | Op::IterClear { .. }
                | Op::SetupFinally { .. }
                | Op::PopBlock
                | Op::Reraise
                | Op::RaiseBare
                | Op::DelLocal { .. }
                | Op::ReturnNone => {}
            }
        }
        let param_slots = self
            .def
            .params
            .iter()
            .map(|p| match self.bindings.get(&p.name) {
                Some(Binding::Local(s)) => *s,
                _ => unreachable!("params are locals"),
            })
            .collect();
        let quick = (0..self.ops.len())
            .map(|_| std::sync::atomic::AtomicU8::new(0))
            .collect();
        // Fused-loop eligibility: an `IterNext` whose body is straight-line
        // register-only numeric work closed by its own back-edge can run
        // whole iterations in one quickened handler (`quick::FUSED_RANGE`).
        // Any control flow, call, cell store, or container build in the body
        // disqualifies the loop (those ops need per-op dispatch semantics —
        // ticks, materialization, unwind targets). Encoded as body length
        // plus one; 0 = ineligible.
        use super::opcode::FUSED_MAX_BODY;
        let fused = (0..self.ops.len())
            .map(|pc| {
                if !matches!(self.ops[pc], Op::IterNext { .. }) {
                    return 0;
                }
                let mut k = pc + 1;
                while k < self.ops.len() && k - pc <= FUSED_MAX_BODY {
                    match &self.ops[k] {
                        Op::Binary { .. }
                        | Op::AugLocal { .. }
                        | Op::Copy { .. }
                        | Op::LoadFree { .. } => k += 1,
                        Op::Jump { target } if *target as usize == pc => {
                            return (k - pc) as u16;
                        }
                        _ => return 0,
                    }
                }
                0
            })
            .collect();
        Ok(Arc::new(CompiledCode {
            name: self.def.name.clone(),
            ops: self.ops,
            quick,
            fused,
            lines: self.lines,
            consts: self.consts,
            names: self.names,
            kw_tables: self.kw_tables,
            n_locals,
            const_base,
            n_regs: n_regs as u16,
            n_cells: self.n_cells,
            n_iters: self.n_iters,
            n_sites: self.n_sites,
            local_names: self.local_names,
            param_slots,
        }))
    }
}
