//! Method dispatch for built-in types (`list.append`, `str.split`, …).

use std::sync::Arc;

use crate::builtins::sort_values;
use crate::error::{type_err, value_err, ErrKind, PyErr};
use crate::interp::{Interp, ValueIter};
use crate::value::{Args, HKey, Value};

/// Call `obj.method(args)` for a built-in receiver type.
///
/// # Errors
///
/// `AttributeError` for unknown methods and `TypeError` for bad arguments.
pub fn call_method(interp: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    match obj {
        Value::List(_) => list_method(interp, obj, method, args),
        Value::Str(s) => str_method(s, method, args),
        Value::Dict(_) => dict_method(obj, method, args),
        Value::Tuple(t) => tuple_method(t, method, args),
        Value::Float(f) => float_method(*f, method, args),
        Value::Opaque(o) => o.call_method(interp, method, args.pos),
        other => Err(PyErr::new(
            ErrKind::Attribute,
            format!(
                "'{}' object has no attribute '{}'",
                other.type_name(),
                method
            ),
        )),
    }
}

/// Receiver-type tag guarding the VM's method inline caches: a cached
/// dispatch entry is valid only while the receiver register keeps producing
/// the same built-in type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeTag {
    /// `Value::List` receivers.
    List,
    /// `Value::Str` receivers.
    Str,
    /// `Value::Dict` receivers.
    Dict,
    /// `Value::Tuple` receivers.
    Tuple,
    /// `Value::Float` receivers.
    Float,
}

/// A cached per-type method dispatch function. The method name is still
/// validated by the per-type table on every call (so a cache hit cannot
/// change which `AttributeError`/`TypeError` is raised); what the cache
/// removes is the receiver-type dispatch of [`call_method`].
pub type MethodFn = fn(&Interp, &Value, &str, Args) -> Result<Value, PyErr>;

/// Resolve a receiver to its method-dispatch entry for the VM inline cache.
///
/// `None` for receivers whose dispatch is not cacheable: opaque objects
/// (their attribute table is dynamic) and types with no methods at all
/// (which raise `AttributeError` through [`call_method`]).
pub fn resolve_dispatch(obj: &Value) -> Option<(TypeTag, MethodFn)> {
    Some(match obj {
        Value::List(_) => (TypeTag::List, list_method),
        Value::Str(_) => (TypeTag::Str, dispatch_str),
        Value::Dict(_) => (TypeTag::Dict, dispatch_dict),
        Value::Tuple(_) => (TypeTag::Tuple, dispatch_tuple),
        Value::Float(_) => (TypeTag::Float, dispatch_float),
        _ => return None,
    })
}

fn dispatch_str(_: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    match obj {
        Value::Str(s) => str_method(s, method, args),
        _ => unreachable!("IC tag guard matched str"),
    }
}

fn dispatch_dict(_: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    dict_method(obj, method, args)
}

fn dispatch_tuple(_: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    match obj {
        Value::Tuple(t) => tuple_method(t, method, args),
        _ => unreachable!("IC tag guard matched tuple"),
    }
}

fn dispatch_float(_: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    match obj {
        Value::Float(f) => float_method(*f, method, args),
        _ => unreachable!("IC tag guard matched float"),
    }
}

fn attr_err(type_name: &str, method: &str) -> PyErr {
    PyErr::new(
        ErrKind::Attribute,
        format!("'{type_name}' object has no attribute '{method}'"),
    )
}

fn list_method(interp: &Interp, obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    let list = match obj {
        Value::List(l) => l,
        _ => unreachable!("caller matched list"),
    };
    match method {
        "append" => {
            args.expect_len(1, "append")?;
            list.write()
                .push(args.pos.into_iter().next().expect("len checked"));
            Ok(Value::None)
        }
        "extend" => {
            args.expect_len(1, "extend")?;
            let items = ValueIter::new(args.req(0)?)?.collect_vec();
            list.write().extend(items);
            Ok(Value::None)
        }
        "pop" => {
            let mut items = list.write();
            if items.is_empty() {
                return Err(PyErr::new(ErrKind::Index, "pop from empty list"));
            }
            let idx = match args.opt(0) {
                Some(v) => {
                    let i = v.as_int()?;
                    let len = items.len() as i64;
                    let i = if i < 0 { i + len } else { i };
                    if i < 0 || i >= len {
                        return Err(PyErr::new(ErrKind::Index, "pop index out of range"));
                    }
                    i as usize
                }
                None => items.len() - 1,
            };
            Ok(items.remove(idx))
        }
        "insert" => {
            args.expect_len(2, "insert")?;
            let mut items = list.write();
            let len = items.len() as i64;
            let i = args.req(0)?.as_int()?.clamp(-len, len);
            let i = if i < 0 {
                (i + len) as usize
            } else {
                i as usize
            };
            items.insert(i, args.req(1)?.clone());
            Ok(Value::None)
        }
        "sort" => {
            // Copy out, sort, write back: the key function may run interpreted
            // code, which must not execute while the list lock is held.
            let mut items = list.read().clone();
            let reverse = args.kwarg("reverse").map(Value::truthy).unwrap_or(false);
            sort_values(interp, &mut items, args.kwarg("key"), reverse)?;
            *list.write() = items;
            Ok(Value::None)
        }
        "reverse" => {
            list.write().reverse();
            Ok(Value::None)
        }
        "clear" => {
            list.write().clear();
            Ok(Value::None)
        }
        "index" => {
            args.expect_len(1, "index")?;
            let needle = args.req(0)?;
            let items = list.read();
            items
                .iter()
                .position(|v| v.py_eq(needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| value_err(format!("{} is not in list", needle.repr())))
        }
        "count" => {
            args.expect_len(1, "count")?;
            let needle = args.req(0)?;
            Ok(Value::Int(
                list.read().iter().filter(|v| v.py_eq(needle)).count() as i64,
            ))
        }
        "copy" => Ok(Value::list(list.read().clone())),
        "remove" => {
            args.expect_len(1, "remove")?;
            let needle = args.req(0)?;
            let mut items = list.write();
            match items.iter().position(|v| v.py_eq(needle)) {
                Some(i) => {
                    items.remove(i);
                    Ok(Value::None)
                }
                None => Err(value_err("list.remove(x): x not in list")),
            }
        }
        _ => Err(attr_err("list", method)),
    }
}

fn dict_method(obj: &Value, method: &str, args: Args) -> Result<Value, PyErr> {
    let dict = match obj {
        Value::Dict(d) => d,
        _ => unreachable!("caller matched dict"),
    };
    match method {
        "get" => {
            let key = HKey::from_value(args.req(0)?)?;
            match dict.read().get(&key) {
                Some(v) => Ok(v.clone()),
                None => Ok(args.opt(1).cloned().unwrap_or(Value::None)),
            }
        }
        "keys" => {
            let keys: Vec<Value> = dict.read().keys().map(HKey::to_value).collect();
            Ok(Value::list(keys))
        }
        "values" => {
            let values: Vec<Value> = dict.read().values().cloned().collect();
            Ok(Value::list(values))
        }
        "items" => {
            let items: Vec<Value> = dict
                .read()
                .iter()
                .map(|(k, v)| Value::tuple(vec![k.to_value(), v.clone()]))
                .collect();
            Ok(Value::list(items))
        }
        "pop" => {
            let key = HKey::from_value(args.req(0)?)?;
            match dict.write().remove(&key) {
                Some(v) => Ok(v),
                None => match args.opt(1) {
                    Some(d) => Ok(d.clone()),
                    None => Err(PyErr::new(ErrKind::Key, args.req(0)?.repr())),
                },
            }
        }
        "setdefault" => {
            let key = HKey::from_value(args.req(0)?)?;
            let default = args.opt(1).cloned().unwrap_or(Value::None);
            let mut map = dict.write();
            Ok(map.entry(key).or_insert(default).clone())
        }
        "update" => {
            args.expect_len(1, "update")?;
            match args.req(0)? {
                Value::Dict(src) => {
                    if Arc::ptr_eq(src, dict) {
                        return Ok(Value::None);
                    }
                    let src_items: Vec<(HKey, Value)> = src
                        .read()
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    dict.write().extend(src_items);
                    Ok(Value::None)
                }
                other => Err(type_err(format!(
                    "dict.update() argument must be a dict, not '{}'",
                    other.type_name()
                ))),
            }
        }
        "clear" => {
            dict.write().clear();
            Ok(Value::None)
        }
        "copy" => {
            let snapshot = dict.read().clone();
            Ok(Value::Dict(Arc::new(crate::value::ObjLock::new(snapshot))))
        }
        _ => Err(attr_err("dict", method)),
    }
}

fn tuple_method(t: &Arc<Vec<Value>>, method: &str, args: Args) -> Result<Value, PyErr> {
    match method {
        "index" => {
            args.expect_len(1, "index")?;
            let needle = args.req(0)?;
            t.iter()
                .position(|v| v.py_eq(needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| value_err("tuple.index(x): x not in tuple"))
        }
        "count" => {
            args.expect_len(1, "count")?;
            let needle = args.req(0)?;
            Ok(Value::Int(
                t.iter().filter(|v| v.py_eq(needle)).count() as i64
            ))
        }
        _ => Err(attr_err("tuple", method)),
    }
}

fn float_method(f: f64, method: &str, args: Args) -> Result<Value, PyErr> {
    match method {
        "is_integer" => {
            args.expect_len(0, "is_integer")?;
            Ok(Value::Bool(f.fract() == 0.0))
        }
        _ => Err(attr_err("float", method)),
    }
}

fn str_method(s: &Arc<String>, method: &str, args: Args) -> Result<Value, PyErr> {
    match method {
        "split" => match args.opt(0) {
            None | Some(Value::None) => {
                Ok(Value::list(s.split_whitespace().map(Value::str).collect()))
            }
            Some(sep) => {
                let sep = sep.as_str()?;
                if sep.is_empty() {
                    return Err(value_err("empty separator"));
                }
                Ok(Value::list(s.split(sep).map(Value::str).collect()))
            }
        },
        "splitlines" => Ok(Value::list(s.lines().map(Value::str).collect())),
        "strip" => Ok(strip(s, args, true, true)?),
        "lstrip" => Ok(strip(s, args, true, false)?),
        "rstrip" => Ok(strip(s, args, false, true)?),
        "lower" => Ok(Value::str(s.to_lowercase())),
        "upper" => Ok(Value::str(s.to_uppercase())),
        "join" => {
            args.expect_len(1, "join")?;
            let items = ValueIter::new(args.req(0)?)?.collect_vec();
            let parts: Result<Vec<&str>, PyErr> = items.iter().map(Value::as_str).collect();
            Ok(Value::str(parts?.join(s)))
        }
        "startswith" => {
            args.expect_len(1, "startswith")?;
            Ok(Value::Bool(s.starts_with(args.req(0)?.as_str()?)))
        }
        "endswith" => {
            args.expect_len(1, "endswith")?;
            Ok(Value::Bool(s.ends_with(args.req(0)?.as_str()?)))
        }
        "replace" => {
            args.expect_len(2, "replace")?;
            Ok(Value::str(
                s.replace(args.req(0)?.as_str()?, args.req(1)?.as_str()?),
            ))
        }
        "find" => {
            args.expect_len(1, "find")?;
            let needle = args.req(0)?.as_str()?;
            match s.find(needle) {
                Some(byte_pos) => {
                    let char_pos = s[..byte_pos].chars().count();
                    Ok(Value::Int(char_pos as i64))
                }
                None => Ok(Value::Int(-1)),
            }
        }
        "count" => {
            args.expect_len(1, "count")?;
            let needle = args.req(0)?.as_str()?;
            if needle.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(needle).count() as i64))
        }
        "isdigit" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        "isalpha" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(char::is_alphabetic),
        )),
        "isalnum" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(char::is_alphanumeric),
        )),
        "isspace" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(char::is_whitespace),
        )),
        "title" => {
            let mut out = String::with_capacity(s.len());
            let mut word_start = true;
            for c in s.chars() {
                if c.is_alphabetic() {
                    if word_start {
                        out.extend(c.to_uppercase());
                    } else {
                        out.extend(c.to_lowercase());
                    }
                    word_start = false;
                } else {
                    out.push(c);
                    word_start = true;
                }
            }
            Ok(Value::str(out))
        }
        _ => Err(attr_err("str", method)),
    }
}

fn strip(s: &str, args: Args, left: bool, right: bool) -> Result<Value, PyErr> {
    let custom: Option<Vec<char>> = match args.opt(0) {
        None | Some(Value::None) => None,
        Some(v) => Some(v.as_str()?.chars().collect()),
    };
    let pred = |c: char| match &custom {
        Some(set) => set.contains(&c),
        None => c.is_whitespace(),
    };
    let mut out = s;
    if left {
        out = out.trim_start_matches(pred);
    }
    if right {
        out = out.trim_end_matches(pred);
    }
    Ok(Value::str(out))
}
