//! Built-in functions and standard modules (`math`, `time`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::env::Env;
use crate::error::{type_err, value_err, ErrKind, PyErr};
use crate::interp::{compare, py_ordering, ExcValue, Interp, ValueIter};
use crate::value::{Args, HKey, NativeFunc, Opaque, Value};

/// A module object: a named bag of attributes.
///
/// Hosts (like the OMP4Py bridge) build one, populate it with
/// [`ModuleObj::set`], and register it via [`Interp::register_module`].
#[derive(Debug, Default)]
pub struct ModuleObj {
    name: String,
    items: RwLock<HashMap<String, Value>>,
}

impl ModuleObj {
    /// Create an empty module with a name.
    pub fn new(name: impl Into<String>) -> ModuleObj {
        ModuleObj {
            name: name.into(),
            items: RwLock::new(HashMap::new()),
        }
    }

    /// Define a module attribute.
    pub fn set(&self, name: impl Into<String>, value: Value) {
        self.items.write().insert(name.into(), value);
    }

    /// Names exported by `from module import *` (all attributes not starting
    /// with an underscore).
    pub fn export_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .items
            .read()
            .keys()
            .filter(|k| !k.starts_with('_'))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Wrap into a [`Value`].
    pub fn into_value(self) -> Value {
        Value::Opaque(Arc::new(self))
    }
}

impl Opaque for ModuleObj {
    fn type_name(&self) -> &str {
        "module"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn get_attr(&self, name: &str) -> Option<Value> {
        self.items.read().get(name).cloned()
    }
    fn str_repr(&self) -> Option<String> {
        Some(format!("<module '{}'>", self.name))
    }
}

fn native(
    env: &Env,
    name: &'static str,
    f: impl Fn(&Interp, Args) -> Result<Value, PyErr> + Send + Sync + 'static,
) {
    env.define(name, NativeFunc::new(name, f));
}

/// Install the builtin functions into the builtins root frame.
pub fn install(env: &Env) {
    native(env, "print", |interp, args| {
        let sep = match args.kwarg("sep") {
            Some(v) => v.py_str(),
            None => " ".to_owned(),
        };
        let end = match args.kwarg("end") {
            Some(v) => v.py_str(),
            None => "\n".to_owned(),
        };
        let parts: Vec<String> = args.pos.iter().map(Value::py_str).collect();
        interp.write_stdout(&format!("{}{}", parts.join(&sep), end));
        Ok(Value::None)
    });

    native(env, "range", |_, args| match args.pos.len() {
        1 => Ok(Value::Range(0, args.req(0)?.as_int()?, 1)),
        2 => Ok(Value::Range(
            args.req(0)?.as_int()?,
            args.req(1)?.as_int()?,
            1,
        )),
        3 => {
            let step = args.req(2)?.as_int()?;
            if step == 0 {
                return Err(value_err("range() arg 3 must not be zero"));
            }
            Ok(Value::Range(
                args.req(0)?.as_int()?,
                args.req(1)?.as_int()?,
                step,
            ))
        }
        n => Err(type_err(format!(
            "range expected 1 to 3 arguments, got {n}"
        ))),
    });

    native(env, "len", |_, args| {
        args.expect_len(1, "len")?;
        let n = match args.req(0)? {
            Value::Str(s) => s.chars().count(),
            Value::List(l) => l.read().len(),
            Value::Dict(d) => d.read().len(),
            Value::Tuple(t) => t.len(),
            Value::Range(a, b, c) => crate::value::range_len(*a, *b, *c) as usize,
            Value::Opaque(o) => o.len().ok_or_else(|| {
                type_err(format!("object of type '{}' has no len()", o.type_name()))
            })?,
            other => {
                return Err(type_err(format!(
                    "object of type '{}' has no len()",
                    other.type_name()
                )))
            }
        };
        Ok(Value::Int(n as i64))
    });

    native(env, "abs", |_, args| {
        args.expect_len(1, "abs")?;
        match args.req(0)? {
            Value::Int(i) => Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                PyErr::new(ErrKind::Custom("OverflowError".into()), "integer overflow")
            })?)),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            other => Err(type_err(format!(
                "bad operand type for abs(): '{}'",
                other.type_name()
            ))),
        }
    });

    native(env, "min", |interp, args| min_max(interp, args, true));
    native(env, "max", |interp, args| min_max(interp, args, false));

    native(env, "sum", |_, args| {
        let items = ValueIter::new(args.req(0)?)?.collect_vec();
        let mut acc = match args.opt(1) {
            Some(v) => v.clone(),
            None => Value::Int(0),
        };
        for item in items {
            acc = crate::interp::binary_op(crate::ast::BinOp::Add, &acc, &item)?;
        }
        Ok(acc)
    });

    native(env, "int", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::Int(0));
        }
        match args.req(0)? {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Float(f) => Ok(Value::Int(f.trunc() as i64)),
            Value::Str(s) => {
                let base = match args.opt(1) {
                    Some(b) => b.as_int()? as u32,
                    None => 10,
                };
                i64::from_str_radix(s.trim(), base)
                    .map(Value::Int)
                    .map_err(|_| value_err(format!("invalid literal for int(): {s:?}")))
            }
            other => Err(type_err(format!(
                "int() argument must be a number, not '{}'",
                other.type_name()
            ))),
        }
    });

    native(env, "float", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::Float(0.0));
        }
        match args.req(0)? {
            Value::Int(i) => Ok(Value::Float(*i as f64)),
            Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
            Value::Float(f) => Ok(Value::Float(*f)),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| value_err(format!("could not convert string to float: {s:?}"))),
            other => Err(type_err(format!(
                "float() argument must be a number, not '{}'",
                other.type_name()
            ))),
        }
    });

    native(env, "str", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::str(""));
        }
        Ok(Value::str(args.req(0)?.py_str()))
    });

    native(env, "repr", |_, args| {
        args.expect_len(1, "repr")?;
        Ok(Value::str(args.req(0)?.repr()))
    });

    native(env, "bool", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::Bool(false));
        }
        Ok(Value::Bool(args.req(0)?.truthy()))
    });

    native(env, "list", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::list(Vec::new()));
        }
        Ok(Value::list(ValueIter::new(args.req(0)?)?.collect_vec()))
    });

    native(env, "tuple", |_, args| {
        if args.pos.is_empty() {
            return Ok(Value::tuple(Vec::new()));
        }
        Ok(Value::tuple(ValueIter::new(args.req(0)?)?.collect_vec()))
    });

    native(env, "dict", |_, args| {
        let d = Value::dict();
        if let Some(src) = args.opt(0) {
            if let (Value::Dict(dst), Value::Dict(srcmap)) = (&d, src) {
                let src_items: Vec<(HKey, Value)> = srcmap
                    .read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                dst.write().extend(src_items);
            } else {
                // dict([(k, v), ...])
                if let Value::Dict(dst) = &d {
                    for pair in ValueIter::new(src)?.collect_vec() {
                        match &pair {
                            Value::Tuple(t) if t.len() == 2 => {
                                dst.write().insert(HKey::from_value(&t[0])?, t[1].clone());
                            }
                            Value::List(l) if l.read().len() == 2 => {
                                let l = l.read();
                                dst.write().insert(HKey::from_value(&l[0])?, l[1].clone());
                            }
                            _ => {
                                return Err(type_err("dict update sequence elements must be pairs"))
                            }
                        }
                    }
                }
            }
        }
        Ok(d)
    });

    native(env, "enumerate", |_, args| {
        let start = match args.opt(1) {
            Some(v) => v.as_int()?,
            None => 0,
        };
        let items = ValueIter::new(args.req(0)?)?.collect_vec();
        Ok(Value::list(
            items
                .into_iter()
                .enumerate()
                .map(|(i, v)| Value::tuple(vec![Value::Int(start + i as i64), v]))
                .collect(),
        ))
    });

    native(env, "zip", |_, args| {
        let mut iters: Vec<Vec<Value>> = Vec::new();
        for a in &args.pos {
            iters.push(ValueIter::new(a)?.collect_vec());
        }
        let n = iters.iter().map(Vec::len).min().unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(Value::tuple(iters.iter().map(|v| v[i].clone()).collect()));
        }
        Ok(Value::list(out))
    });

    native(env, "sorted", |interp, args| {
        let mut items = ValueIter::new(args.req(0)?)?.collect_vec();
        let reverse = args.kwarg("reverse").map(Value::truthy).unwrap_or(false);
        let key_fn = args.kwarg("key").cloned();
        sort_values(interp, &mut items, key_fn.as_ref(), reverse)?;
        Ok(Value::list(items))
    });

    native(env, "reversed", |_, args| {
        let mut items = ValueIter::new(args.req(0)?)?.collect_vec();
        items.reverse();
        Ok(Value::list(items))
    });

    native(env, "round", |_, args| {
        let v = args.req(0)?.as_float()?;
        match args.opt(1) {
            None => {
                // Python banker's rounding.
                let r = v.round();
                let r = if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - v.signum()
                } else {
                    r
                };
                Ok(Value::Int(r as i64))
            }
            Some(nd) => {
                let p = 10f64.powi(nd.as_int()? as i32);
                Ok(Value::Float((v * p).round() / p))
            }
        }
    });

    native(env, "isinstance", |_, args| {
        args.expect_len(2, "isinstance")?;
        let obj = args.req(0)?;
        let class = args.req(1)?;
        let check = |class: &Value| -> Result<bool, PyErr> {
            let cname = match class {
                Value::Native(nf) => nf.name.clone(),
                other => {
                    return Err(type_err(format!(
                        "isinstance() arg 2 must be a type, not {}",
                        other.type_name()
                    )))
                }
            };
            Ok(matches_type_name(obj, &cname))
        };
        match class {
            Value::Tuple(classes) => {
                for c in classes.iter() {
                    if check(c)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            single => Ok(Value::Bool(check(single)?)),
        }
    });

    native(env, "type", |_, args| {
        args.expect_len(1, "type")?;
        Ok(Value::str(args.req(0)?.type_name()))
    });

    native(env, "id", |_, args| {
        args.expect_len(1, "id")?;
        let v = args.req(0)?;
        let addr = match v {
            Value::Str(s) => Arc::as_ptr(s) as usize,
            Value::List(l) => Arc::as_ptr(l) as usize,
            Value::Dict(d) => Arc::as_ptr(d) as usize,
            Value::Tuple(t) => Arc::as_ptr(t) as usize,
            Value::Func(f) => Arc::as_ptr(f) as usize,
            Value::Native(f) => Arc::as_ptr(f) as usize,
            Value::Opaque(o) => Arc::as_ptr(o) as *const () as usize,
            Value::Int(i) => *i as usize,
            Value::Bool(b) => *b as usize,
            Value::Float(f) => f.to_bits() as usize,
            Value::None | Value::Range(..) => 0,
        };
        Ok(Value::Int(addr as i64))
    });

    native(env, "ord", |_, args| {
        args.expect_len(1, "ord")?;
        let s = args.req(0)?.as_str()?.to_owned();
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(Value::Int(c as i64)),
            _ => Err(type_err("ord() expected a character")),
        }
    });

    native(env, "chr", |_, args| {
        args.expect_len(1, "chr")?;
        let i = args.req(0)?.as_int()?;
        let c = u32::try_from(i)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| value_err("chr() arg not in range"))?;
        Ok(Value::str(c.to_string()))
    });

    native(env, "divmod", |_, args| {
        args.expect_len(2, "divmod")?;
        let q = crate::interp::binary_op(crate::ast::BinOp::FloorDiv, args.req(0)?, args.req(1)?)?;
        let r = crate::interp::binary_op(crate::ast::BinOp::Mod, args.req(0)?, args.req(1)?)?;
        Ok(Value::tuple(vec![q, r]))
    });

    native(env, "any", |_, args| {
        args.expect_len(1, "any")?;
        Ok(Value::Bool(
            ValueIter::new(args.req(0)?)?.any(|v| v.truthy()),
        ))
    });

    native(env, "all", |_, args| {
        args.expect_len(1, "all")?;
        Ok(Value::Bool(
            ValueIter::new(args.req(0)?)?.all(|v| v.truthy()),
        ))
    });

    native(env, "pow", |_, args| {
        crate::interp::binary_op(crate::ast::BinOp::Pow, args.req(0)?, args.req(1)?)
    });

    // Exception constructors.
    for name in [
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "NameError",
        "IndexError",
        "KeyError",
        "ZeroDivisionError",
        "AttributeError",
        "RuntimeError",
        "AssertionError",
        "StopIteration",
        "OverflowError",
        "RecursionError",
        "NotImplementedError",
        "KeyboardInterrupt",
        "SyntaxError",
    ] {
        env.define(
            name,
            NativeFunc::new(name, move |_, args| {
                let msg = match args.opt(0) {
                    Some(v) => v.py_str(),
                    None => String::new(),
                };
                Ok(Value::Opaque(Arc::new(ExcValue {
                    kind: ErrKind::from_class_name(name),
                    msg,
                })))
            }),
        );
    }
}

fn matches_type_name(obj: &Value, class_name: &str) -> bool {
    match class_name {
        "int" => matches!(obj, Value::Int(_)),
        "float" => matches!(obj, Value::Float(_)),
        "bool" => matches!(obj, Value::Bool(_)),
        "str" => matches!(obj, Value::Str(_)),
        "list" => matches!(obj, Value::List(_)),
        "dict" => matches!(obj, Value::Dict(_)),
        "tuple" => matches!(obj, Value::Tuple(_)),
        other => obj.type_name() == other,
    }
}

fn min_max(interp: &Interp, args: Args, want_min: bool) -> Result<Value, PyErr> {
    let items = if args.pos.len() == 1 {
        ValueIter::new(args.req(0)?)?.collect_vec()
    } else {
        args.pos.clone()
    };
    if items.is_empty() {
        if let Some(d) = args.kwarg("default") {
            return Ok(d.clone());
        }
        return Err(value_err("min()/max() arg is an empty sequence"));
    }
    let key_fn = args.kwarg("key").cloned();
    let keyed: Vec<(Value, Value)> = match &key_fn {
        Some(f) => items
            .iter()
            .map(|v| {
                Ok((
                    interp.call_value(f, Args::positional(vec![v.clone()]))?,
                    v.clone(),
                ))
            })
            .collect::<Result<_, PyErr>>()?,
        None => items.iter().map(|v| (v.clone(), v.clone())).collect(),
    };
    let mut best = keyed[0].clone();
    for item in &keyed[1..] {
        let better = if want_min {
            compare(crate::ast::CmpOp::Lt, &item.0, &best.0)?
        } else {
            compare(crate::ast::CmpOp::Gt, &item.0, &best.0)?
        };
        if better {
            best = item.clone();
        }
    }
    Ok(best.1)
}

/// Sort values in place, optionally via a key function, Python-stable.
///
/// # Errors
///
/// Propagates key-function errors and `TypeError` for unorderable elements.
pub fn sort_values(
    interp: &Interp,
    items: &mut [Value],
    key_fn: Option<&Value>,
    reverse: bool,
) -> Result<(), PyErr> {
    let keys: Vec<Value> = match key_fn {
        Some(f) => items
            .iter()
            .map(|v| interp.call_value(f, Args::positional(vec![v.clone()])))
            .collect::<Result<_, _>>()?,
        None => items.to_vec(),
    };
    let mut idx: Vec<usize> = (0..items.len()).collect();
    let mut error: Option<PyErr> = None;
    idx.sort_by(|&a, &b| match py_ordering(&keys[a], &keys[b]) {
        Ok(ord) => {
            if reverse {
                ord.reverse()
            } else {
                ord
            }
        }
        Err(e) => {
            if error.is_none() {
                error = Some(e);
            }
            std::cmp::Ordering::Equal
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    let sorted: Vec<Value> = idx.iter().map(|&i| items[i].clone()).collect();
    items.clone_from_slice(&sorted);
    Ok(())
}

/// Install the `math` and `time` modules into an interpreter's registry.
pub fn install_default_modules(interp: &Interp) {
    let math = ModuleObj::new("math");
    math.set("pi", Value::Float(std::f64::consts::PI));
    math.set("e", Value::Float(std::f64::consts::E));
    math.set("inf", Value::Float(f64::INFINITY));
    math.set("nan", Value::Float(f64::NAN));
    let unary_math = |name: &'static str, f: fn(f64) -> f64| {
        NativeFunc::new(name, move |_, args: Args| {
            args.expect_len(1, name)?;
            Ok(Value::Float(f(args.req(0)?.as_float()?)))
        })
    };
    math.set("sqrt", unary_math("sqrt", f64::sqrt));
    math.set("sin", unary_math("sin", f64::sin));
    math.set("cos", unary_math("cos", f64::cos));
    math.set("tan", unary_math("tan", f64::tan));
    math.set("exp", unary_math("exp", f64::exp));
    math.set("log", unary_math("log", f64::ln));
    math.set("log2", unary_math("log2", f64::log2));
    math.set("log10", unary_math("log10", f64::log10));
    math.set("fabs", unary_math("fabs", f64::abs));
    math.set(
        "floor",
        NativeFunc::new("floor", |_, args: Args| {
            Ok(Value::Int(args.req(0)?.as_float()?.floor() as i64))
        }),
    );
    math.set(
        "ceil",
        NativeFunc::new("ceil", |_, args: Args| {
            Ok(Value::Int(args.req(0)?.as_float()?.ceil() as i64))
        }),
    );
    math.set(
        "pow",
        NativeFunc::new("pow", |_, args: Args| {
            Ok(Value::Float(
                args.req(0)?.as_float()?.powf(args.req(1)?.as_float()?),
            ))
        }),
    );
    math.set(
        "atan2",
        NativeFunc::new("atan2", |_, args: Args| {
            Ok(Value::Float(
                args.req(0)?.as_float()?.atan2(args.req(1)?.as_float()?),
            ))
        }),
    );
    interp.register_module("math", math.into_value());

    let time = ModuleObj::new("time");
    time.set(
        "time",
        NativeFunc::new("time", |_, _| {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default();
            Ok(Value::Float(now.as_secs_f64()))
        }),
    );
    time.set(
        "perf_counter",
        NativeFunc::new("perf_counter", |_, _| {
            // Monotonic, relative to process start.
            use std::sync::OnceLock;
            static START: OnceLock<std::time::Instant> = OnceLock::new();
            let start = START.get_or_init(std::time::Instant::now);
            Ok(Value::Float(start.elapsed().as_secs_f64()))
        }),
    );
    time.set(
        "sleep",
        NativeFunc::new("sleep", |interp, args: Args| {
            let secs = args.req(0)?.as_float()?;
            interp.gil().allow_threads(|| {
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
            });
            Ok(Value::None)
        }),
    );
    interp.register_module("time", time.into_value());
}
