//! Error types for lexing, parsing, and interpretation.

use std::fmt;

/// The category of a runtime error, mirroring Python's builtin exception
/// hierarchy closely enough for `except NameError:`-style matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ErrKind {
    /// Mirrors Python `SyntaxError`; also produced by the lexer/parser.
    Syntax,
    /// Mirrors Python `NameError`.
    Name,
    /// Mirrors Python `TypeError`.
    Type,
    /// Mirrors Python `ValueError`.
    Value,
    /// Mirrors Python `IndexError`.
    Index,
    /// Mirrors Python `KeyError`.
    Key,
    /// Mirrors Python `ZeroDivisionError`.
    ZeroDivision,
    /// Mirrors Python `AttributeError`.
    Attribute,
    /// Mirrors Python `RuntimeError`.
    Runtime,
    /// Mirrors Python `AssertionError`.
    Assertion,
    /// Mirrors Python `StopIteration`.
    StopIteration,
    /// Mirrors Python `KeyboardInterrupt`; used to cancel interpreter threads.
    Interrupt,
    /// A user-raised exception with an arbitrary class name.
    Custom(String),
}

impl ErrKind {
    /// Python-style class name for the error, used by `except <Name>:` matching.
    pub fn class_name(&self) -> &str {
        match self {
            ErrKind::Syntax => "SyntaxError",
            ErrKind::Name => "NameError",
            ErrKind::Type => "TypeError",
            ErrKind::Value => "ValueError",
            ErrKind::Index => "IndexError",
            ErrKind::Key => "KeyError",
            ErrKind::ZeroDivision => "ZeroDivisionError",
            ErrKind::Attribute => "AttributeError",
            ErrKind::Runtime => "RuntimeError",
            ErrKind::Assertion => "AssertionError",
            ErrKind::StopIteration => "StopIteration",
            ErrKind::Interrupt => "KeyboardInterrupt",
            ErrKind::Custom(name) => name,
        }
    }

    /// Look up a kind from a Python exception class name.
    ///
    /// Unknown names become [`ErrKind::Custom`], so user-defined exception
    /// names still match across `raise`/`except`.
    pub fn from_class_name(name: &str) -> ErrKind {
        match name {
            "SyntaxError" => ErrKind::Syntax,
            "NameError" => ErrKind::Name,
            "TypeError" => ErrKind::Type,
            "ValueError" => ErrKind::Value,
            "IndexError" => ErrKind::Index,
            "KeyError" => ErrKind::Key,
            "ZeroDivisionError" => ErrKind::ZeroDivision,
            "AttributeError" => ErrKind::Attribute,
            "RuntimeError" => ErrKind::Runtime,
            "AssertionError" => ErrKind::Assertion,
            "StopIteration" => ErrKind::StopIteration,
            "KeyboardInterrupt" => ErrKind::Interrupt,
            other => ErrKind::Custom(other.to_owned()),
        }
    }

    /// Whether an `except <name>:` clause naming `name` catches this kind.
    ///
    /// `Exception` and `BaseException` catch everything, as in Python.
    pub fn matches(&self, name: &str) -> bool {
        if name == "Exception" || name == "BaseException" {
            return true;
        }
        self.class_name() == name
    }
}

/// A runtime or compile-time error carrying a message and source position.
#[derive(Debug, Clone, PartialEq)]
pub struct PyErr {
    /// The exception category.
    pub kind: ErrKind,
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line, when known.
    pub line: Option<u32>,
}

impl PyErr {
    /// Create an error with no position information.
    pub fn new(kind: ErrKind, msg: impl Into<String>) -> PyErr {
        PyErr {
            kind,
            msg: msg.into(),
            line: None,
        }
    }

    /// Create an error at the given 1-based line.
    pub fn at(kind: ErrKind, msg: impl Into<String>, line: u32) -> PyErr {
        PyErr {
            kind,
            msg: msg.into(),
            line: Some(line),
        }
    }

    /// Attach a line number if one is not already present.
    pub fn with_line(mut self, line: u32) -> PyErr {
        if self.line.is_none() {
            self.line = Some(line);
        }
        self
    }
}

impl fmt::Display for PyErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{}: {} (line {})",
                self.kind.class_name(),
                self.msg,
                line
            ),
            None => write!(f, "{}: {}", self.kind.class_name(), self.msg),
        }
    }
}

impl std::error::Error for PyErr {}

/// Convenience constructors used pervasively by the interpreter.
pub fn type_err(msg: impl Into<String>) -> PyErr {
    PyErr::new(ErrKind::Type, msg)
}

/// A `NameError` with the standard Python message shape.
pub fn name_err(name: &str) -> PyErr {
    PyErr::new(ErrKind::Name, format!("name '{name}' is not defined"))
}

/// A `ValueError`.
pub fn value_err(msg: impl Into<String>) -> PyErr {
    PyErr::new(ErrKind::Value, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for kind in [
            ErrKind::Syntax,
            ErrKind::Name,
            ErrKind::Type,
            ErrKind::Value,
            ErrKind::Index,
            ErrKind::Key,
            ErrKind::ZeroDivision,
            ErrKind::Attribute,
            ErrKind::Runtime,
            ErrKind::Assertion,
            ErrKind::StopIteration,
            ErrKind::Interrupt,
        ] {
            assert_eq!(ErrKind::from_class_name(kind.class_name()), kind);
        }
    }

    #[test]
    fn custom_kind_round_trips() {
        let kind = ErrKind::from_class_name("MyError");
        assert_eq!(kind, ErrKind::Custom("MyError".into()));
        assert!(kind.matches("MyError"));
        assert!(kind.matches("Exception"));
        assert!(!kind.matches("ValueError"));
    }

    #[test]
    fn exception_catches_all() {
        assert!(ErrKind::Value.matches("Exception"));
        assert!(ErrKind::Value.matches("BaseException"));
        assert!(!ErrKind::Value.matches("TypeError"));
    }

    #[test]
    fn display_includes_line() {
        let err = PyErr::at(ErrKind::Name, "name 'x' is not defined", 3);
        assert_eq!(
            format!("{err}"),
            "NameError: name 'x' is not defined (line 3)"
        );
    }

    #[test]
    fn with_line_does_not_overwrite() {
        let err = PyErr::at(ErrKind::Value, "bad", 1).with_line(9);
        assert_eq!(err.line, Some(1));
    }
}
