//! The tree-walking interpreter.
//!
//! [`Interp`] is a cheaply-cloneable handle (all state is `Arc`-shared), so a
//! host runtime can hand clones to worker threads — exactly what the OMP4Py
//! bridge does when a `parallel` directive spawns a team.

use std::cell::Cell as StdCell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ast::*;
use crate::env::Env;
use crate::error::{name_err, type_err, value_err, ErrKind, PyErr};
use crate::gil::{Gil, GilMode};
use crate::value::{range_len, Args, FuncValue, HKey, Opaque, Value};
use crate::{builtins, methods, parser};

/// Result of executing a statement.
#[derive(Debug)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `break` propagating to the nearest loop.
    Break,
    /// `continue` propagating to the nearest loop.
    Continue,
    /// `return` propagating to the nearest function.
    Return(Value),
}

thread_local! {
    static DEPTH: StdCell<u32> = const { StdCell::new(0) };
}

/// Default recursion limit (interpreted call depth per thread).
pub const DEFAULT_RECURSION_LIMIT: u32 = 1500;

/// An exception object bound by `except ... as e`.
#[derive(Debug, Clone)]
pub struct ExcValue {
    /// The exception category.
    pub kind: ErrKind,
    /// The message.
    pub msg: String,
}

impl Opaque for ExcValue {
    fn type_name(&self) -> &str {
        self.kind.class_name()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn str_repr(&self) -> Option<String> {
        Some(self.msg.clone())
    }
}

/// Where `print` output goes.
#[derive(Clone)]
enum OutputSink {
    Stdout,
    Buffer(Arc<Mutex<String>>),
}

/// A minipy interpreter instance.
///
/// Cloning is cheap and produces a handle to the *same* interpreter state
/// (globals, modules, GIL), suitable for moving into other threads.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minipy::PyErr> {
/// let interp = minipy::Interp::new();
/// interp.run("x = 2 + 3\n")?;
/// assert_eq!(interp.get_global("x").unwrap().as_int()?, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Interp {
    globals: Env,
    gil: Arc<Gil>,
    modules: Arc<RwLock<HashMap<String, Value>>>,
    stdout: OutputSink,
    recursion_limit: u32,
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

impl Interp {
    /// Create a free-threaded interpreter (the configuration OMP4Py needs).
    pub fn new() -> Interp {
        Interp::with_gil(Gil::new(GilMode::FreeThreaded))
    }

    /// Create an interpreter with an explicit GIL configuration.
    pub fn with_gil(gil: Arc<Gil>) -> Interp {
        let builtins_env = Env::new_root();
        builtins::install(&builtins_env);
        let globals = builtins_env.child_barrier();
        let interp = Interp {
            globals,
            gil,
            modules: Arc::new(RwLock::new(HashMap::new())),
            stdout: OutputSink::Stdout,
            recursion_limit: DEFAULT_RECURSION_LIMIT,
        };
        builtins::install_default_modules(&interp);
        interp
    }

    /// Redirect `print` output to an in-memory buffer (for tests/harnesses).
    pub fn capture_output(mut self) -> Interp {
        self.stdout = OutputSink::Buffer(Arc::new(Mutex::new(String::new())));
        self
    }

    /// Captured output so far, if output capture is enabled.
    pub fn output(&self) -> Option<String> {
        match &self.stdout {
            OutputSink::Stdout => None,
            OutputSink::Buffer(buf) => Some(buf.lock().clone()),
        }
    }

    /// Set the recursion limit (interpreted call depth per thread).
    pub fn set_recursion_limit(&mut self, limit: u32) {
        self.recursion_limit = limit.max(16);
    }

    /// The interpreter's GIL handle.
    pub fn gil(&self) -> &Arc<Gil> {
        &self.gil
    }

    /// The module-level (global) environment.
    pub fn globals(&self) -> &Env {
        &self.globals
    }

    /// Write text to the interpreter's stdout sink.
    pub fn write_stdout(&self, text: &str) {
        match &self.stdout {
            OutputSink::Stdout => print!("{text}"),
            OutputSink::Buffer(buf) => buf.lock().push_str(text),
        }
    }

    /// Register an importable module object.
    ///
    /// `import name` / `from name import *` consult this registry.
    pub fn register_module(&self, name: &str, module: Value) {
        self.modules.write().insert(name.to_owned(), module);
    }

    /// Look up a registered module.
    pub fn module(&self, name: &str) -> Option<Value> {
        self.modules.read().get(name).cloned()
    }

    /// Read a global variable.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        self.globals.get(name)
    }

    /// Set a global variable.
    pub fn set_global(&self, name: &str, value: Value) {
        self.globals.set_or_define(name, value);
    }

    /// Parse and execute source text at module scope.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or runtime error.
    pub fn run(&self, src: &str) -> Result<(), PyErr> {
        let module = parser::parse(src)?;
        self.run_module(&module)
    }

    /// Execute a parsed module at module scope.
    ///
    /// # Errors
    ///
    /// Returns the first runtime error.
    pub fn run_module(&self, module: &Module) -> Result<(), PyErr> {
        let _session = self.gil.enter();
        for stmt in &module.body {
            match self.exec(stmt, &self.globals)? {
                Flow::Normal => {}
                Flow::Return(_) => {
                    return Err(PyErr::at(
                        ErrKind::Syntax,
                        "'return' outside function",
                        stmt.line,
                    ))
                }
                Flow::Break | Flow::Continue => {
                    return Err(PyErr::at(
                        ErrKind::Syntax,
                        "loop control outside loop",
                        stmt.line,
                    ))
                }
            }
        }
        Ok(())
    }

    /// Evaluate a single expression string at module scope.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or runtime error.
    pub fn eval_str(&self, src: &str) -> Result<Value, PyErr> {
        let expr = parser::parse_expr(src)?;
        let _session = self.gil.enter();
        self.eval(&expr, &self.globals)
    }

    /// Call a callable value with positional arguments.
    ///
    /// This is the host-side entry point used by native bridges (e.g. to run
    /// a parallel region body on a worker thread). It enters a GIL session.
    ///
    /// # Errors
    ///
    /// Returns a `TypeError` if `func` is not callable, or whatever error the
    /// call raises.
    pub fn call(&self, func: &Value, args: Vec<Value>) -> Result<Value, PyErr> {
        let _session = self.gil.enter();
        self.call_value(func, Args::positional(args))
    }

    /// Invoke a callable with full [`Args`]. Assumes a GIL session is active.
    ///
    /// # Errors
    ///
    /// Propagates the callee's error, or a `TypeError` for non-callables.
    pub fn call_value(&self, func: &Value, args: Args) -> Result<Value, PyErr> {
        match func {
            Value::Func(f) => self.call_interpreted(f, args),
            Value::Native(nf) => (nf.func)(self, args),
            other => Err(type_err(format!(
                "'{}' object is not callable",
                other.type_name()
            ))),
        }
    }

    fn call_interpreted(&self, f: &Arc<FuncValue>, args: Args) -> Result<Value, PyErr> {
        let limit = self.recursion_limit;
        DEPTH.with(|d| {
            let v = d.get();
            if v >= limit {
                return Err(PyErr::new(
                    ErrKind::Custom("RecursionError".into()),
                    "maximum recursion depth exceeded",
                ));
            }
            d.set(v + 1);
            Ok(())
        })?;
        let result = self.call_interpreted_inner(f, args);
        DEPTH.with(|d| d.set(d.get() - 1));
        result
    }

    fn call_interpreted_inner(&self, f: &Arc<FuncValue>, mut args: Args) -> Result<Value, PyErr> {
        // Compiled tier: when the VM is enabled and this definition is
        // VM-eligible, execute bytecode instead of tree-walking. Fallback is
        // per-function and the compile decision is cached per definition.
        if crate::bytecode::enabled() {
            if let Some(code) = crate::bytecode::lookup_or_compile(&f.def) {
                return crate::bytecode::vm::call_compiled(self, f, &code, args);
            }
        }
        let frame = f.closure.child();
        let def = &f.def;
        if args.pos.len() > def.params.len() {
            return Err(type_err(format!(
                "{}() takes {} positional arguments but {} were given",
                f.name,
                def.params.len(),
                args.pos.len()
            )));
        }
        let npos = args.pos.len();
        for (param, value) in def.params.iter().zip(args.pos.drain(..)) {
            frame.define(&param.name, value);
        }
        for (name, value) in args.kw.drain(..) {
            let param = def.params.iter().position(|p| p.name == name);
            match param {
                Some(i) if i < npos => {
                    return Err(type_err(format!(
                        "{}() got multiple values for argument '{name}'",
                        f.name
                    )))
                }
                Some(_) => {
                    if frame.get_local_cell(&name).is_some() {
                        return Err(type_err(format!(
                            "{}() got multiple values for argument '{name}'",
                            f.name
                        )));
                    }
                    frame.define(&name, value);
                }
                None => {
                    return Err(type_err(format!(
                        "{}() got an unexpected keyword argument '{name}'",
                        f.name
                    )))
                }
            }
        }
        for (i, param) in def.params.iter().enumerate() {
            if frame.get_local_cell(&param.name).is_none() {
                match f.defaults.get(i).and_then(Option::as_ref) {
                    Some(default) => frame.define(&param.name, default.clone()),
                    None => {
                        return Err(type_err(format!(
                            "{}() missing required argument: '{}'",
                            f.name, param.name
                        )))
                    }
                }
            }
        }
        match self.exec_block(&def.body, &frame)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    /// Execute a block of statements.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error.
    pub fn exec_block(&self, stmts: &[Stmt], env: &Env) -> Result<Flow, PyErr> {
        for stmt in stmts {
            match self.exec(stmt, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute one statement.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error, annotated with the statement line.
    pub fn exec(&self, stmt: &Stmt, env: &Env) -> Result<Flow, PyErr> {
        self.gil.tick();
        let result = self.exec_inner(stmt, env);
        match result {
            Err(e) if stmt.line > 0 => Err(e.with_line(stmt.line)),
            other => other,
        }
    }

    fn exec_inner(&self, stmt: &Stmt, env: &Env) -> Result<Flow, PyErr> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { targets, value } => {
                let v = self.eval(value, env)?;
                for target in targets {
                    self.assign(target, v.clone(), env)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign { target, op, value } => {
                let rhs = self.eval(value, env)?;
                match target {
                    Expr::Name(name) => {
                        let cell = env.get_cell(name).ok_or_else(|| name_err(name))?;
                        // Read-modify-write without holding the cell lock
                        // across user code, as Python's STORE_NAME does not
                        // make `x += 1` atomic either.
                        let old = cell.read().clone();
                        let new = binary_op(*op, &old, &rhs)?;
                        *cell.write() = new;
                    }
                    Expr::Index { value: obj, index } => {
                        let container = self.eval(obj, env)?;
                        let idx = self.eval(index, env)?;
                        let old = self.get_item(&container, &idx)?;
                        let new = binary_op(*op, &old, &rhs)?;
                        self.set_item(&container, &idx, new)?;
                    }
                    _ => return Err(type_err("illegal augmented-assignment target")),
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { test, body, orelse } => {
                if self.eval(test, env)?.truthy() {
                    self.exec_block(body, env)
                } else {
                    self.exec_block(orelse, env)
                }
            }
            StmtKind::While { test, body } => {
                while self.eval(test, env)?.truthy() {
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    self.gil.tick();
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { target, iter, body } => {
                let iterable = self.eval(iter, env)?;
                let it = ValueIter::new(&iterable)?;
                for item in it {
                    self.assign(target, item, env)?;
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    self.gil.tick();
                }
                Ok(Flow::Normal)
            }
            StmtKind::FuncDef(def) => {
                let mut defaults = Vec::with_capacity(def.params.len());
                for param in &def.params {
                    defaults.push(match &param.default {
                        Some(expr) => Some(self.eval(expr, env)?),
                        None => None,
                    });
                }
                let mut func = Value::Func(Arc::new(FuncValue {
                    def: Arc::clone(def),
                    closure: env.clone(),
                    name: def.name.clone(),
                    defaults,
                }));
                // Apply decorators bottom-up (the last listed runs first).
                for deco in def.decorators.iter().rev() {
                    let deco_v = self.eval(deco, env)?;
                    func = self.call_value(&deco_v, Args::positional(vec![func]))?;
                }
                env.set_or_define(&def.name, func);
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Global(names) => {
                for name in names {
                    let cell = match self.globals.get_local_cell(name) {
                        Some(cell) => cell,
                        None => {
                            self.globals.define(name, Value::None);
                            self.globals.get_local_cell(name).expect("just defined")
                        }
                    };
                    if !env.same_frame(&self.globals) {
                        env.define_cell(name, cell);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Nonlocal(names) => {
                for name in names {
                    let cell = env.get_nonlocal_cell(name).ok_or_else(|| {
                        PyErr::new(
                            ErrKind::Syntax,
                            format!("no binding for nonlocal '{name}' found"),
                        )
                    })?;
                    env.define_cell(name, cell);
                }
                Ok(Flow::Normal)
            }
            StmtKind::With { items, body } => {
                // minipy has no context-manager protocol: the context value is
                // evaluated (for its side effects, e.g. `omp(...)` validation)
                // and optionally bound; the body then runs unconditionally.
                for item in items {
                    let v = self.eval(&item.context, env)?;
                    if let Some(alias) = &item.alias {
                        env.set_or_define(alias, v);
                    }
                }
                self.exec_block(body, env)
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let body_result = self.exec_block(body, env);
                let mut result = match body_result {
                    Err(exc) => {
                        let mut handled = None;
                        for handler in handlers {
                            let matches = match &handler.class_name {
                                None => true,
                                Some(name) => exc.kind.matches(name),
                            };
                            if matches {
                                if let Some(alias) = &handler.alias {
                                    env.set_or_define(
                                        alias,
                                        Value::Opaque(Arc::new(ExcValue {
                                            kind: exc.kind.clone(),
                                            msg: exc.msg.clone(),
                                        })),
                                    );
                                }
                                handled = Some(self.exec_with_exc(&handler.body, env, &exc));
                                break;
                            }
                        }
                        match handled {
                            Some(r) => r,
                            None => Err(exc),
                        }
                    }
                    Ok(Flow::Normal) => self.exec_block(orelse, env),
                    other => other,
                };
                if !finalbody.is_empty() {
                    match self.exec_block(finalbody, env) {
                        Ok(Flow::Normal) => {}
                        other => result = other,
                    }
                }
                result
            }
            StmtKind::Raise(value) => match value {
                None => {
                    let exc = current_exception().ok_or_else(|| {
                        PyErr::new(ErrKind::Runtime, "no active exception to re-raise")
                    })?;
                    Err(exc)
                }
                Some(e) => {
                    let v = self.eval(e, env)?;
                    Err(exception_from_value(&v)?)
                }
            },
            StmtKind::Assert { test, msg } => {
                if !self.eval(test, env)?.truthy() {
                    let message = match msg {
                        Some(m) => self.eval(m, env)?.py_str(),
                        None => String::new(),
                    };
                    return Err(PyErr::new(ErrKind::Assertion, message));
                }
                Ok(Flow::Normal)
            }
            StmtKind::Del(targets) => {
                for target in targets {
                    match target {
                        Expr::Name(name) => {
                            let mut cur = Some(env.clone());
                            let mut removed = false;
                            while let Some(e) = cur {
                                if e.remove(name) {
                                    removed = true;
                                    break;
                                }
                                cur = e.parent().cloned();
                            }
                            if !removed {
                                return Err(name_err(name));
                            }
                        }
                        Expr::Index { value, index } => {
                            let container = self.eval(value, env)?;
                            let idx = self.eval(index, env)?;
                            self.del_item(&container, &idx)?;
                        }
                        _ => return Err(type_err("illegal del target")),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Import { module, alias } => {
                let value = self.module(module).ok_or_else(|| {
                    PyErr::new(
                        ErrKind::Custom("ModuleNotFoundError".into()),
                        format!("no module named '{module}'"),
                    )
                })?;
                let bind = alias
                    .as_deref()
                    .unwrap_or(module.split('.').next().unwrap_or(module));
                env.set_or_define(bind, value);
                Ok(Flow::Normal)
            }
            StmtKind::FromImport {
                module,
                names,
                star,
            } => {
                let value = self.module(module).ok_or_else(|| {
                    PyErr::new(
                        ErrKind::Custom("ModuleNotFoundError".into()),
                        format!("no module named '{module}'"),
                    )
                })?;
                if *star {
                    match &value {
                        Value::Opaque(o) => {
                            for name in module_export_names(o.as_ref()) {
                                if let Some(v) = o.get_attr(&name) {
                                    env.set_or_define(&name, v);
                                }
                            }
                        }
                        Value::Dict(d) => {
                            for (k, v) in d.read().iter() {
                                if let HKey::Str(name) = k {
                                    env.set_or_define(name, v.clone());
                                }
                            }
                        }
                        _ => {
                            return Err(type_err("module object does not support import *"));
                        }
                    }
                } else {
                    for (name, alias) in names {
                        let item = match &value {
                            Value::Opaque(o) => o.get_attr(name),
                            Value::Dict(d) => {
                                d.read().get(&HKey::Str(Arc::new(name.clone()))).cloned()
                            }
                            _ => None,
                        };
                        let item = item.ok_or_else(|| {
                            PyErr::new(
                                ErrKind::Custom("ImportError".into()),
                                format!("cannot import name '{name}' from '{module}'"),
                            )
                        })?;
                        env.set_or_define(alias.as_deref().unwrap_or(name), item);
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn exec_with_exc(&self, body: &[Stmt], env: &Env, exc: &PyErr) -> Result<Flow, PyErr> {
        push_exception(exc.clone());
        let result = self.exec_block(body, env);
        pop_exception();
        result
    }

    fn assign(&self, target: &Expr, value: Value, env: &Env) -> Result<(), PyErr> {
        match target {
            Expr::Name(name) => {
                env.set_or_define(name, value);
                Ok(())
            }
            Expr::Tuple(items) | Expr::List(items) => {
                let it = ValueIter::new(&value)?;
                let mut supplied = Vec::with_capacity(items.len());
                for v in it {
                    supplied.push(v);
                    if supplied.len() > items.len() {
                        return Err(value_err(format!(
                            "too many values to unpack (expected {})",
                            items.len()
                        )));
                    }
                }
                if supplied.len() < items.len() {
                    return Err(value_err(format!(
                        "not enough values to unpack (expected {}, got {})",
                        items.len(),
                        supplied.len()
                    )));
                }
                for (t, v) in items.iter().zip(supplied) {
                    self.assign(t, v, env)?;
                }
                Ok(())
            }
            Expr::Index { value: obj, index } => {
                let container = self.eval(obj, env)?;
                let idx = self.eval(index, env)?;
                self.set_item(&container, &idx, value)
            }
            Expr::Attribute { .. } => {
                Err(type_err("attribute assignment is not supported in minipy"))
            }
            _ => Err(type_err("cannot assign to expression")),
        }
    }

    /// Evaluate an expression.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value, PyErr> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::None => Ok(Value::None),
            Expr::Name(name) => env.get(name).ok_or_else(|| name_err(name)),
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                binary_op(*op, &l, &r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, env)?;
                unary_op(*op, &v)
            }
            Expr::BoolOp { op, values } => {
                let mut last = Value::None;
                for (i, e) in values.iter().enumerate() {
                    last = self.eval(e, env)?;
                    let t = last.truthy();
                    let short = match op {
                        BoolOpKind::And => !t,
                        BoolOpKind::Or => t,
                    };
                    if short && i + 1 < values.len() {
                        return Ok(last);
                    }
                    if short {
                        return Ok(last);
                    }
                }
                Ok(last)
            }
            Expr::Compare {
                left,
                ops,
                comparators,
            } => {
                let mut lhs = self.eval(left, env)?;
                for (op, rhs_expr) in ops.iter().zip(comparators) {
                    let rhs = self.eval(rhs_expr, env)?;
                    if !compare(*op, &lhs, &rhs)? {
                        return Ok(Value::Bool(false));
                    }
                    lhs = rhs;
                }
                Ok(Value::Bool(true))
            }
            Expr::Call { func, args, kwargs } => {
                let call_args = Args {
                    pos: args
                        .iter()
                        .map(|a| self.eval(a, env))
                        .collect::<Result<_, _>>()?,
                    kw: kwargs
                        .iter()
                        .map(|(k, v)| Ok((k.clone(), self.eval(v, env)?)))
                        .collect::<Result<_, PyErr>>()?,
                };
                if let Expr::Attribute { value, attr } = &**func {
                    let obj = self.eval(value, env)?;
                    // Module attribute that happens to be callable?
                    if let Value::Opaque(o) = &obj {
                        if let Some(f) = o.get_attr(attr) {
                            return self.call_value(&f, call_args);
                        }
                    }
                    return methods::call_method(self, &obj, attr, call_args);
                }
                let f = self.eval(func, env)?;
                self.call_value(&f, call_args)
            }
            Expr::Attribute { value, attr } => {
                let obj = self.eval(value, env)?;
                match &obj {
                    Value::Opaque(o) => o.get_attr(attr).ok_or_else(|| {
                        PyErr::new(
                            ErrKind::Attribute,
                            format!("'{}' object has no attribute '{}'", o.type_name(), attr),
                        )
                    }),
                    other => Err(PyErr::new(
                        ErrKind::Attribute,
                        format!(
                            "attribute '{}' of '{}' is only supported in call position",
                            attr,
                            other.type_name()
                        ),
                    )),
                }
            }
            Expr::Index { value, index } => {
                let container = self.eval(value, env)?;
                let idx = self.eval(index, env)?;
                self.get_item(&container, &idx)
            }
            Expr::Slice { lower, upper, step } => {
                // A bare slice value (only meaningful inside Index); represent
                // as a 3-tuple marker.
                let l = match lower {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                let u = match upper {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                let s = match step {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                Ok(Value::Opaque(Arc::new(SliceValue {
                    lower: l,
                    upper: u,
                    step: s,
                })))
            }
            Expr::List(items) => {
                let values: Vec<Value> = items
                    .iter()
                    .map(|e| self.eval(e, env))
                    .collect::<Result<_, _>>()?;
                Ok(Value::list(values))
            }
            Expr::Tuple(items) => {
                let values: Vec<Value> = items
                    .iter()
                    .map(|e| self.eval(e, env))
                    .collect::<Result<_, _>>()?;
                Ok(Value::tuple(values))
            }
            Expr::Dict(items) => {
                let dict = Value::dict();
                if let Value::Dict(map) = &dict {
                    let mut map = map.write();
                    for (k, v) in items {
                        let key = HKey::from_value(&self.eval(k, env)?)?;
                        let value = self.eval(v, env)?;
                        map.insert(key, value);
                    }
                }
                Ok(dict)
            }
            Expr::IfExp { test, body, orelse } => {
                if self.eval(test, env)?.truthy() {
                    self.eval(body, env)
                } else {
                    self.eval(orelse, env)
                }
            }
            Expr::Lambda { params, body } => {
                let def = Arc::new(FuncDef {
                    name: "<lambda>".into(),
                    params: params.clone(),
                    body: vec![Stmt::synth(StmtKind::Return(Some((**body).clone())))],
                    decorators: Vec::new(),
                    line: 0,
                });
                let mut defaults = Vec::with_capacity(params.len());
                for param in params {
                    defaults.push(match &param.default {
                        Some(expr) => Some(self.eval(expr, env)?),
                        None => None,
                    });
                }
                Ok(Value::Func(Arc::new(FuncValue {
                    def,
                    closure: env.clone(),
                    name: "<lambda>".into(),
                    defaults,
                })))
            }
        }
    }

    /// `container[index]` semantics.
    ///
    /// # Errors
    ///
    /// `TypeError`/`IndexError`/`KeyError` as in Python.
    pub fn get_item(&self, container: &Value, index: &Value) -> Result<Value, PyErr> {
        if let Value::Opaque(slice) = index {
            if let Some(s) = slice.as_any().downcast_ref::<SliceValue>() {
                return slice_get(container, s);
            }
        }
        match container {
            Value::List(l) => {
                let items = l.read();
                let i = normalize_index(index.as_int()?, items.len())?;
                Ok(items[i].clone())
            }
            Value::Tuple(t) => {
                let i = normalize_index(index.as_int()?, t.len())?;
                Ok(t[i].clone())
            }
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = normalize_index(index.as_int()?, chars.len())?;
                Ok(Value::str(chars[i].to_string()))
            }
            Value::Dict(d) => {
                let key = HKey::from_value(index)?;
                d.read()
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| PyErr::new(ErrKind::Key, index.repr()))
            }
            Value::Range(start, stop, step) => {
                let len = range_len(*start, *stop, *step);
                let i = normalize_index(index.as_int()?, len as usize)?;
                Ok(Value::Int(start + (i as i64) * step))
            }
            other => Err(type_err(format!(
                "'{}' object is not subscriptable",
                other.type_name()
            ))),
        }
    }

    /// `container[index] = value` semantics.
    ///
    /// # Errors
    ///
    /// `TypeError`/`IndexError` as in Python.
    pub fn set_item(&self, container: &Value, index: &Value, value: Value) -> Result<(), PyErr> {
        match container {
            Value::List(l) => {
                let mut items = l.write();
                let i = normalize_index(index.as_int()?, items.len())?;
                items[i] = value;
                Ok(())
            }
            Value::Dict(d) => {
                let key = HKey::from_value(index)?;
                d.write().insert(key, value);
                Ok(())
            }
            other => Err(type_err(format!(
                "'{}' object does not support item assignment",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn del_item(&self, container: &Value, index: &Value) -> Result<(), PyErr> {
        match container {
            Value::List(l) => {
                let mut items = l.write();
                let i = normalize_index(index.as_int()?, items.len())?;
                items.remove(i);
                Ok(())
            }
            Value::Dict(d) => {
                let key = HKey::from_value(index)?;
                if d.write().remove(&key).is_none() {
                    return Err(PyErr::new(ErrKind::Key, index.repr()));
                }
                Ok(())
            }
            other => Err(type_err(format!(
                "'{}' object doesn't support item deletion",
                other.type_name()
            ))),
        }
    }
}

/// A slice object created by `a[l:u:s]` subscripts.
#[derive(Debug)]
pub struct SliceValue {
    /// Lower bound or `None`.
    pub lower: Value,
    /// Upper bound or `None`.
    pub upper: Value,
    /// Step or `None`.
    pub step: Value,
}

impl Opaque for SliceValue {
    fn type_name(&self) -> &str {
        "slice"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn slice_get(container: &Value, s: &SliceValue) -> Result<Value, PyErr> {
    let step = match &s.step {
        Value::None => 1,
        v => v.as_int()?,
    };
    if step == 0 {
        return Err(value_err("slice step cannot be zero"));
    }
    let len = match container {
        Value::List(l) => l.read().len(),
        Value::Tuple(t) => t.len(),
        Value::Str(st) => st.chars().count(),
        other => {
            return Err(type_err(format!(
                "'{}' object is not sliceable",
                other.type_name()
            )))
        }
    } as i64;
    let (start, stop) = slice_bounds(&s.lower, &s.upper, step, len)?;
    let indices: Vec<i64> = if step > 0 {
        let mut v = Vec::new();
        let mut i = start;
        while i < stop {
            v.push(i);
            i += step;
        }
        v
    } else {
        let mut v = Vec::new();
        let mut i = start;
        while i > stop {
            v.push(i);
            i += step;
        }
        v
    };
    match container {
        Value::List(l) => {
            let items = l.read();
            Ok(Value::list(
                indices.iter().map(|&i| items[i as usize].clone()).collect(),
            ))
        }
        Value::Tuple(t) => Ok(Value::tuple(
            indices.iter().map(|&i| t[i as usize].clone()).collect(),
        )),
        Value::Str(st) => {
            let chars: Vec<char> = st.chars().collect();
            Ok(Value::str(
                indices
                    .iter()
                    .map(|&i| chars[i as usize])
                    .collect::<String>(),
            ))
        }
        _ => unreachable!("checked above"),
    }
}

fn slice_bounds(lower: &Value, upper: &Value, step: i64, len: i64) -> Result<(i64, i64), PyErr> {
    let clamp = |mut v: i64, hi: i64| {
        if v < 0 {
            v += len;
        }
        v.clamp(if step > 0 { 0 } else { -1 }, hi)
    };
    let (default_start, default_stop) = if step > 0 { (0, len) } else { (len - 1, -1) };
    let start = match lower {
        Value::None => default_start,
        v => clamp(v.as_int()?, if step > 0 { len } else { len - 1 }),
    };
    let stop = match upper {
        Value::None => default_stop,
        v => clamp(v.as_int()?, len),
    };
    Ok((start, stop))
}

/// Normalize a (possibly negative) index against a container length.
pub(crate) fn normalize_index(i: i64, len: usize) -> Result<usize, PyErr> {
    let len = len as i64;
    let idx = if i < 0 { i + len } else { i };
    if idx < 0 || idx >= len {
        return Err(PyErr::new(ErrKind::Index, "index out of range"));
    }
    Ok(idx as usize)
}

// ---- exception context (for bare `raise`) -----------------------------

thread_local! {
    static EXC_STACK: std::cell::RefCell<Vec<PyErr>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn push_exception(e: PyErr) {
    EXC_STACK.with(|s| s.borrow_mut().push(e));
}

fn pop_exception() {
    EXC_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

pub(crate) fn current_exception() -> Option<PyErr> {
    EXC_STACK.with(|s| s.borrow().last().cloned())
}

/// Convert a raised value into a [`PyErr`].
pub(crate) fn exception_from_value(v: &Value) -> Result<PyErr, PyErr> {
    match v {
        Value::Opaque(o) => {
            if let Some(exc) = o.as_any().downcast_ref::<ExcValue>() {
                return Ok(PyErr::new(exc.kind.clone(), exc.msg.clone()));
            }
            Err(type_err("exceptions must derive from BaseException"))
        }
        Value::Native(nf) => {
            // `raise ValueError` without arguments.
            Ok(PyErr::new(ErrKind::from_class_name(&nf.name), ""))
        }
        _ => Err(type_err("exceptions must derive from BaseException")),
    }
}

/// Names a module opaque exposes for `import *`; modules opt in by
/// implementing [`crate::builtins::ModuleObj`].
fn module_export_names(o: &dyn Opaque) -> Vec<String> {
    if let Some(m) = o.as_any().downcast_ref::<crate::builtins::ModuleObj>() {
        m.export_names()
    } else {
        Vec::new()
    }
}

// ---- operators ---------------------------------------------------------

/// Apply a binary operator with Python semantics.
///
/// # Errors
///
/// `TypeError` for unsupported operand types, `ZeroDivisionError` where
/// applicable, and an overflow `OverflowError` for out-of-range `int` math
/// (minipy has no big integers).
pub fn binary_op(op: BinOp, l: &Value, r: &Value) -> Result<Value, PyErr> {
    use BinOp::*;
    // Fast numeric paths.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return int_binary(op, *a, *b);
    }
    // Mixed numeric paths.
    if l.is_number() && r.is_number() {
        return float_binary(op, l.as_float()?, r.as_float()?);
    }
    // Sequence/str operations.
    match (op, l, r) {
        (Add, Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::str(s))
        }
        (Add, Value::List(a), Value::List(b)) => {
            let mut out = a.read().clone();
            out.extend(b.read().iter().cloned());
            Ok(Value::list(out))
        }
        (Add, Value::Tuple(a), Value::Tuple(b)) => {
            let mut out = (**a).clone();
            out.extend(b.iter().cloned());
            Ok(Value::tuple(out))
        }
        (Mul, Value::Str(s), Value::Int(n)) | (Mul, Value::Int(n), Value::Str(s)) => {
            Ok(Value::str(s.repeat((*n).max(0) as usize)))
        }
        (Mul, Value::List(items), Value::Int(n)) | (Mul, Value::Int(n), Value::List(items)) => {
            let items = items.read();
            let mut out = Vec::with_capacity(items.len() * (*n).max(0) as usize);
            for _ in 0..(*n).max(0) {
                out.extend(items.iter().cloned());
            }
            Ok(Value::list(out))
        }
        (Mod, Value::Str(_), _) => Err(type_err(
            "printf-style '%' string formatting is not supported in minipy",
        )),
        _ => Err(type_err(format!(
            "unsupported operand type(s) for {}: '{}' and '{}'",
            op.symbol(),
            l.type_name(),
            r.type_name()
        ))),
    }
}

/// The `int <op> int` arm of [`binary_op`], shared with the VM's quickened
/// `Binary`/`AugLocal` handlers so specialization cannot drift from the
/// tree-walker (same checked math, same error messages).
///
/// # Errors
///
/// `ZeroDivisionError` and `OverflowError` as in [`binary_op`].
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn int_binary(op: BinOp, a: i64, b: i64) -> Result<Value, PyErr> {
    use BinOp::*;
    match op {
        Add => checked_int(a.checked_add(b)),
        Sub => checked_int(a.checked_sub(b)),
        Mul => checked_int(a.checked_mul(b)),
        Div => {
            if b == 0 {
                Err(PyErr::new(ErrKind::ZeroDivision, "division by zero"))
            } else {
                Ok(Value::Float(a as f64 / b as f64))
            }
        }
        FloorDiv => {
            if b == 0 {
                Err(PyErr::new(
                    ErrKind::ZeroDivision,
                    "integer division or modulo by zero",
                ))
            } else {
                Ok(Value::Int(python_floordiv(a, b)))
            }
        }
        Mod => {
            if b == 0 {
                Err(PyErr::new(
                    ErrKind::ZeroDivision,
                    "integer division or modulo by zero",
                ))
            } else {
                Ok(Value::Int(python_mod(a, b)))
            }
        }
        Pow => int_pow(a, b),
        BitAnd => Ok(Value::Int(a & b)),
        BitOr => Ok(Value::Int(a | b)),
        BitXor => Ok(Value::Int(a ^ b)),
        Shl => {
            if !(0..64).contains(&b) {
                Err(value_err("shift count out of range"))
            } else {
                checked_int(a.checked_shl(b as u32))
            }
        }
        Shr => {
            if !(0..64).contains(&b) {
                Err(value_err("shift count out of range"))
            } else {
                Ok(Value::Int(a >> b))
            }
        }
    }
}

/// The mixed-numeric arm of [`binary_op`] (operands already coerced to
/// `f64`), shared with the VM's quickened handlers.
///
/// # Errors
///
/// `ZeroDivisionError` and `TypeError` as in [`binary_op`].
#[cfg_attr(not(debug_assertions), inline(always))]
pub fn float_binary(op: BinOp, a: f64, b: f64) -> Result<Value, PyErr> {
    use BinOp::*;
    match op {
        Add => Ok(Value::Float(a + b)),
        Sub => Ok(Value::Float(a - b)),
        Mul => Ok(Value::Float(a * b)),
        Div => {
            if b == 0.0 {
                Err(PyErr::new(ErrKind::ZeroDivision, "float division by zero"))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        FloorDiv => {
            if b == 0.0 {
                Err(PyErr::new(
                    ErrKind::ZeroDivision,
                    "float floor division by zero",
                ))
            } else {
                Ok(Value::Float((a / b).floor()))
            }
        }
        Mod => {
            if b == 0.0 {
                Err(PyErr::new(ErrKind::ZeroDivision, "float modulo"))
            } else {
                let r = a % b;
                Ok(Value::Float(if r != 0.0 && (r < 0.0) != (b < 0.0) {
                    r + b
                } else {
                    r
                }))
            }
        }
        Pow => Ok(Value::Float(a.powf(b))),
        _ => Err(type_err(format!(
            "unsupported operand type(s) for {}: 'float'",
            op.symbol()
        ))),
    }
}

impl Value {
    /// Whether the value is `int`, `float`, or `bool`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }
}

fn checked_int(v: Option<i64>) -> Result<Value, PyErr> {
    v.map(Value::Int).ok_or_else(|| {
        PyErr::new(
            ErrKind::Custom("OverflowError".into()),
            "integer overflow (minipy has no big integers)",
        )
    })
}

/// Floor division with Python's round-toward-negative-infinity semantics.
pub fn python_floordiv(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Modulo with Python's sign-of-divisor semantics.
pub fn python_mod(a: i64, b: i64) -> i64 {
    let r = a % b;
    if r != 0 && (r < 0) != (b < 0) {
        r + b
    } else {
        r
    }
}

fn int_pow(a: i64, b: i64) -> Result<Value, PyErr> {
    if b < 0 {
        if a == 0 {
            return Err(PyErr::new(
                ErrKind::ZeroDivision,
                "0 cannot be raised to a negative power",
            ));
        }
        return Ok(Value::Float((a as f64).powi(b as i32)));
    }
    if b > u32::MAX as i64 {
        return Err(value_err("exponent too large"));
    }
    checked_int(a.checked_pow(b as u32))
}

/// Apply a unary operator with Python semantics.
///
/// # Errors
///
/// `TypeError` for unsupported operand types.
pub fn unary_op(op: UnaryOp, v: &Value) -> Result<Value, PyErr> {
    match op {
        UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
        UnaryOp::Neg => match v {
            Value::Int(i) => checked_int(i.checked_neg()),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Bool(b) => Ok(Value::Int(-(*b as i64))),
            other => Err(type_err(format!(
                "bad operand type for unary -: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Pos => match v {
            Value::Int(_) | Value::Float(_) => Ok(v.clone()),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            other => Err(type_err(format!(
                "bad operand type for unary +: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Invert => match v {
            Value::Int(i) => Ok(Value::Int(!i)),
            Value::Bool(b) => Ok(Value::Int(!(*b as i64))),
            other => Err(type_err(format!(
                "bad operand type for unary ~: '{}'",
                other.type_name()
            ))),
        },
    }
}

/// Evaluate a comparison with Python semantics.
///
/// # Errors
///
/// `TypeError` for unordered operand types.
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool, PyErr> {
    Ok(match op {
        CmpOp::Eq => l.py_eq(r),
        CmpOp::NotEq => !l.py_eq(r),
        CmpOp::Is => l.is_identical(r),
        CmpOp::IsNot => !l.is_identical(r),
        CmpOp::In => contains(r, l)?,
        CmpOp::NotIn => !contains(r, l)?,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let ord = py_ordering(l, r)?;
            match op {
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }
        }
    })
}

/// Total ordering of comparable values (numbers, strings, lists, tuples).
///
/// # Errors
///
/// `TypeError` for cross-type or unorderable comparisons.
pub fn py_ordering(l: &Value, r: &Value) -> Result<std::cmp::Ordering, PyErr> {
    if l.is_number() && r.is_number() {
        let a = l.as_float()?;
        let b = r.as_float()?;
        return a
            .partial_cmp(&b)
            .ok_or_else(|| value_err("cannot order NaN"));
    }
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::List(a), Value::List(b)) => {
            let a = a.read().clone();
            let b = b.read().clone();
            seq_ordering(&a, &b)
        }
        (Value::Tuple(a), Value::Tuple(b)) => seq_ordering(a, b),
        _ => Err(type_err(format!(
            "'<' not supported between instances of '{}' and '{}'",
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn seq_ordering(a: &[Value], b: &[Value]) -> Result<std::cmp::Ordering, PyErr> {
    for (x, y) in a.iter().zip(b.iter()) {
        if !x.py_eq(y) {
            return py_ordering(x, y);
        }
    }
    Ok(a.len().cmp(&b.len()))
}

fn contains(container: &Value, item: &Value) -> Result<bool, PyErr> {
    match container {
        Value::List(l) => Ok(l.read().iter().any(|v| v.py_eq(item))),
        Value::Tuple(t) => Ok(t.iter().any(|v| v.py_eq(item))),
        Value::Dict(d) => {
            let key = HKey::from_value(item)?;
            Ok(d.read().contains_key(&key))
        }
        Value::Str(s) => {
            let needle = item.as_str()?;
            Ok(s.contains(needle))
        }
        Value::Range(start, stop, step) => {
            let i = item.as_int()?;
            if *step > 0 {
                Ok(i >= *start && i < *stop && (i - start) % step == 0)
            } else if *step < 0 {
                Ok(i <= *start && i > *stop && (start - i) % (-step) == 0)
            } else {
                Ok(false)
            }
        }
        other => Err(type_err(format!(
            "argument of type '{}' is not iterable",
            other.type_name()
        ))),
    }
}

// ---- iteration ---------------------------------------------------------

/// An iterator over a dynamic value (snapshots mutable containers' shape).
pub enum ValueIter {
    /// Range iteration.
    Range {
        /// Next value.
        cur: i64,
        /// Exclusive stop.
        stop: i64,
        /// Step (nonzero).
        step: i64,
    },
    /// Live list iteration by index (reads under the lock each step).
    List {
        /// The shared list.
        list: Arc<crate::value::ObjLock<Vec<Value>>>,
        /// Next index.
        idx: usize,
    },
    /// Tuple iteration.
    Tuple {
        /// The tuple.
        items: Arc<Vec<Value>>,
        /// Next index.
        idx: usize,
    },
    /// String iteration (per character).
    Chars {
        /// Snapshot of characters.
        chars: Vec<char>,
        /// Next index.
        idx: usize,
    },
    /// Dict-key iteration (snapshot of keys).
    Keys {
        /// Snapshot of keys.
        keys: Vec<HKey>,
        /// Next index.
        idx: usize,
    },
}

impl ValueIter {
    /// Build an iterator for a value.
    ///
    /// # Errors
    ///
    /// `TypeError` if the value is not iterable.
    pub fn new(v: &Value) -> Result<ValueIter, PyErr> {
        Ok(match v {
            Value::Range(start, stop, step) => ValueIter::Range {
                cur: *start,
                stop: *stop,
                step: *step,
            },
            Value::List(l) => ValueIter::List {
                list: Arc::clone(l),
                idx: 0,
            },
            Value::Tuple(t) => ValueIter::Tuple {
                items: Arc::clone(t),
                idx: 0,
            },
            Value::Str(s) => ValueIter::Chars {
                chars: s.chars().collect(),
                idx: 0,
            },
            Value::Dict(d) => ValueIter::Keys {
                keys: d.read().keys().cloned().collect(),
                idx: 0,
            },
            other => {
                return Err(type_err(format!(
                    "'{}' object is not iterable",
                    other.type_name()
                )))
            }
        })
    }

    /// Materialize the remaining items into a vector.
    pub fn collect_vec(self) -> Vec<Value> {
        self.collect()
    }
}

impl Iterator for ValueIter {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        match self {
            ValueIter::Range { cur, stop, step } => {
                if (*step > 0 && *cur < *stop) || (*step < 0 && *cur > *stop) {
                    let v = *cur;
                    *cur += *step;
                    Some(Value::Int(v))
                } else {
                    None
                }
            }
            ValueIter::List { list, idx } => {
                let items = list.read();
                if *idx < items.len() {
                    let v = items[*idx].clone();
                    *idx += 1;
                    Some(v)
                } else {
                    None
                }
            }
            ValueIter::Tuple { items, idx } => {
                if *idx < items.len() {
                    let v = items[*idx].clone();
                    *idx += 1;
                    Some(v)
                } else {
                    None
                }
            }
            ValueIter::Chars { chars, idx } => {
                if *idx < chars.len() {
                    let v = Value::str(chars[*idx].to_string());
                    *idx += 1;
                    Some(v)
                } else {
                    None
                }
            }
            ValueIter::Keys { keys, idx } => {
                if *idx < keys.len() {
                    let v = keys[*idx].to_value();
                    *idx += 1;
                    Some(v)
                } else {
                    None
                }
            }
        }
    }
}
