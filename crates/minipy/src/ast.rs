//! Abstract syntax tree for minipy.
//!
//! The tree is deliberately close to Python's `ast` module shapes, because
//! the OMP4Py-style frontend (`omp4rs-pyfront`) rewrites it the same way the
//! paper's parser rewrites Python ASTs.

use std::sync::Arc;

/// A parsed source module (sequence of top-level statements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// A statement together with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement payload.
    pub kind: StmtKind,
    /// 1-based line of the statement's first token (0 for synthesized nodes).
    pub line: u32,
}

impl Stmt {
    /// Construct a statement with a line number.
    pub fn new(kind: StmtKind, line: u32) -> Stmt {
        Stmt { kind, line }
    }

    /// Construct a synthesized statement (line 0), used by AST transformers.
    pub fn synth(kind: StmtKind) -> Stmt {
        Stmt { kind, line: 0 }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for side effects.
    Expr(Expr),
    /// `t1 = t2 = value` — one or more targets.
    Assign { targets: Vec<Expr>, value: Expr },
    /// `target op= value`.
    AugAssign {
        target: Expr,
        op: BinOp,
        value: Expr,
    },
    /// `if`/`elif`/`else` chain (elif is nested in `orelse`).
    If {
        test: Expr,
        body: Vec<Stmt>,
        orelse: Vec<Stmt>,
    },
    /// `while test:`.
    While { test: Expr, body: Vec<Stmt> },
    /// `for target in iter:`.
    For {
        target: Expr,
        iter: Expr,
        body: Vec<Stmt>,
    },
    /// Function definition (shared so function values can hold the tree).
    FuncDef(Arc<FuncDef>),
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `pass`.
    Pass,
    /// `global a, b`.
    Global(Vec<String>),
    /// `nonlocal a, b`.
    Nonlocal(Vec<String>),
    /// `with ctx [as name], ...:`.
    With {
        items: Vec<WithItem>,
        body: Vec<Stmt>,
    },
    /// `try:` with handlers, `else`, `finally`.
    Try {
        body: Vec<Stmt>,
        handlers: Vec<ExceptHandler>,
        orelse: Vec<Stmt>,
        finalbody: Vec<Stmt>,
    },
    /// `raise [expr]`.
    Raise(Option<Expr>),
    /// `assert test[, msg]`.
    Assert { test: Expr, msg: Option<Expr> },
    /// `del target, ...`.
    Del(Vec<Expr>),
    /// `import name [as alias]` — resolved by the host's module registry.
    Import {
        module: String,
        alias: Option<String>,
    },
    /// `from module import *` or `from module import a, b`.
    FromImport {
        module: String,
        names: Vec<(String, Option<String>)>,
        star: bool,
    },
}

/// One `expr [as name]` item of a `with` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct WithItem {
    /// The context expression.
    pub context: Expr,
    /// Optional `as` binding name.
    pub alias: Option<String>,
}

/// One `except [Type [as name]]:` handler.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// Exception class name to match (`None` = bare `except:`).
    pub class_name: Option<String>,
    /// Optional `as` binding.
    pub alias: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Positional parameters (with optional defaults).
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
    /// 1-based line of the `def`.
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value expression, if any.
    pub default: Option<Expr>,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True`/`False`.
    Bool(bool),
    /// `None`.
    None,
    /// Name reference.
    Name(String),
    /// Binary arithmetic/bit operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnaryOp, operand: Box<Expr> },
    /// Short-circuit `and`/`or` over two or more values.
    BoolOp { op: BoolOpKind, values: Vec<Expr> },
    /// Chained comparison `a < b <= c`.
    Compare {
        left: Box<Expr>,
        ops: Vec<CmpOp>,
        comparators: Vec<Expr>,
    },
    /// Function or method call.
    Call {
        func: Box<Expr>,
        args: Vec<Expr>,
        kwargs: Vec<(String, Expr)>,
    },
    /// Attribute access `value.attr`.
    Attribute { value: Box<Expr>, attr: String },
    /// Subscript `value[index]` (index may be [`Expr::Slice`]).
    Index { value: Box<Expr>, index: Box<Expr> },
    /// Slice `lower:upper:step` — only valid inside [`Expr::Index`].
    Slice {
        lower: Option<Box<Expr>>,
        upper: Option<Box<Expr>>,
        step: Option<Box<Expr>>,
    },
    /// List display `[a, b]`.
    List(Vec<Expr>),
    /// Tuple display `(a, b)` or bare `a, b`.
    Tuple(Vec<Expr>),
    /// Dict display `{k: v}`.
    Dict(Vec<(Expr, Expr)>),
    /// Conditional expression `a if t else b`.
    IfExp {
        test: Box<Expr>,
        body: Box<Expr>,
        orelse: Box<Expr>,
    },
    /// `lambda params: expr`.
    Lambda { params: Vec<Param>, body: Box<Expr> },
}

impl Expr {
    /// Shorthand for a name expression.
    pub fn name(s: impl Into<String>) -> Expr {
        Expr::Name(s.into())
    }

    /// Shorthand for a call with positional args only.
    pub fn call(func: Expr, args: Vec<Expr>) -> Expr {
        Expr::Call {
            func: Box::new(func),
            args,
            kwargs: Vec::new(),
        }
    }

    /// Shorthand for attribute access.
    pub fn attr(value: Expr, attr: impl Into<String>) -> Expr {
        Expr::Attribute {
            value: Box::new(value),
            attr: attr.into(),
        }
    }

    /// Shorthand for subscripting.
    pub fn index(value: Expr, index: Expr) -> Expr {
        Expr::Index {
            value: Box::new(value),
            index: Box::new(index),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division — always float)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%` (Python sign semantics)
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// Python surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Pos,
    /// `not x`
    Not,
    /// `~x`
    Invert,
}

/// `and` / `or`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOpKind {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators (chainable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
    /// `is`
    Is,
    /// `is not`
    IsNot,
}

impl CmpOp {
    /// Python surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        }
    }
}
