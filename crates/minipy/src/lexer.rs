//! Indentation-aware lexer for the minipy source language.
//!
//! Produces the token stream consumed by [`crate::parser`]. Follows Python's
//! logical-line rules: indentation becomes `Indent`/`Dedent` tokens, newlines
//! inside brackets are ignored, and a trailing backslash joins lines.

use crate::error::{ErrKind, PyErr};
use crate::token::{Kw, Op, Tok, Token};

/// Tokenize minipy source text.
///
/// # Errors
///
/// Returns a [`PyErr`] with [`ErrKind::Syntax`] on malformed input:
/// inconsistent dedents, unterminated strings, bad numeric literals, tabs in
/// indentation mixed inconsistently, or unknown characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, PyErr> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    indents: Vec<usize>,
    paren_depth: usize,
    tokens: Vec<Token>,
    at_line_start: bool,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            indents: vec![0],
            paren_depth: 0,
            tokens: Vec::new(),
            at_line_start: true,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: Tok) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn err(&self, msg: impl Into<String>) -> PyErr {
        PyErr::at(ErrKind::Syntax, msg, self.line)
    }

    fn run(mut self) -> Result<Vec<Token>, PyErr> {
        let _ = self.src;
        while self.pos < self.chars.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.chars.len() {
                    break;
                }
            }
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                ' ' | '\t' => {
                    self.pos += 1;
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                '\\' if self.peek2() == Some('\n') => {
                    // Explicit line joining.
                    self.pos += 2;
                    self.line += 1;
                }
                '\r' => {
                    self.pos += 1;
                }
                '\n' => {
                    self.pos += 1;
                    if self.paren_depth == 0 {
                        // Suppress blank-line newlines: only emit if the last
                        // token on this logical line was meaningful.
                        if matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent) | None
                        ) {
                            // blank line: no token
                        } else {
                            self.push(Tok::Newline);
                        }
                        self.at_line_start = true;
                    }
                    self.line += 1;
                }
                '\'' | '"' => self.lex_string()?,
                c if c.is_ascii_digit() => self.lex_number()?,
                '.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_ident(),
                _ => self.lex_operator()?,
            }
        }
        // Terminate the last logical line.
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(Tok::Newline) | None
        ) {
            self.push(Tok::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(self.tokens)
    }

    /// Measure leading whitespace of a fresh logical line and emit
    /// Indent/Dedent tokens. Skips blank/comment-only lines entirely.
    fn handle_indentation(&mut self) -> Result<(), PyErr> {
        loop {
            let line_start = self.pos;
            let mut width = 0usize;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.pos += 1;
                    }
                    '\t' => {
                        // Tabs advance to the next multiple of 8, like CPython.
                        width = (width / 8 + 1) * 8;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank or comment-only line: consume and retry.
                Some('\n') => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                Some('\r') => {
                    self.pos += 1;
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                    continue;
                }
                None => {
                    self.pos = line_start;
                    self.pos = self.chars.len();
                    self.at_line_start = false;
                    return Ok(());
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(Tok::Indent);
                    } else if width < current {
                        while *self.indents.last().expect("indent stack never empty") > width {
                            self.indents.pop();
                            self.push(Tok::Dedent);
                        }
                        if *self.indents.last().expect("indent stack never empty") != width {
                            return Err(
                                self.err("unindent does not match any outer indentation level")
                            );
                        }
                    }
                    self.at_line_start = false;
                    return Ok(());
                }
            }
        }
    }

    fn lex_string(&mut self) -> Result<(), PyErr> {
        let quote = self.bump().expect("caller checked quote");
        // Triple-quoted?
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.pos += 2;
        }
        let mut out = String::new();
        loop {
            let c = match self.bump() {
                Some(c) => c,
                None => return Err(self.err("unterminated string literal")),
            };
            if c == quote {
                if !triple {
                    break;
                }
                if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                    self.pos += 2;
                    break;
                }
                out.push(c);
                continue;
            }
            if c == '\n' {
                if !triple {
                    return Err(self.err("unterminated string literal"));
                }
                self.line += 1;
                out.push(c);
                continue;
            }
            if c == '\\' {
                let esc = match self.bump() {
                    Some(e) => e,
                    None => return Err(self.err("unterminated escape sequence")),
                };
                match esc {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    '0' => out.push('\0'),
                    '\\' => out.push('\\'),
                    '\'' => out.push('\''),
                    '"' => out.push('"'),
                    '\n' => {
                        self.line += 1;
                    }
                    other => {
                        // Unknown escapes are kept verbatim, like Python (with a warning).
                        out.push('\\');
                        out.push(other);
                    }
                }
                continue;
            }
            out.push(c);
        }
        self.push(Tok::Str(out));
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), PyErr> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.pos += 2;
            let hex_start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.pos += 1;
            }
            let text: String = self.chars[hex_start..self.pos]
                .iter()
                .filter(|&&c| c != '_')
                .collect();
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| self.err("invalid hexadecimal literal"))?;
            self.push(Tok::Int(v));
            return Ok(());
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.pos += 1;
        }
        if self.peek() == Some('.') && self.peek2() != Some('.') {
            // Not a method call on an int literal: only treat as float when a
            // digit or end-of-number follows.
            let after = self.peek2();
            if after.is_none()
                || after.is_some_and(|c| c.is_ascii_digit() || !(c.is_alphabetic() || c == '_'))
                || matches!((after, self.peek3()), (Some('e') | Some('E'), Some(c)) if c.is_ascii_digit())
            {
                is_float = true;
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.pos += 1;
                }
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|&&c| c != '_')
            .collect();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err("invalid float literal"))?;
            self.push(Tok::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("invalid integer literal"))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match Kw::from_ident(&text) {
            Some(kw) => self.push(Tok::Keyword(kw)),
            None => self.push(Tok::Ident(text)),
        }
    }

    fn lex_operator(&mut self) -> Result<(), PyErr> {
        let c = self.bump().expect("caller checked char");
        let next = self.peek();
        let next2 = self.peek2();
        let op = match c {
            '+' => self.maybe_eq(Op::Plus, Op::PlusEq),
            '-' => {
                if next == Some('>') {
                    self.pos += 1;
                    Op::Arrow
                } else {
                    self.maybe_eq(Op::Minus, Op::MinusEq)
                }
            }
            '*' => {
                if next == Some('*') {
                    self.pos += 1;
                    self.maybe_eq(Op::DoubleStar, Op::DoubleStarEq)
                } else {
                    self.maybe_eq(Op::Star, Op::StarEq)
                }
            }
            '/' => {
                if next == Some('/') {
                    self.pos += 1;
                    self.maybe_eq(Op::DoubleSlash, Op::DoubleSlashEq)
                } else {
                    self.maybe_eq(Op::Slash, Op::SlashEq)
                }
            }
            '%' => self.maybe_eq(Op::Percent, Op::PercentEq),
            '=' => self.maybe_eq(Op::Eq, Op::EqEq),
            '!' => {
                if next == Some('=') {
                    self.pos += 1;
                    Op::NotEq
                } else {
                    return Err(self.err("unexpected character '!'"));
                }
            }
            '<' => {
                if next == Some('<') {
                    self.pos += 1;
                    self.maybe_eq(Op::Shl, Op::ShlEq)
                } else {
                    self.maybe_eq(Op::Lt, Op::Le)
                }
            }
            '>' => {
                if next == Some('>') {
                    self.pos += 1;
                    self.maybe_eq(Op::Shr, Op::ShrEq)
                } else {
                    self.maybe_eq(Op::Gt, Op::Ge)
                }
            }
            '&' => self.maybe_eq(Op::Amp, Op::AmpEq),
            '|' => self.maybe_eq(Op::Pipe, Op::PipeEq),
            '^' => self.maybe_eq(Op::Caret, Op::CaretEq),
            '~' => Op::Tilde,
            '(' => {
                self.paren_depth += 1;
                Op::LParen
            }
            ')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Op::RParen
            }
            '[' => {
                self.paren_depth += 1;
                Op::LBracket
            }
            ']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Op::RBracket
            }
            '{' => {
                self.paren_depth += 1;
                Op::LBrace
            }
            '}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Op::RBrace
            }
            ',' => Op::Comma,
            ':' => Op::Colon,
            ';' => Op::Semicolon,
            '.' => Op::Dot,
            '@' => Op::At,
            other => return Err(self.err(format!("unexpected character {other:?}"))),
        };
        let _ = next2;
        self.push(Tok::Op(op));
        Ok(())
    }

    fn maybe_eq(&mut self, plain: Op, with_eq: Op) -> Op {
        if self.peek() == Some('=') {
            self.pos += 1;
            with_eq
        } else {
            plain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = 1\n"),
            vec![
                Tok::Ident("x".into()),
                Tok::Op(Op::Eq),
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let toks = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(toks.contains(&Tok::Indent));
        assert!(toks.contains(&Tok::Dedent));
    }

    #[test]
    fn nested_dedents() {
        let toks = kinds("def f():\n    if x:\n        y = 1\n");
        let dedents = toks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_ignored() {
        let toks = kinds("x = 1\n\n\ny = 2\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn comments_ignored() {
        let toks = kinds("x = 1  # set x\n# whole line\ny = 2\n");
        assert!(!toks.iter().any(|t| matches!(t, Tok::Str(_))));
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn float_literals() {
        assert_eq!(kinds("1.5\n")[0], Tok::Float(1.5));
        assert_eq!(kinds("1e3\n")[0], Tok::Float(1000.0));
        assert_eq!(kinds("2.5e-1\n")[0], Tok::Float(0.25));
        assert_eq!(kinds(".5\n")[0], Tok::Float(0.5));
        assert_eq!(kinds("1.\n")[0], Tok::Float(1.0));
    }

    #[test]
    fn int_literals() {
        assert_eq!(kinds("42\n")[0], Tok::Int(42));
        assert_eq!(kinds("0xff\n")[0], Tok::Int(255));
        assert_eq!(kinds("1_000_000\n")[0], Tok::Int(1_000_000));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'a\\nb'\n")[0], Tok::Str("a\nb".into()));
        assert_eq!(kinds("\"q\\\"q\"\n")[0], Tok::Str("q\"q".into()));
    }

    #[test]
    fn triple_quoted_string() {
        assert_eq!(
            kinds("'''line1\nline2'''\n")[0],
            Tok::Str("line1\nline2".into())
        );
    }

    #[test]
    fn newlines_suppressed_in_brackets() {
        let toks = kinds("f(1,\n  2)\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn backslash_continuation() {
        let toks = kinds("x = 1 + \\\n    2\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn operators() {
        assert_eq!(kinds("a //= 2\n")[1], Tok::Op(Op::DoubleSlashEq));
        assert_eq!(kinds("a ** b\n")[1], Tok::Op(Op::DoubleStar));
        assert_eq!(kinds("a != b\n")[1], Tok::Op(Op::NotEq));
        assert_eq!(kinds("a <= b\n")[1], Tok::Op(Op::Le));
        assert_eq!(kinds("a << b\n")[1], Tok::Op(Op::Shl));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("for\n")[0], Tok::Keyword(Kw::For));
        assert_eq!(kinds("fort\n")[0], Tok::Ident("fort".into()));
    }

    #[test]
    fn bad_dedent_is_error() {
        assert!(tokenize("if x:\n    y = 1\n  z = 2\n").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc\n").is_err());
    }

    #[test]
    fn method_call_on_int_attribute_not_float() {
        // `1 .bit_length()` style is rare; but `x.5` invalid. Check `1.5.is_integer` lexes float then dot.
        let toks = kinds("(1.5).foo\n");
        assert!(toks.contains(&Tok::Float(1.5)));
        assert!(toks.contains(&Tok::Op(Op::Dot)));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("x = 1\ny = 2\n").unwrap();
        let y_tok = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("y".into()))
            .unwrap();
        assert_eq!(y_tok.line, 2);
    }

    #[test]
    fn final_line_without_newline() {
        let toks = kinds("x = 1");
        assert_eq!(toks.last(), Some(&Tok::Eof));
        assert!(toks.contains(&Tok::Newline));
    }

    #[test]
    fn decorator_tokens() {
        let toks = kinds("@omp\ndef f():\n    pass\n");
        assert_eq!(toks[0], Tok::Op(Op::At));
        assert_eq!(toks[1], Tok::Ident("omp".into()));
    }
}
