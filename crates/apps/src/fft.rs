//! Fast Fourier Transform (paper §IV-A *fft*).
//!
//! Iterative radix-2 Cooley–Tukey over a complex vector (separate re/im
//! arrays). Table I features: `parallel`, `for`, implicit barriers — one
//! parallel region per transform, a work-shared bit-reversal pass, then one
//! work-shared butterfly loop per stage with the stage boundary as the
//! implicit barrier.

use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{random_f64s, DEFAULT_SEED};

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, for | implicit barriers";

/// Problem parameters (paper: 16M complex numbers; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// log2 of the transform length.
    pub log2_n: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            log2_n: 12,
            seed: DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Transform length.
    pub fn n(&self) -> usize {
        1 << self.log2_n
    }
}

/// Generate the input signal (re, im).
pub fn input(p: &Params) -> (Vec<f64>, Vec<f64>) {
    let n = p.n();
    let data = random_f64s(2 * n, p.seed);
    (data[..n].to_vec(), data[n..].to_vec())
}

/// Sequential reference FFT (in place).
pub fn seq_fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    bit_reverse_permute(re, im);
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let (wr, wi) = (ang * k as f64).cos_sin();
                butterfly(re, im, start + k, start + k + len / 2, wr, wi);
            }
        }
        len <<= 1;
    }
}

trait CosSin {
    fn cos_sin(self) -> (f64, f64);
}
impl CosSin for f64 {
    fn cos_sin(self) -> (f64, f64) {
        (self.cos(), self.sin())
    }
}

#[inline]
fn butterfly(re: &mut [f64], im: &mut [f64], a: usize, b: usize, wr: f64, wi: f64) {
    let (tr, ti) = (re[b] * wr - im[b] * wi, re[b] * wi + im[b] * wr);
    let (ar, ai) = (re[a], im[a]);
    re[a] = ar + tr;
    im[a] = ai + ti;
    re[b] = ar - tr;
    im[b] = ai - ti;
}

fn bit_reverse_permute(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().rotate_left(bits) as usize & (n - 1);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
}

/// Checksum: sum of magnitudes (mode-independent).
pub fn checksum(re: &[f64], im: &[f64]) -> f64 {
    re.iter().zip(im).map(|(r, i)| (r * r + i * i).sqrt()).sum()
}

fn parallel_fft_impl(
    re: &mut [f64],
    im: &mut [f64],
    threads: usize,
    spec: ForSpec,
    backend: Backend,
) {
    let n = re.len();
    // Sequential bit-reversal (swap-based permutation does not decompose
    // into disjoint index writes); the stages dominate anyway.
    bit_reverse_permute(re, im);
    let re_s = SharedSlice::new(re);
    let im_s = SharedSlice::new(im);
    let cfg = ParallelConfig::new().num_threads(threads).backend(backend);
    parallel_region(&cfg, |ctx| {
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let pairs = (n / 2) as i64;
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            // Each flat index maps to one butterfly: disjoint (a, b) pairs.
            ctx.for_each(spec, 0..pairs, |t| {
                let t = t as usize;
                let group = t / half;
                let k = t % half;
                let a = group * len + k;
                let b = a + half;
                let (wr, wi) = ((ang * k as f64).cos(), (ang * k as f64).sin());
                // SAFETY: butterflies of one stage touch disjoint pairs.
                unsafe {
                    let (rb, ib) = (re_s.get(b), im_s.get(b));
                    let (tr, ti) = (rb * wr - ib * wi, rb * wi + ib * wr);
                    let (ar, ai) = (re_s.get(a), im_s.get(a));
                    re_s.set(a, ar + tr);
                    im_s.set(a, ai + ti);
                    re_s.set(b, ar - tr);
                    im_s.set(b, ai - ti);
                }
            });
            // `for_each` ends with the implicit barrier the stages need.
            len <<= 1;
        }
    });
}

/// CompiledDT: native `f64` arrays.
pub fn native(p: &Params, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let (mut re, mut im) = input(p);
    parallel_fft_impl(&mut re, &mut im, threads, ForSpec::new(), Backend::Atomic);
    (re, im)
}

/// Compiled: butterflies over boxed values stored in `minipy` lists.
pub fn dynamic(p: &Params, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let (re0, im0) = input(p);
    let n = re0.len();
    let re = Value::list(re0.iter().map(|&v| Value::Float(v)).collect());
    let im = Value::list(im0.iter().map(|&v| Value::Float(v)).collect());
    // Bit reversal on the boxed lists.
    if let (Value::List(rl), Value::List(il)) = (&re, &im) {
        let mut rl = rl.write();
        let mut il = il.write();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i as u64).reverse_bits().rotate_left(bits) as usize & (n - 1);
            if i < j {
                rl.swap(i, j);
                il.swap(i, j);
            }
        }
    }
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let pairs = (n / 2) as i64;
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            ctx.for_each(ForSpec::new(), 0..pairs, |t| {
                let t = t as usize;
                let group = t / half;
                let k = t % half;
                let a = group * len + k;
                let b = a + half;
                let (wr, wi) = ((ang * k as f64).cos(), (ang * k as f64).sin());
                if let (Value::List(rl), Value::List(il)) = (&re, &im) {
                    // Boxed element loads (per-object lock + unbox).
                    let (rb, ib, ar, ai) = {
                        let rl = rl.read();
                        let il = il.read();
                        (
                            rl[b].as_float().expect("re"),
                            il[b].as_float().expect("im"),
                            rl[a].as_float().expect("re"),
                            il[a].as_float().expect("im"),
                        )
                    };
                    let (tr, ti) = (rb * wr - ib * wi, rb * wi + ib * wr);
                    let mut rl = rl.write();
                    let mut il = il.write();
                    rl[a] = Value::Float(ar + tr);
                    il[a] = Value::Float(ai + ti);
                    rl[b] = Value::Float(ar - tr);
                    il[b] = Value::Float(ai - ti);
                }
            });
            len <<= 1;
        }
    });
    let out_re = match &re {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("re")).collect(),
        _ => unreachable!(),
    };
    let out_im = match &im {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("im")).collect(),
        _ => unreachable!(),
    };
    (out_re, out_im)
}

/// The minipy source (Pure/Hybrid).
pub const SOURCE: &str = r#"
from omp4py import *
import math

@omp
def fft(re, im, n, nthreads):
    # bit reversal (sequential)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j = j ^ bit
            bit = bit >> 1
        j = j | bit
        if i < j:
            t = re[i]
            re[i] = re[j]
            re[j] = t
            t = im[i]
            im[i] = im[j]
            im[j] = t
    with omp("parallel num_threads(nthreads)"):
        length = 2
        while length <= n:
            half = length // 2
            ang = -2.0 * math.pi / length
            with omp("for"):
                for t in range(n // 2):
                    group = t // half
                    k = t - group * half
                    a = group * length + k
                    b = a + half
                    wr = math.cos(ang * k)
                    wi = math.sin(ang * k)
                    rb = re[b]
                    ib = im[b]
                    tr = rb * wr - ib * wi
                    ti = rb * wi + ib * wr
                    ar = re[a]
                    ai = im[a]
                    re[a] = ar + tr
                    im[a] = ai + ti
                    re[b] = ar - tr
                    im[b] = ai - ti
            length = length * 2
    return 0
"#;

/// Pure/Hybrid: interpreted execution (mutates and returns re/im).
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let (re0, im0) = input(p);
    let runner = interpreted_runner(mode, SOURCE);
    let re = Value::list(re0.iter().map(|&v| Value::Float(v)).collect());
    let im = Value::list(im0.iter().map(|&v| Value::Float(v)).collect());
    runner
        .call_global(
            "fft",
            vec![
                re.clone(),
                im.clone(),
                Value::Int(p.n() as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("fft benchmark failed");
    let out = |v: &Value| match v {
        Value::List(l) => l.read().iter().map(|x| x.as_float().expect("c")).collect(),
        _ => unreachable!(),
    };
    (out(&re), out(&im))
}

/// PyOMP baseline (static schedule only).
pub fn pyomp_baseline(p: &Params, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let (mut re, mut im) = input(p);
    let n = re.len();
    bit_reverse_permute(&mut re, &mut im);
    {
        let re_s = SharedSlice::new(&mut re);
        let im_s = SharedSlice::new(&mut im);
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            // PyOMP's prange per stage (region per stage, static schedule).
            pyomp::prange(threads, (n / 2) as i64, |t| {
                let t = t as usize;
                let group = t / half;
                let k = t % half;
                let a = group * len + k;
                let b = a + half;
                let (wr, wi) = ((ang * k as f64).cos(), (ang * k as f64).sin());
                // SAFETY: disjoint butterfly pairs per stage.
                unsafe {
                    let (rb, ib) = (re_s.get(b), im_s.get(b));
                    let (tr, ti) = (rb * wr - ib * wi, rb * wi + ib * wr);
                    let (ar, ai) = (re_s.get(a), im_s.get(a));
                    re_s.set(a, ar + tr);
                    im_s.set(a, ai + ti);
                    re_s.set(b, ar - tr);
                    im_s.set(b, ai - ti);
                }
            });
            len <<= 1;
        }
    }
    (re, im)
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Never fails: every mode supports *fft*.
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    let ((re, im), seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => timed(|| pyomp_baseline(p, threads)),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&re, &im),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    /// Naive O(n²) DFT for verification.
    fn dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or_ = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or_[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or_, oi)
    }

    #[test]
    fn seq_fft_matches_naive_dft() {
        let p = Params { log2_n: 5, seed: 3 };
        let (mut re, mut im) = input(&p);
        let (er, ei) = dft(&re, &im);
        seq_fft(&mut re, &mut im);
        for k in 0..re.len() {
            assert!(close(re[k], er[k], 1e-9), "re[{k}]: {} vs {}", re[k], er[k]);
            assert!(close(im[k], ei[k], 1e-9), "im[{k}]");
        }
    }

    #[test]
    fn native_matches_seq() {
        let p = Params { log2_n: 8, seed: 4 };
        let (mut re, mut im) = input(&p);
        seq_fft(&mut re, &mut im);
        let (pr, pi_) = native(&p, 4);
        assert!(close(checksum(&pr, &pi_), checksum(&re, &im), 1e-10));
        assert!(pr.iter().zip(&re).all(|(a, b)| close(*a, *b, 1e-9)));
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = Params { log2_n: 6, seed: 4 };
        let (mut re, mut im) = input(&p);
        seq_fft(&mut re, &mut im);
        let (pr, pi_) = dynamic(&p, 3);
        assert!(close(checksum(&pr, &pi_), checksum(&re, &im), 1e-10));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params { log2_n: 4, seed: 5 };
        let (mut re, mut im) = input(&p);
        seq_fft(&mut re, &mut im);
        for mode in [Mode::Pure, Mode::Hybrid] {
            let (pr, pi_) = interpreted(mode, &p, 2);
            assert!(
                close(checksum(&pr, &pi_), checksum(&re, &im), 1e-9),
                "{mode}: {} vs {}",
                checksum(&pr, &pi_),
                checksum(&re, &im)
            );
        }
    }

    #[test]
    fn pyomp_matches_seq() {
        let p = Params { log2_n: 8, seed: 4 };
        let (mut re, mut im) = input(&p);
        seq_fft(&mut re, &mut im);
        let (pr, pi_) = pyomp_baseline(&p, 4);
        assert!(close(checksum(&pr, &pi_), checksum(&re, &im), 1e-10));
    }
}
