//! Maze pathfinding by task-parallel BFS (paper §IV-A *bfs*/*maze*).
//!
//! Table I features: `parallel`, `single`, `task`. The maze is a square
//! grid (entrance top-left, exit bottom-right, `0` = path, `1` = wall);
//! each feasible move spawns a task, exactly as the paper describes. The
//! distance array is relaxed monotonically, so racy re-expansions are
//! benign and the fixed point is the true BFS distance (verified against
//! the sequential BFS in `minigraph`).
//!
//! The paper reports that PyOMP fails with a Numba error on this benchmark.

use std::sync::atomic::{AtomicUsize, Ordering};

use minigraph::{maze_grid, Maze};
use minipy::Value;
use omp4rs::exec::{parallel_region, ParallelConfig, TaskCtx};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::workloads::DEFAULT_SEED;

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, single, task | implicit barriers";

/// Problem parameters (paper: 2.1k×2.1k grid; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Grid side length.
    pub side: usize,
    /// Wall probability (a carved path keeps the maze solvable).
    pub wall_probability: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            side: 61,
            wall_probability: 0.35,
            seed: DEFAULT_SEED,
        }
    }
}

/// Build the maze for the parameters.
pub fn maze(p: &Params) -> Maze {
    maze_grid(p.side, p.wall_probability, p.seed)
}

/// Sequential reference: BFS distance from entrance to exit.
pub fn seq(p: &Params) -> usize {
    let m = maze(p);
    let g = m.to_graph();
    minigraph::bfs_shortest_path_len(&g, 0, m.idx(p.side - 1, p.side - 1))
        .expect("generated mazes are always solvable")
}

fn expand<'sc>(tc: &TaskCtx<'sc>, m: &'sc Maze, dist: &'sc [AtomicUsize], r: usize, c: usize) {
    let d = dist[m.idx(r, c)].load(Ordering::Acquire);
    for (nr, nc) in m.open_neighbors(r, c) {
        let idx = m.idx(nr, nc);
        let mut cur = dist[idx].load(Ordering::Acquire);
        loop {
            if d + 1 >= cur {
                break;
            }
            match dist[idx].compare_exchange(cur, d + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    // A feasible move improves the cell: spawn a task.
                    tc.task(move |tc| expand(tc, m, dist, nr, nc));
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// CompiledDT: native task-parallel relaxation.
pub fn native(p: &Params, threads: usize) -> usize {
    let m = maze(p);
    let n = p.side * p.side;
    let dist: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    dist[0].store(0, Ordering::Release);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    {
        let m = &m;
        let dist = &dist[..];
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                ctx.task(move |tc| expand(tc, m, dist, 0, 0));
            });
        });
    }
    dist[n - 1].load(Ordering::Acquire)
}

/// Compiled: the same task relaxation over a boxed distance list guarded by
/// a critical section (dynamic values have no CAS, matching Python).
pub fn dynamic(p: &Params, threads: usize) -> usize {
    let m = std::sync::Arc::new(maze(p));
    let n = p.side * p.side;
    let dist = Value::list(
        (0..n)
            .map(|i| Value::Int(if i == 0 { 0 } else { i64::MAX }))
            .collect(),
    );

    fn expand_dyn(tc: &TaskCtx<'_>, m: std::sync::Arc<Maze>, dist: Value, r: usize, c: usize) {
        let d = match &dist {
            Value::List(l) => l.read()[m.idx(r, c)].as_int().expect("d"),
            _ => unreachable!(),
        };
        for (nr, nc) in m.open_neighbors(r, c) {
            let idx = m.idx(nr, nc);
            let improved = omp4rs::locks::critical(Some("bfs_dyn"), || {
                if let Value::List(l) = &dist {
                    let mut l = l.write();
                    let cur = l[idx].as_int().expect("cur");
                    if d + 1 < cur {
                        l[idx] = Value::Int(d + 1);
                        return true;
                    }
                }
                false
            });
            if improved {
                let m2 = std::sync::Arc::clone(&m);
                let dist2 = dist.clone();
                tc.task(move |tc| expand_dyn(tc, m2, dist2, nr, nc));
            }
        }
    }

    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        ctx.single_nowait(|| {
            let m2 = std::sync::Arc::clone(&m);
            let dist2 = dist.clone();
            ctx.task(move |tc| expand_dyn(tc, m2, dist2, 0, 0));
        });
    });
    match &dist {
        Value::List(l) => l.read()[n - 1].as_int().expect("d") as usize,
        _ => unreachable!(),
    }
}

/// The minipy source (Pure/Hybrid). `maze` is a flat list of 0/1 cells.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def expand(maze, dist, side, r, c):
    d = dist[r * side + c]
    moves = []
    if r > 0 and maze[(r - 1) * side + c] == 0:
        moves.append((r - 1, c))
    if r + 1 < side and maze[(r + 1) * side + c] == 0:
        moves.append((r + 1, c))
    if c > 0 and maze[r * side + c - 1] == 0:
        moves.append((r, c - 1))
    if c + 1 < side and maze[r * side + c + 1] == 0:
        moves.append((r, c + 1))
    for nr, nc in moves:
        updated = False
        with omp("critical"):
            if d + 1 < dist[nr * side + nc]:
                dist[nr * side + nc] = d + 1
                updated = True
        if updated:
            with omp("task firstprivate(nr, nc)"):
                expand(maze, dist, side, nr, nc)
    return 0

@omp
def bfs(maze, dist, side, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            dist[0] = 0
            expand(maze, dist, side, 0, 0)
    return dist[side * side - 1]
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> usize {
    let m = maze(p);
    let runner = interpreted_runner(mode, SOURCE);
    let cells = Value::list(m.cells.iter().map(|&c| Value::Int(c as i64)).collect());
    let n = p.side * p.side;
    let dist = Value::list(
        (0..n)
            .map(|i| Value::Int(if i == 0 { 0 } else { i64::MAX }))
            .collect(),
    );
    let result = runner
        .call_global(
            "bfs",
            vec![
                cells,
                dist,
                Value::Int(p.side as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("bfs benchmark failed");
    result.as_int().expect("distance") as usize
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns the paper's Numba error for [`Mode::PyOmp`].
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("bfs")
            .expect("bfs unsupported")
            .to_owned());
    }
    let (dist, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: dist as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            side: 17,
            wall_probability: 0.3,
            seed: 31,
        }
    }

    #[test]
    fn seq_finds_path() {
        let p = small();
        let d = seq(&p);
        assert!(d >= 2 * (p.side - 1));
        assert!(d < p.side * p.side);
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = seq(&p);
        for threads in [1, 4] {
            assert_eq!(native(&p, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert_eq!(dynamic(&p, 3), seq(&p));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            side: 9,
            wall_probability: 0.25,
            seed: 32,
        };
        let reference = seq(&p);
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert_eq!(interpreted(mode, &p, 2), reference, "{mode}");
        }
    }

    #[test]
    fn pyomp_reports_numba_error() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("Numba"), "{err}");
    }

    #[test]
    fn open_maze_distance_is_manhattan() {
        let p = Params {
            side: 12,
            wall_probability: 0.0,
            seed: 1,
        };
        assert_eq!(native(&p, 4), 2 * (p.side - 1));
    }
}
