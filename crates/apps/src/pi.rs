//! Riemann integration of π (paper Fig. 1 / §IV-A *pi*).
//!
//! Table I features: `parallel for reduction(+)`, implicit barriers.

use minipy::ast::BinOp;
use minipy::interp::binary_op;
use minipy::Value;

use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, for | reduction(+) | implicit barriers";

/// Problem parameters (paper: 20 billion intervals; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of integration intervals.
    pub n: i64,
}

impl Default for Params {
    fn default() -> Params {
        Params { n: 200_000 }
    }
}

/// Sequential reference.
pub fn seq(p: &Params) -> f64 {
    let w = 1.0 / p.n as f64;
    let mut acc = 0.0;
    for i in 0..p.n {
        let x = (i as f64 + 0.5) * w;
        acc += 4.0 / (1.0 + x * x);
    }
    acc * w
}

/// CompiledDT: native `f64` loop (Cython with type annotations).
pub fn native(p: &Params, threads: usize) -> f64 {
    let n = p.n;
    let w = 1.0 / n as f64;
    let result = parking_lot::Mutex::new(0.0f64);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let local = ctx.for_reduce(
            ForSpec::new(),
            0..n,
            0.0f64,
            |i, acc| {
                let x = (i as f64 + 0.5) * w;
                *acc += 4.0 / (1.0 + x * x);
            },
            |a, b| a + b,
        );
        ctx.master(|| *result.lock() = local * w);
    });
    result.into_inner()
}

/// Compiled: the same loop over boxed dynamic values (Cython without type
/// annotations — every operation dispatches on boxed objects).
pub fn dynamic(p: &Params, threads: usize) -> f64 {
    let n = p.n;
    let w = Value::Float(1.0 / n as f64);
    let half = Value::Float(0.5);
    let four = Value::Float(4.0);
    let one = Value::Float(1.0);
    let result = parking_lot::Mutex::new(Value::Float(0.0));
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let local = ctx.for_reduce(
            ForSpec::new(),
            0..n,
            Value::Float(0.0),
            |i, acc: &mut Value| {
                let x = binary_op(
                    BinOp::Mul,
                    &binary_op(BinOp::Add, &Value::Int(i), &half).expect("add"),
                    &w,
                )
                .expect("mul");
                let denom = binary_op(
                    BinOp::Add,
                    &one,
                    &binary_op(BinOp::Mul, &x, &x).expect("sq"),
                )
                .expect("denom");
                let term = binary_op(BinOp::Div, &four, &denom).expect("div");
                *acc = binary_op(BinOp::Add, acc, &term).expect("acc");
            },
            |a, b| binary_op(BinOp::Add, &a, &b).expect("combine"),
        );
        ctx.master(|| {
            *result.lock() = binary_op(BinOp::Mul, &local, &w).expect("scale");
        });
    });
    result.into_inner().as_float().expect("pi is a float")
}

/// The minipy source (paper Fig. 1, verbatim shape).
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def pi(n, nthreads):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(nthreads)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> f64 {
    let runner = interpreted_runner(mode, SOURCE);
    runner
        .call_global("pi", vec![Value::Int(p.n), Value::Int(threads as i64)])
        .expect("pi benchmark failed")
        .as_float()
        .expect("pi returns float")
}

/// PyOMP baseline: static-schedule native loop through the restricted API.
pub fn pyomp_baseline(p: &Params, threads: usize) -> f64 {
    let n = p.n;
    let w = 1.0 / n as f64;
    let acc = pyomp::prange_reduce_sum(threads, n, |i| {
        let x = (i as f64 + 0.5) * w;
        4.0 / (1.0 + x * x)
    });
    acc * w
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns an error string for unsupported modes (none here: every mode
/// supports *pi*).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    // Interpreted sizes are scaled: the paper uses the same problem sizes
    // everywhere, but a tree-walking interpreter at 20G intervals would take
    // hours; the bench harness scales per-mode and reports per-iteration
    // costs. Here `p.n` is taken as-is.
    let (value, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => timed(|| pyomp_baseline(p, threads)),
    };
    Ok(BenchOutput {
        seconds,
        check: value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn seq_converges() {
        let v = seq(&Params { n: 100_000 });
        assert!(close(v, PI, 1e-8), "{v}");
    }

    #[test]
    fn native_matches_seq() {
        let p = Params { n: 50_000 };
        assert!(close(native(&p, 4), seq(&p), 1e-10));
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = Params { n: 10_000 };
        assert!(close(dynamic(&p, 3), seq(&p), 1e-10));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params { n: 2_000 };
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(close(interpreted(mode, &p, 2), seq(&p), 1e-10), "{mode}");
        }
    }

    #[test]
    fn pyomp_matches_seq() {
        let p = Params { n: 50_000 };
        assert!(close(pyomp_baseline(&p, 4), seq(&p), 1e-10));
    }

    #[test]
    fn run_all_modes() {
        let p = Params { n: 1_000 };
        for mode in Mode::all() {
            let out = run(mode, 2, &p).unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert!(close(out.check, PI, 1e-3), "{mode}: {}", out.check);
            assert!(out.seconds >= 0.0);
        }
    }
}
