//! Wavefront (doacross-style) stencil over a blocked 2-D table.
//!
//! The recurrence `t[i][j] = w[i][j] + 0.5·t[i-1][j] + 0.5·t[i][j-1]`
//! carries dependences along both axes, so no plain work-shared loop can
//! run it — the classic OpenMP answer is one task per block with
//! `depend(in: west, north) depend(out: self)`, letting the dependence
//! graph unroll the anti-diagonal wavefront automatically. This benchmark
//! exists to exercise exactly that: the whole task graph is submitted
//! eagerly from a `single`, and the `depgraph` runtime orders it.

use minipy::Value;
use omp4rs::exec::{parallel_region, DepSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{random_f64s, DEFAULT_SEED};

/// Table I-style feature row for this benchmark.
pub const FEATURES: &str = "parallel, single, task depend(in/out) | wavefront DAG";

/// Problem parameters. `n` must be a multiple of `block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Table side length.
    pub n: usize,
    /// Block side length (task granularity).
    pub block: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 96,
            block: 16,
            seed: DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Blocks per side.
    pub fn nb(&self) -> usize {
        assert!(
            self.block > 0 && self.n.is_multiple_of(self.block),
            "n must be a multiple of block"
        );
        self.n / self.block
    }
}

/// The input weight table (flat, row-major).
pub fn input(p: &Params) -> Vec<f64> {
    random_f64s(p.n * p.n, p.seed)
}

/// Sequential reference: the recurrence cell by cell.
pub fn seq(p: &Params) -> Vec<f64> {
    let n = p.n;
    let mut t = input(p);
    for i in 0..n {
        for j in 0..n {
            let up = if i > 0 { t[(i - 1) * n + j] } else { 0.0 };
            let left = if j > 0 { t[i * n + j - 1] } else { 0.0 };
            t[i * n + j] += 0.5 * up + 0.5 * left;
        }
    }
    t
}

/// Checksum of a table.
pub fn checksum(t: &[f64]) -> f64 {
    t.iter().sum()
}

/// Dependence key for block `(bi, bj)` (shifted so the virtual `(-1, ·)`
/// and `(·, -1)` border keys are distinct and never written — an `in` dep
/// on a never-written key is vacuously ready).
fn key(bi: i64, bj: i64) -> u64 {
    (((bi + 1) as u64) << 32) | (bj + 1) as u64
}

fn block_spec(bi: usize, bj: usize) -> DepSpec {
    DepSpec::new()
        .input(key(bi as i64 - 1, bj as i64))
        .input(key(bi as i64, bj as i64 - 1))
        .output(key(bi as i64, bj as i64))
}

/// Update one block in place (rows `i0..i0+bs`, cols `j0..j0+bs`).
///
/// # Safety
///
/// The caller must guarantee exclusive access to the block and completed
/// west/north neighbors — exactly what the dependence graph provides.
unsafe fn block_native(t: &SharedSlice<'_, f64>, n: usize, bs: usize, bi: usize, bj: usize) {
    for i in bi * bs..(bi + 1) * bs {
        for j in bj * bs..(bj + 1) * bs {
            let up = if i > 0 { t.get((i - 1) * n + j) } else { 0.0 };
            let left = if j > 0 { t.get(i * n + j - 1) } else { 0.0 };
            let v = t.get(i * n + j) + 0.5 * up + 0.5 * left;
            t.set(i * n + j, v);
        }
    }
}

/// CompiledDT: native `f64` table, one dependence task per block.
pub fn native(p: &Params, threads: usize) -> Vec<f64> {
    let nb = p.nb();
    let (n, bs) = (p.n, p.block);
    let mut t = input(p);
    {
        let shared = SharedSlice::new(&mut t);
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        let shared = &shared;
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                for bi in 0..nb {
                    for bj in 0..nb {
                        ctx.task_depend(block_spec(bi, bj), move |_| {
                            // SAFETY: depend(in: west, north) depend(out:
                            // self) gives exclusive block access in order.
                            unsafe { block_native(shared, n, bs, bi, bj) };
                        });
                    }
                }
            });
        });
    }
    t
}

/// Compiled: the same task graph over a boxed value table.
pub fn dynamic(p: &Params, threads: usize) -> Vec<f64> {
    let nb = p.nb();
    let (n, bs) = (p.n, p.block);
    let t = Value::list(input(p).into_iter().map(Value::Float).collect());
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        ctx.single_nowait(|| {
            for bi in 0..nb {
                for bj in 0..nb {
                    let t = t.clone();
                    ctx.task_depend(block_spec(bi, bj), move |_| {
                        let Value::List(cells) = &t else {
                            unreachable!()
                        };
                        for i in bi * bs..(bi + 1) * bs {
                            for j in bj * bs..(bj + 1) * bs {
                                let mut cells = cells.write();
                                let at = |c: &[Value], idx: usize| -> f64 {
                                    c[idx].as_float().expect("cell")
                                };
                                let up = if i > 0 {
                                    at(&cells, (i - 1) * n + j)
                                } else {
                                    0.0
                                };
                                let left = if j > 0 {
                                    at(&cells, i * n + j - 1)
                                } else {
                                    0.0
                                };
                                let v = at(&cells, i * n + j) + 0.5 * up + 0.5 * left;
                                cells[i * n + j] = Value::Float(v);
                            }
                        }
                    });
                }
            }
        });
    });
    match &t {
        Value::List(cells) => cells
            .read()
            .iter()
            .map(|v| v.as_float().expect("cell"))
            .collect(),
        _ => unreachable!(),
    }
}

/// The minipy source (Pure/Hybrid). Tuple `depend` items key the blocks;
/// the border keys `(-1, ·)`/`(·, -1)` are never written, so first-row and
/// first-column blocks release immediately.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def wf_block(t, w, n, bs, bi, bj):
    for i in range(bi * bs, bi * bs + bs):
        for j in range(bj * bs, bj * bs + bs):
            up = 0.0
            if i > 0:
                up = t[(i - 1) * n + j]
            left = 0.0
            if j > 0:
                left = t[i * n + j - 1]
            t[i * n + j] = w[i * n + j] + 0.5 * up + 0.5 * left
    return 0

@omp
def wavefront(t, w, n, bs, nb, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            for bi in range(nb):
                for bj in range(nb):
                    with omp("task depend(in: (bi - 1, bj), (bi, bj - 1)) depend(out: (bi, bj)) firstprivate(bi, bj)"):
                        wf_block(t, w, n, bs, bi, bj)
    return 0
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<f64> {
    let nb = p.nb();
    let w0 = input(p);
    let runner = interpreted_runner(mode, SOURCE);
    let t = Value::list(w0.iter().map(|&v| Value::Float(v)).collect());
    let w = Value::list(w0.into_iter().map(Value::Float).collect());
    runner
        .call_global(
            "wavefront",
            vec![
                t.clone(),
                w,
                Value::Int(p.n as i64),
                Value::Int(p.block as i64),
                Value::Int(nb as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("wavefront benchmark failed");
    match &t {
        Value::List(cells) => cells
            .read()
            .iter()
            .map(|v| v.as_float().expect("cell"))
            .collect(),
        _ => unreachable!(),
    }
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns the PyOMP capability error for [`Mode::PyOmp`] (no `depend`).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("wavefront")
            .expect("wavefront unsupported")
            .to_owned());
    }
    let (t, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            n: 24,
            block: 8,
            seed: 41,
        }
    }

    #[test]
    fn seq_accumulates_wavefront() {
        let p = small();
        let t = seq(&p);
        // The recurrence only adds positive mass, growing toward the
        // bottom-right corner.
        let w = input(&p);
        assert!(t[p.n * p.n - 1] > w[p.n * p.n - 1]);
        assert!(checksum(&t) > checksum(&w));
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = checksum(&seq(&p));
        for threads in [1, 4] {
            assert!(
                close(checksum(&native(&p, threads)), reference, 1e-12),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert!(close(checksum(&dynamic(&p, 3)), checksum(&seq(&p)), 1e-12));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            n: 12,
            block: 4,
            seed: 43,
        };
        let reference = checksum(&seq(&p));
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(
                close(checksum(&interpreted(mode, &p, 2)), reference, 1e-9),
                "{mode}"
            );
        }
    }

    #[test]
    fn pyomp_reports_capability_error() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("depend"), "{err}");
    }
}
