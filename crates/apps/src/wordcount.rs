//! Word count over a text corpus (paper §IV-B *wordcount*).
//!
//! String- and dict-heavy: per-thread dictionaries are filled from
//! work-shared line chunks and merged under `critical`. The paper uses the
//! Spanish Wikipedia dump; the artifact falls back to a seeded synthetic
//! corpus when no file is given — that fallback (Zipf-distributed words,
//! varying line lengths) is what [`crate::workloads::zipf_corpus`]
//! implements. Line-length variance creates the load imbalance that makes
//! dynamic scheduling win in Fig. 7.
//!
//! PyOMP cannot run this benchmark (no dict support in its Numba release).

use std::collections::HashMap;
use std::sync::Arc;

use minipy::{HKey, Value};
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::{Backend, ScheduleKind};
use parking_lot::Mutex;

use crate::modes::{timed, BenchOutput, Mode};
use crate::pyomp;
use crate::workloads::{zipf_corpus, DEFAULT_SEED};

/// Features exercised (Fig. 6/7 benchmark; not part of Table I).
pub const FEATURES: &str = "parallel, for, critical merge | schedule sweep";

/// Problem parameters (paper: 21 GB eswiki dump; scaled synthetic default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of corpus lines.
    pub lines: usize,
    /// Average words per line (actual lengths vary ±50%).
    pub words_per_line: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Workload seed.
    pub seed: u64,
    /// Schedule for the line loop (Fig. 7 sweeps this; paper chunk 300).
    pub schedule: ScheduleKind,
    /// Chunk size.
    pub chunk: Option<u64>,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            lines: 4_000,
            words_per_line: 24,
            vocab: 5_000,
            seed: DEFAULT_SEED,
            schedule: ScheduleKind::Dynamic,
            chunk: Some(300),
        }
    }
}

/// Build the corpus.
pub fn corpus(p: &Params) -> Vec<String> {
    zipf_corpus(p.lines, p.words_per_line, p.vocab, p.seed)
}

/// Sequential reference.
pub fn seq(lines: &[String]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for line in lines {
        for word in line.split_whitespace() {
            *counts.entry(word.to_owned()).or_insert(0) += 1;
        }
    }
    counts
}

/// Mode-independent checksum: distinct words and total occurrences.
pub fn checksum(counts: &HashMap<String, u64>) -> f64 {
    let total: u64 = counts.values().sum();
    counts.len() as f64 * 1e9 + total as f64
}

fn for_spec(p: &Params) -> ForSpec {
    ForSpec::new().schedule(p.schedule, p.chunk)
}

/// CompiledDT: native `HashMap` per thread, merged under `critical`.
pub fn native(p: &Params, threads: usize, lines: &[String]) -> HashMap<String, u64> {
    let n = lines.len() as i64;
    let merged: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let mut local: HashMap<String, u64> = HashMap::new();
        ctx.for_each(for_spec(p), 0..n, |i| {
            for word in lines[i as usize].split_whitespace() {
                *local.entry(word.to_owned()).or_insert(0) += 1;
            }
        });
        ctx.critical(Some("wordcount_merge"), || {
            let mut m = merged.lock();
            for (k, v) in local.drain() {
                *m.entry(k).or_insert(0) += v;
            }
        });
    });
    merged.into_inner()
}

/// Compiled: per-thread boxed dicts (`minipy::Value::Dict`) and boxed
/// string splitting — Cython cannot optimize str/dict operations, which is
/// why the paper sees only slight gains here.
pub fn dynamic(p: &Params, threads: usize, lines: &[String]) -> HashMap<String, u64> {
    let boxed_lines: Vec<Value> = lines.iter().map(|l| Value::str(l.clone())).collect();
    let n = boxed_lines.len() as i64;
    let merged = Value::dict();
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let local = Value::dict();
        ctx.for_each(for_spec(p), 0..n, |i| {
            let line = &boxed_lines[i as usize];
            let text = line.as_str().expect("line").to_owned();
            if let Value::Dict(map) = &local {
                for word in text.split_whitespace() {
                    let key = HKey::Str(Arc::new(word.to_owned()));
                    let mut map = map.write();
                    let next = match map.get(&key) {
                        Some(v) => v.as_int().expect("count") + 1,
                        None => 1,
                    };
                    map.insert(key, Value::Int(next));
                }
            }
        });
        ctx.critical(Some("wordcount_merge_dyn"), || {
            if let (Value::Dict(dst), Value::Dict(src)) = (&merged, &local) {
                let mut dst = dst.write();
                for (k, v) in src.read().iter() {
                    let add = v.as_int().expect("count");
                    let next = match dst.get(k) {
                        Some(prev) => prev.as_int().expect("count") + add,
                        None => add,
                    };
                    dst.insert(k.clone(), Value::Int(next));
                }
            }
        });
    });
    let mut out = HashMap::new();
    if let Value::Dict(map) = &merged {
        for (k, v) in map.read().iter() {
            if let HKey::Str(s) = k {
                out.insert(s.to_string(), v.as_int().expect("count") as u64);
            }
        }
    }
    out
}

/// Interpreted source, parameterized by the schedule clause.
pub fn source_with_schedule(schedule: &str) -> String {
    format!(
        r#"
from omp4py import *

@omp
def wordcount(lines, n, nthreads):
    counts = {{}}
    with omp("parallel num_threads(nthreads)"):
        local = {{}}
        with omp("for {schedule}"):
            for i in range(n):
                for w in lines[i].split():
                    local[w] = local.get(w, 0) + 1
        with omp("critical"):
            for k in local:
                counts[k] = counts.get(k, 0) + local[k]
    return counts
"#
    )
}

fn schedule_clause(p: &Params) -> String {
    match p.chunk {
        Some(c) => format!("schedule({}, {c})", p.schedule.name()),
        None => format!("schedule({})", p.schedule.name()),
    }
}

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(
    mode: Mode,
    p: &Params,
    threads: usize,
    lines: &[String],
) -> HashMap<String, u64> {
    let source = source_with_schedule(&schedule_clause(p));
    let runner = crate::modes::interpreted_runner(mode, &source);
    let boxed = Value::list(lines.iter().map(|l| Value::str(l.clone())).collect());
    let result = runner
        .call_global(
            "wordcount",
            vec![
                boxed,
                Value::Int(lines.len() as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("wordcount benchmark failed");
    let mut out = HashMap::new();
    if let Value::Dict(map) = &result {
        for (k, v) in map.read().iter() {
            if let HKey::Str(s) = k {
                out.insert(s.to_string(), v.as_int().expect("count") as u64);
            }
        }
    }
    out
}

/// Run in any mode, timed (corpus generation excluded).
///
/// # Errors
///
/// Returns the paper's incompatibility for [`Mode::PyOmp`] (dicts).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("wordcount")
            .expect("wordcount unsupported")
            .to_owned());
    }
    let lines = corpus(p);
    let (counts, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads, &lines)),
        Mode::Compiled => timed(|| dynamic(p, threads, &lines)),
        Mode::CompiledDT => timed(|| native(p, threads, &lines)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            lines: 120,
            words_per_line: 10,
            vocab: 200,
            seed: 51,
            schedule: ScheduleKind::Dynamic,
            chunk: Some(8),
        }
    }

    #[test]
    fn seq_counts_words() {
        let lines = vec!["a b a".to_owned(), "b c".to_owned()];
        let counts = seq(&lines);
        assert_eq!(counts["a"], 2);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let lines = corpus(&p);
        let reference = seq(&lines);
        for threads in [1, 4] {
            let counts = native(&p, threads, &lines);
            assert_eq!(counts, reference, "threads={threads}");
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        let lines = corpus(&p);
        assert_eq!(dynamic(&p, 3, &lines), seq(&lines));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            lines: 40,
            ..small()
        };
        let lines = corpus(&p);
        let reference = seq(&lines);
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert_eq!(interpreted(mode, &p, 2, &lines), reference, "{mode}");
        }
    }

    #[test]
    fn schedules_agree() {
        let lines = corpus(&small());
        let reference = seq(&lines);
        for schedule in [
            ScheduleKind::Static,
            ScheduleKind::Dynamic,
            ScheduleKind::Guided,
        ] {
            let p = Params {
                schedule,
                ..small()
            };
            assert_eq!(native(&p, 3, &lines), reference, "{schedule}");
        }
    }

    #[test]
    fn pyomp_lacks_dicts() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("dictionaries"), "{err}");
    }
}
