//! Parallel quicksort (paper §IV-A *qsort*).
//!
//! Table I features: `parallel`, `single`, `task` with `if` clause. One
//! thread enters `single` and starts the recursive decomposition; each
//! partition spawns tasks for the two halves, with the `if` clause cutting
//! off task creation for small subarrays (below [`Params::cutoff`] the
//! recursion continues inline).
//!
//! The paper notes this benchmark **cannot run under PyOMP**: its recursive
//! tasks with the `if` clause are unsupported there.

use minipy::Value;
use omp4rs::exec::{parallel_region, ParallelConfig, TaskCtx};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::workloads::{random_f64s, DEFAULT_SEED};

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, single, task with if clause | implicit barriers";

/// Problem parameters (paper: 400M floats; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Array length.
    pub n: usize,
    /// Subarrays at or below this size are sorted without new tasks.
    pub cutoff: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 200_000,
            cutoff: 2_000,
            seed: DEFAULT_SEED,
        }
    }
}

/// Input array.
pub fn input(p: &Params) -> Vec<f64> {
    random_f64s(p.n, p.seed)
}

/// Checksum sensitive to element order.
pub fn checksum(data: &[f64]) -> f64 {
    data.iter()
        .enumerate()
        .map(|(i, &v)| v * ((i % 97) + 1) as f64)
        .sum()
}

/// Lomuto partition (last element as pivot after a median-of-three swap).
fn partition(data: &mut [f64]) -> usize {
    let n = data.len();
    let mid = n / 2;
    // Median-of-three: move the median to the end as pivot.
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[0] > data[n - 1] {
        data.swap(0, n - 1);
    }
    if data[mid] > data[n - 1] {
        data.swap(mid, n - 1);
    }
    data.swap(mid, n - 1);
    let pivot = data[n - 1];
    let mut i = 0;
    for j in 0..n - 1 {
        if data[j] <= pivot {
            data.swap(i, j);
            i += 1;
        }
    }
    data.swap(i, n - 1);
    i
}

fn insertion_sort(data: &mut [f64]) {
    for i in 1..data.len() {
        let v = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > v {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = v;
    }
}

fn quicksort_seq(data: &mut [f64]) {
    if data.len() <= 16 {
        insertion_sort(data);
        return;
    }
    let p = partition(data);
    let (lo, hi) = data.split_at_mut(p);
    quicksort_seq(lo);
    quicksort_seq(&mut hi[1..]);
}

/// Sequential reference.
pub fn seq(p: &Params) -> Vec<f64> {
    let mut data = input(p);
    quicksort_seq(&mut data);
    data
}

fn quicksort_tasks<'sc>(tc: &TaskCtx<'sc>, data: &'sc mut [f64], cutoff: usize) {
    if data.len() <= 16 {
        insertion_sort(data);
        return;
    }
    let p = partition(data);
    let (lo, rest) = data.split_at_mut(p);
    let hi = &mut rest[1..];
    let spawn_lo = lo.len() > cutoff;
    let spawn_hi = hi.len() > cutoff;
    // `task if(size > cutoff)`: small halves run undeferred on this thread.
    tc.task_if(spawn_lo, move |tc| quicksort_tasks(tc, lo, cutoff));
    tc.task_if(spawn_hi, move |tc| quicksort_tasks(tc, hi, cutoff));
    tc.taskwait();
}

/// CompiledDT: native task-parallel quicksort.
pub fn native(p: &Params, threads: usize) -> Vec<f64> {
    let mut data = input(p);
    let cutoff = p.cutoff;
    {
        let slice = &mut data[..];
        let slot = parking_lot::Mutex::new(Some(slice));
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                let slice = slot.lock().take().expect("single runs once");
                ctx.task(move |tc| quicksort_tasks(tc, slice, cutoff));
            });
            // The region's task-draining barrier completes the sort.
        });
    }
    data
}

/// Compiled: the same task recursion over a boxed `minipy` list.
pub fn dynamic(p: &Params, threads: usize) -> Vec<f64> {
    let data = Value::list(input(p).iter().map(|&v| Value::Float(v)).collect());
    let cutoff = p.cutoff as i64;

    fn getf(list: &Value, i: i64) -> f64 {
        match list {
            Value::List(l) => l.read()[i as usize].as_float().expect("f"),
            _ => unreachable!(),
        }
    }
    fn swap(list: &Value, i: i64, j: i64) {
        if let Value::List(l) = list {
            l.write().swap(i as usize, j as usize);
        }
    }
    fn part(list: &Value, lo: i64, hi: i64) -> i64 {
        let mid = lo + (hi - lo) / 2;
        if getf(list, lo) > getf(list, mid) {
            swap(list, lo, mid);
        }
        if getf(list, lo) > getf(list, hi) {
            swap(list, lo, hi);
        }
        if getf(list, mid) > getf(list, hi) {
            swap(list, mid, hi);
        }
        swap(list, mid, hi);
        let pivot = getf(list, hi);
        let mut i = lo;
        for j in lo..hi {
            if getf(list, j) <= pivot {
                swap(list, i, j);
                i += 1;
            }
        }
        swap(list, i, hi);
        i
    }
    fn sort_rec(tc: &TaskCtx<'_>, list: Value, lo: i64, hi: i64, cutoff: i64) {
        if hi - lo < 1 {
            return;
        }
        if hi - lo < 16 {
            // insertion sort on the boxed list
            for i in (lo + 1)..=hi {
                let v = getf(&list, i);
                let mut j = i;
                while j > lo && getf(&list, j - 1) > v {
                    let prev = getf(&list, j - 1);
                    if let Value::List(l) = &list {
                        l.write()[j as usize] = Value::Float(prev);
                    }
                    j -= 1;
                }
                if let Value::List(l) = &list {
                    l.write()[j as usize] = Value::Float(v);
                }
            }
            return;
        }
        let p = part(&list, lo, hi);
        let l1 = list.clone();
        let l2 = list.clone();
        tc.task_if(p - lo > cutoff, move |tc| {
            sort_rec(tc, l1, lo, p - 1, cutoff)
        });
        tc.task_if(hi - p > cutoff, move |tc| {
            sort_rec(tc, l2, p + 1, hi, cutoff)
        });
        tc.taskwait();
    }

    let n = p.n as i64;
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        ctx.single_nowait(|| {
            let list = data.clone();
            ctx.task(move |tc| sort_rec(tc, list, 0, n - 1, cutoff));
        });
    });
    match &data {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("f")).collect(),
        _ => unreachable!(),
    }
}

/// The minipy source (Pure/Hybrid): recursive quicksort with tasks and the
/// `if` clause, as in the paper.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def qsort(arr, lo, hi, cutoff):
    if hi - lo < 1:
        return 0
    if hi - lo < 16:
        i = lo + 1
        while i <= hi:
            v = arr[i]
            j = i
            while j > lo and arr[j - 1] > v:
                arr[j] = arr[j - 1]
                j -= 1
            arr[j] = v
            i += 1
        return 0
    mid = lo + (hi - lo) // 2
    if arr[lo] > arr[mid]:
        t = arr[lo]
        arr[lo] = arr[mid]
        arr[mid] = t
    if arr[lo] > arr[hi]:
        t = arr[lo]
        arr[lo] = arr[hi]
        arr[hi] = t
    if arr[mid] > arr[hi]:
        t = arr[mid]
        arr[mid] = arr[hi]
        arr[hi] = t
    t = arr[mid]
    arr[mid] = arr[hi]
    arr[hi] = t
    pivot = arr[hi]
    i = lo
    for j in range(lo, hi):
        if arr[j] <= pivot:
            t = arr[i]
            arr[i] = arr[j]
            arr[j] = t
            i += 1
    t = arr[i]
    arr[i] = arr[hi]
    arr[hi] = t
    with omp("task if(i - lo > cutoff)"):
        qsort(arr, lo, i - 1, cutoff)
    with omp("task if(hi - i > cutoff)"):
        qsort(arr, i + 1, hi, cutoff)
    omp("taskwait")
    return 0

@omp
def run_qsort(arr, n, cutoff, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            qsort(arr, 0, n - 1, cutoff)
    return 0
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<f64> {
    let runner = interpreted_runner(mode, SOURCE);
    let arr = Value::list(input(p).iter().map(|&v| Value::Float(v)).collect());
    runner
        .call_global(
            "run_qsort",
            vec![
                arr.clone(),
                Value::Int(p.n as i64),
                Value::Int(p.cutoff as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("qsort benchmark failed");
    match &arr {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("f")).collect(),
        _ => unreachable!(),
    }
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns the paper's incompatibility for [`Mode::PyOmp`].
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("qsort")
            .expect("qsort unsupported")
            .to_owned());
    }
    let (data, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(data: &[f64]) -> bool {
        data.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn seq_sorts() {
        let p = Params {
            n: 5_000,
            cutoff: 100,
            seed: 21,
        };
        let out = seq(&p);
        assert!(is_sorted(&out));
        assert_eq!(out.len(), p.n);
    }

    #[test]
    fn native_sorts_and_matches_seq() {
        let p = Params {
            n: 20_000,
            cutoff: 500,
            seed: 21,
        };
        let reference = seq(&p);
        for threads in [1, 4] {
            let out = native(&p, threads);
            assert!(is_sorted(&out), "t={threads}");
            assert_eq!(checksum(&out), checksum(&reference));
        }
    }

    #[test]
    fn dynamic_sorts() {
        let p = Params {
            n: 3_000,
            cutoff: 200,
            seed: 22,
        };
        let out = dynamic(&p, 3);
        assert!(is_sorted(&out));
        assert_eq!(checksum(&out), checksum(&seq(&p)));
    }

    #[test]
    fn interpreted_sorts() {
        let p = Params {
            n: 300,
            cutoff: 50,
            seed: 23,
        };
        let reference = seq(&p);
        for mode in [Mode::Pure, Mode::Hybrid] {
            let out = interpreted(mode, &p, 2);
            assert!(is_sorted(&out), "{mode}");
            assert_eq!(checksum(&out), checksum(&reference), "{mode}");
        }
    }

    #[test]
    fn pyomp_is_unsupported() {
        let p = Params {
            n: 100,
            cutoff: 10,
            seed: 1,
        };
        let err = run(Mode::PyOmp, 2, &p).unwrap_err();
        assert!(err.contains("if clause"), "{err}");
    }

    #[test]
    fn already_sorted_and_duplicates() {
        let mut data: Vec<f64> = (0..1000).map(|i| (i / 10) as f64).collect();
        quicksort_seq(&mut data);
        assert!(is_sorted(&data));
        let mut rev: Vec<f64> = (0..1000).rev().map(|i| i as f64).collect();
        quicksort_seq(&mut rev);
        assert!(is_sorted(&rev));
    }
}
