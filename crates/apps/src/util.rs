//! Small helpers shared by the native benchmark implementations.

use std::cell::UnsafeCell;

/// A shared mutable slice written at disjoint indices by a work-sharing
/// loop (the standard OpenMP shared-array idiom).
///
/// # Safety contract
///
/// Callers must guarantee that no two threads write the same index
/// concurrently and that reads do not race writes of the same index —
/// exactly the guarantee a correct `omp for` over distinct indices gives.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: see the struct-level contract; all unsynchronized access is
// constrained to disjoint indices by the work-sharing loops that use this.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        // SAFETY: `&mut [T]` → `&[UnsafeCell<T>]` is sound: UnsafeCell<T>
        // has the same layout as T and we hold the unique borrow.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const UnsafeCell<T>, slice.len())
        };
        SharedSlice { data }
    }

    /// Length of the slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may access `index` concurrently.
    pub unsafe fn set(&self, index: usize, value: T) {
        *self.data[index].get() = value;
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may write `index` concurrently.
    pub unsafe fn get(&self, index: usize) -> T
    where
        T: Copy,
    {
        *self.data[index].get()
    }

    /// Get a mutable reference to `index`.
    ///
    /// # Safety
    ///
    /// No other thread may access `index` concurrently.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        &mut *self.data[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0usize; 100];
        {
            let shared = SharedSlice::new(&mut data);
            let cfg = ParallelConfig::new().num_threads(4);
            parallel_region(&cfg, |ctx| {
                ctx.for_each(ForSpec::new(), 0..100, |i| {
                    // SAFETY: each index written by exactly one thread.
                    unsafe { shared.set(i as usize, i as usize * 2) };
                });
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn len_and_get() {
        let mut data = vec![1.5f64, 2.5];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(shared.len(), 2);
        assert!(!shared.is_empty());
        // SAFETY: single-threaded access.
        unsafe {
            assert_eq!(shared.get(1), 2.5);
            *shared.get_mut(0) += 1.0;
            assert_eq!(shared.get(0), 2.5);
        }
    }
}
