//! PageRank over `minigraph`, pipelined with versioned task dependences.
//!
//! Power iteration double-buffers the rank vector. Instead of a barrier
//! between iterations, every `(chunk, iteration)` task takes `in` deps on
//! *all* chunks of the previous iteration and an `out` dep on its own
//! versioned key — the all-to-all reads make a barrier-free doacross
//! pipeline (WAR on the physical buffers is covered because a writer of
//! buffer `it % 2` waits for every reader of that buffer, i.e. all of
//! iteration `it − 1`). Earlier iterations get a higher `priority(n)` hint
//! so the pipeline head drains first. The whole graph — `iters × chunks`
//! tasks — is submitted eagerly from a `single`.

use minigraph::Graph;
use minipy::Value;
use omp4rs::exec::{parallel_region, DepSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::DEFAULT_SEED;

/// Table I-style feature row for this benchmark.
pub const FEATURES: &str = "parallel, single, task depend + priority | versioned pipeline";

/// Damping factor (the standard 0.85).
pub const DAMPING: f64 = 0.85;

/// Chunks per iteration. Fixed (rather than thread-derived) so the task
/// graph — and therefore the result — is identical in every mode,
/// including the interpreted source whose `depend` lists are spelled out.
pub const CHUNKS: usize = 4;

/// Problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Node count.
    pub nodes: usize,
    /// Edges added per node by the generator.
    pub degree: usize,
    /// Power iterations.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            nodes: 600,
            degree: 4,
            iters: 12,
            seed: DEFAULT_SEED,
        }
    }
}

/// The input graph.
pub fn input(p: &Params) -> Graph {
    minigraph::random_graph(p.nodes, p.degree, p.seed)
}

/// Sequential reference.
pub fn seq(p: &Params) -> Vec<f64> {
    minigraph::pagerank(&input(p), DAMPING, p.iters)
}

/// Checksum of a rank vector (scaled so mode-vs-mode drift is visible).
pub fn checksum(ranks: &[f64]) -> f64 {
    ranks
        .iter()
        .enumerate()
        .map(|(i, r)| r * (1.0 + (i % 7) as f64))
        .sum()
}

/// Versioned dependence key: chunk `c` of iteration `it` (1-based so the
/// `in` deps of iteration 0 land on never-written keys and release
/// immediately).
fn key(it: usize, c: usize) -> u64 {
    ((it as u64) << 8) | c as u64
}

/// `[start, end)` node range of a chunk.
fn chunk_bounds(n: usize, c: usize) -> (usize, usize) {
    (c * n / CHUNKS, (c + 1) * n / CHUNKS)
}

fn chunk_spec(it: usize, c: usize, iters: usize) -> DepSpec {
    let mut spec = DepSpec::new()
        .output(key(it + 1, c))
        // Head-of-pipeline first: earlier iterations carry higher priority.
        .priority((iters - it) as i64);
    for j in 0..CHUNKS {
        spec = spec.input(key(it, j));
    }
    spec
}

/// CompiledDT: native buffers, the full pipeline DAG submitted eagerly.
pub fn native(p: &Params, threads: usize) -> Vec<f64> {
    let g = input(p);
    let n = p.nodes;
    let base = (1.0 - DAMPING) / n as f64;
    let mut buf0 = vec![1.0 / n as f64; n];
    let mut buf1 = vec![0.0; n];
    {
        let bufs = [SharedSlice::new(&mut buf0), SharedSlice::new(&mut buf1)];
        let (g, bufs) = (&g, &bufs);
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                for it in 0..p.iters {
                    for c in 0..CHUNKS {
                        let (lo, hi) = chunk_bounds(n, c);
                        ctx.task_depend(chunk_spec(it, c, p.iters), move |_| {
                            let (src, dst) = (&bufs[it % 2], &bufs[(it + 1) % 2]);
                            for u in lo..hi {
                                let mut sum = 0.0;
                                for &v in g.neighbors(u) {
                                    let v = v as usize;
                                    // SAFETY: `in` deps on every chunk of
                                    // iteration `it` mean src is fully
                                    // written and no longer mutated.
                                    sum += unsafe { src.get(v) } / g.degree(v) as f64;
                                }
                                // SAFETY: this task is the only writer of
                                // dst[lo..hi] (its `out` key), and readers
                                // of dst wait on this task.
                                unsafe { dst.set(u, base + DAMPING * sum) };
                            }
                        });
                    }
                }
            });
        });
    }
    if p.iters.is_multiple_of(2) {
        buf0
    } else {
        buf1
    }
}

/// Compiled: boxed rank buffers, native graph (library calls stay native
/// in every mode, as in the clustering benchmark).
pub fn dynamic(p: &Params, threads: usize) -> Vec<f64> {
    let g = input(p);
    let n = p.nodes;
    let base = (1.0 - DAMPING) / n as f64;
    let bufs = [
        Value::list((0..n).map(|_| Value::Float(1.0 / n as f64)).collect()),
        Value::list((0..n).map(|_| Value::Float(0.0)).collect()),
    ];
    {
        let (g, bufs) = (&g, &bufs);
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                for it in 0..p.iters {
                    for c in 0..CHUNKS {
                        let (lo, hi) = chunk_bounds(n, c);
                        ctx.task_depend(chunk_spec(it, c, p.iters), move |_| {
                            let src: Vec<f64> = match &bufs[it % 2] {
                                Value::List(l) => {
                                    l.read().iter().map(|v| v.as_float().expect("r")).collect()
                                }
                                _ => unreachable!(),
                            };
                            let mut out = Vec::with_capacity(hi - lo);
                            for u in lo..hi {
                                let mut sum = 0.0;
                                for &v in g.neighbors(u) {
                                    let v = v as usize;
                                    sum += src[v] / g.degree(v) as f64;
                                }
                                out.push(base + DAMPING * sum);
                            }
                            if let Value::List(l) = &bufs[(it + 1) % 2] {
                                let mut l = l.write();
                                for (u, v) in (lo..hi).zip(out) {
                                    l[u] = Value::Float(v);
                                }
                            }
                        });
                    }
                }
            });
        });
    }
    match &bufs[p.iters % 2] {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("r")).collect(),
        _ => unreachable!(),
    }
}

/// The minipy source (Pure/Hybrid). The graph travels as CSR lists
/// (`off`/`nbr`/`deg`); the four-chunk `depend` lists are spelled out, and
/// `priority` carries the same head-first hint.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def pr_chunk(src, dst, off, nbr, deg, lo, hi, base, damping):
    for u in range(lo, hi):
        s = 0.0
        for e in range(off[u], off[u + 1]):
            v = nbr[e]
            s = s + src[v] / deg[v]
        dst[u] = base + damping * s
    return 0

@omp
def pagerank(r0, r1, off, nbr, deg, bounds, base, damping, iters, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            for it in range(iters):
                for c in range(4):
                    with omp("task depend(in: (it, 0), (it, 1), (it, 2), (it, 3)) depend(out: (it + 1, c)) priority(iters - it) firstprivate(it, c)"):
                        if it % 2 == 0:
                            pr_chunk(r0, r1, off, nbr, deg, bounds[c], bounds[c + 1], base, damping)
                        else:
                            pr_chunk(r1, r0, off, nbr, deg, bounds[c], bounds[c + 1], base, damping)
    return 0
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<f64> {
    let g = input(p);
    let n = p.nodes;
    let base = (1.0 - DAMPING) / n as f64;
    let runner = interpreted_runner(mode, SOURCE);
    let mut off = Vec::with_capacity(n + 1);
    let mut nbr = Vec::new();
    off.push(Value::Int(0));
    for u in 0..n {
        for &v in g.neighbors(u) {
            nbr.push(Value::Int(i64::from(v)));
        }
        off.push(Value::Int(nbr.len() as i64));
    }
    let deg = (0..n).map(|u| Value::Int(g.degree(u) as i64)).collect();
    let bounds = (0..=CHUNKS)
        .map(|c| Value::Int((c * n / CHUNKS) as i64))
        .collect();
    let r0 = Value::list((0..n).map(|_| Value::Float(1.0 / n as f64)).collect());
    let r1 = Value::list((0..n).map(|_| Value::Float(0.0)).collect());
    runner
        .call_global(
            "pagerank",
            vec![
                r0.clone(),
                r1.clone(),
                Value::list(off),
                Value::list(nbr),
                Value::list(deg),
                Value::list(bounds),
                Value::Float(base),
                Value::Float(DAMPING),
                Value::Int(p.iters as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("pagerank benchmark failed");
    let result = if p.iters.is_multiple_of(2) { &r0 } else { &r1 };
    match result {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("r")).collect(),
        _ => unreachable!(),
    }
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns the PyOMP capability error for [`Mode::PyOmp`] (no `depend`).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("pagerank")
            .expect("pagerank unsupported")
            .to_owned());
    }
    let (ranks, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&ranks),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            nodes: 120,
            degree: 3,
            iters: 6,
            seed: 23,
        }
    }

    #[test]
    fn seq_conserves_mass_on_connected_graphs() {
        let p = small();
        let ranks = seq(&p);
        let total: f64 = ranks.iter().sum();
        // Danglers leak a little mass; the bulk must remain.
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total = {total}");
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = seq(&p);
        for threads in [1, 4] {
            let ranks = native(&p, threads);
            for (u, (&a, &b)) in ranks.iter().zip(&reference).enumerate() {
                assert!(close(a, b, 1e-12), "threads={threads} node {u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert!(close(checksum(&dynamic(&p, 3)), checksum(&seq(&p)), 1e-12));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            nodes: 40,
            degree: 3,
            iters: 4,
            seed: 29,
        };
        let reference = checksum(&seq(&p));
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(
                close(checksum(&interpreted(mode, &p, 2)), reference, 1e-9),
                "{mode}"
            );
        }
    }

    #[test]
    fn odd_iteration_counts_read_the_right_buffer() {
        let p = Params {
            iters: 5,
            ..small()
        };
        assert!(close(checksum(&native(&p, 2)), checksum(&seq(&p)), 1e-12));
    }

    #[test]
    fn pyomp_reports_capability_error() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("depend"), "{err}");
    }
}
