//! Clustering coefficient over a random graph (paper §IV-B).
//!
//! The paper's point: the per-node work is a **library call** (NetworkX),
//! which Numba/PyOMP cannot compile, and which Cython cannot optimize
//! beyond the call boundary — so all OMP4Py modes perform similarly. Here
//! the library is `minigraph`; interpreted code reaches it through an
//! opaque graph object, and the compiled modes call it directly, preserving
//! exactly that property.
//!
//! Also the substrate for Fig. 7's scheduling-policy comparison
//! (static/dynamic/guided, chunk 300).

use std::sync::Arc;

use minigraph::Graph;
use minipy::error::PyErr;
use minipy::{Interp, Opaque, Value};
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::{Backend, ScheduleKind};
use parking_lot::Mutex;

use crate::modes::{timed, BenchOutput, Mode};
use crate::pyomp;
use crate::workloads::DEFAULT_SEED;

/// Features exercised (Fig. 6/7 benchmark; not part of Table I).
pub const FEATURES: &str = "parallel for (library calls), reduction(+) | schedule sweep";

/// Problem parameters (paper: 300k nodes × 100 edges; scaled default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Node count.
    pub nodes: usize,
    /// Average edges per node.
    pub edges_per_node: usize,
    /// Workload seed.
    pub seed: u64,
    /// Schedule for the node loop (Fig. 7 sweeps this).
    pub schedule: ScheduleKind,
    /// Chunk size (paper uses 300).
    pub chunk: Option<u64>,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            nodes: 2_000,
            edges_per_node: 16,
            seed: DEFAULT_SEED,
            schedule: ScheduleKind::Dynamic,
            chunk: Some(300),
        }
    }
}

/// Build the input graph.
pub fn graph(p: &Params) -> Graph {
    minigraph::random_graph(p.nodes, p.edges_per_node, p.seed)
}

/// Sequential reference: average clustering coefficient.
pub fn seq(p: &Params) -> f64 {
    minigraph::average_clustering(&graph(p))
}

fn for_spec(p: &Params) -> ForSpec {
    ForSpec::new().schedule(p.schedule, p.chunk)
}

/// CompiledDT / Compiled: both call the native graph library — Cython
/// cannot optimize past the library boundary, so the implementations are
/// identical (the paper observes the same).
pub fn native(p: &Params, threads: usize, g: &Graph) -> f64 {
    let n = p.nodes as i64;
    let result = Mutex::new(0.0f64);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let total = ctx.for_reduce(
            for_spec(p),
            0..n,
            0.0f64,
            |u, acc| *acc += g.clustering(u as usize),
            |a, b| a + b,
        );
        ctx.master(|| *result.lock() = total / p.nodes as f64);
    });
    result.into_inner()
}

/// The graph handle exposed to interpreted code (a NetworkX stand-in).
#[derive(Debug)]
pub struct GraphValue(pub Arc<Graph>);

impl Opaque for GraphValue {
    fn type_name(&self) -> &str {
        "Graph"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn len(&self) -> Option<usize> {
        Some(self.0.node_count())
    }
    fn call_method(&self, _interp: &Interp, name: &str, args: Vec<Value>) -> Result<Value, PyErr> {
        match name {
            "clustering" => {
                let u = args
                    .first()
                    .ok_or_else(|| minipy::error::type_err("clustering() needs a node"))?
                    .as_int()? as usize;
                Ok(Value::Float(self.0.clustering(u)))
            }
            "degree" => {
                let u = args
                    .first()
                    .ok_or_else(|| minipy::error::type_err("degree() needs a node"))?
                    .as_int()? as usize;
                Ok(Value::Int(self.0.degree(u) as i64))
            }
            "number_of_nodes" => Ok(Value::Int(self.0.node_count() as i64)),
            "number_of_edges" => Ok(Value::Int(self.0.edge_count() as i64)),
            other => Err(PyErr::new(
                minipy::ErrKind::Attribute,
                format!("'Graph' object has no attribute '{other}'"),
            )),
        }
    }
}

/// Interpreted source, parameterized by the schedule clause (directive
/// strings are static, so the clause is formatted in).
pub fn source_with_schedule(schedule: &str) -> String {
    format!(
        r#"
from omp4py import *

@omp
def avg_clustering(g, n, nthreads):
    total = 0.0
    with omp("parallel for reduction(+:total) num_threads(nthreads) {schedule}"):
        for u in range(n):
            total += g.clustering(u)
    return total / n
"#
    )
}

fn schedule_clause(p: &Params) -> String {
    match p.chunk {
        Some(c) => format!("schedule({}, {c})", p.schedule.name()),
        None => format!("schedule({})", p.schedule.name()),
    }
}

/// Pure/Hybrid: interpreted execution over the opaque graph.
pub fn interpreted(mode: Mode, p: &Params, threads: usize, g: &Arc<Graph>) -> f64 {
    let source = source_with_schedule(&schedule_clause(p));
    let runner = crate::modes::interpreted_runner(mode, &source);
    let gv = Value::Opaque(Arc::new(GraphValue(Arc::clone(g))));
    runner
        .call_global(
            "avg_clustering",
            vec![gv, Value::Int(p.nodes as i64), Value::Int(threads as i64)],
        )
        .expect("clustering benchmark failed")
        .as_float()
        .expect("average clustering")
}

/// Run in any mode, timed (graph generation excluded).
///
/// # Errors
///
/// Returns the paper's incompatibility for [`Mode::PyOmp`] (NetworkX).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("clustering")
            .expect("clustering unsupported")
            .to_owned());
    }
    let g = Arc::new(graph(p));
    let (value, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads, &g)),
        // Compiled and CompiledDT are identical here (library-bound).
        Mode::Compiled | Mode::CompiledDT => timed(|| native(p, threads, &g)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            nodes: 150,
            edges_per_node: 8,
            seed: 41,
            schedule: ScheduleKind::Dynamic,
            chunk: Some(16),
        }
    }

    #[test]
    fn seq_in_unit_interval() {
        let v = seq(&small());
        assert!((0.0..=1.0).contains(&v));
        assert!(v > 0.0, "a dense-ish random graph has triangles");
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let g = graph(&p);
        for threads in [1, 4] {
            assert!(close(native(&p, threads, &g), seq(&p), 1e-10));
        }
    }

    #[test]
    fn schedules_agree() {
        let g = graph(&small());
        for schedule in [
            ScheduleKind::Static,
            ScheduleKind::Dynamic,
            ScheduleKind::Guided,
        ] {
            let p = Params {
                schedule,
                ..small()
            };
            assert!(close(native(&p, 3, &g), seq(&small()), 1e-10), "{schedule}");
        }
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            nodes: 60,
            edges_per_node: 6,
            ..small()
        };
        let g = Arc::new(graph(&p));
        let reference = minigraph::average_clustering(&g);
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(
                close(interpreted(mode, &p, 2, &g), reference, 1e-10),
                "{mode}"
            );
        }
    }

    #[test]
    fn pyomp_cannot_compile_networkx() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("NetworkX"), "{err}");
    }
}
