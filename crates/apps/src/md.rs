//! Molecular dynamics with velocity-Verlet integration (paper §IV-A *md*).
//!
//! Particles interact through a smooth central pair potential
//! `V(r²) = 1 / (r² + ε)`; each step computes forces (a `parallel` region
//! with a `reduction(+)` on the potential energy and an inner `for` over
//! partners) and then integrates positions/velocities (`parallel for`),
//! matching Table I.

use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;
use parking_lot::Mutex;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{particles, DEFAULT_SEED};

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel reduction(+) with inner for, parallel for | implicit barriers";

/// Softening constant of the pair potential.
pub const EPS: f64 = 0.5;
/// Integration timestep.
pub const DT: f64 = 1e-3;

/// Problem parameters (paper: 8000 particles; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of particles.
    pub n: usize,
    /// Verlet steps.
    pub steps: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 128,
            steps: 3,
            seed: DEFAULT_SEED,
        }
    }
}

/// Pairwise force contribution of j on i and the pair potential energy.
#[inline]
fn pair(pi: [f64; 3], pj: [f64; 3]) -> ([f64; 3], f64) {
    let d = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS;
    // V = 1/r2 → F = -dV/dr * r̂ = 2/r2² * d
    let f = 2.0 / (r2 * r2);
    ([f * d[0], f * d[1], f * d[2]], 1.0 / r2)
}

fn forces_seq(pos: &[[f64; 3]], forces: &mut [[f64; 3]]) -> f64 {
    let n = pos.len();
    let mut potential = 0.0;
    for i in 0..n {
        let mut f = [0.0; 3];
        for j in 0..n {
            if i != j {
                let (fij, v) = pair(pos[i], pos[j]);
                f[0] += fij[0];
                f[1] += fij[1];
                f[2] += fij[2];
                potential += 0.5 * v;
            }
        }
        forces[i] = f;
    }
    potential
}

/// Sequential reference: runs the simulation, returning
/// `(positions, final potential energy)`.
pub fn seq(p: &Params) -> (Vec<[f64; 3]>, f64) {
    let (mut pos, mut vel) = particles(p.n, 10.0, p.seed);
    let mut forces = vec![[0.0; 3]; p.n];
    let mut potential = forces_seq(&pos, &mut forces);
    for _ in 0..p.steps {
        for i in 0..p.n {
            for c in 0..3 {
                vel[i][c] += 0.5 * DT * forces[i][c];
                pos[i][c] += DT * vel[i][c];
            }
        }
        potential = forces_seq(&pos, &mut forces);
        for i in 0..p.n {
            for c in 0..3 {
                vel[i][c] += 0.5 * DT * forces[i][c];
            }
        }
    }
    (pos, potential)
}

/// Checksum of final positions.
pub fn checksum(pos: &[[f64; 3]]) -> f64 {
    pos.iter().flatten().sum()
}

/// CompiledDT: native arrays.
pub fn native(p: &Params, threads: usize) -> (Vec<[f64; 3]>, f64) {
    let (mut pos, mut vel) = particles(p.n, 10.0, p.seed);
    let mut forces = vec![[0.0f64; 3]; p.n];
    let n = p.n as i64;
    let potential_out = Mutex::new(0.0f64);
    {
        let pos_s = SharedSlice::new(&mut pos);
        let vel_s = SharedSlice::new(&mut vel);
        let f_s = SharedSlice::new(&mut forces);
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            // Initial forces: parallel reduction(+:potential) with inner for.
            let compute_forces = |ctx: &omp4rs::WorkerCtx<'_>| -> f64 {
                ctx.for_reduce(
                    ForSpec::new(),
                    0..n,
                    0.0f64,
                    |i, acc| {
                        let i = i as usize;
                        // SAFETY: positions are stable during force phases.
                        let pi = unsafe { pos_s.get(i) };
                        let mut f = [0.0; 3];
                        for j in 0..p.n {
                            if i != j {
                                let (fij, v) = pair(pi, unsafe { pos_s.get(j) });
                                f[0] += fij[0];
                                f[1] += fij[1];
                                f[2] += fij[2];
                                *acc += 0.5 * v;
                            }
                        }
                        // SAFETY: index i owned by this thread's chunk.
                        unsafe { f_s.set(i, f) };
                    },
                    |a, b| a + b,
                )
            };
            let mut potential = compute_forces(ctx);
            for _ in 0..p.steps {
                ctx.for_each(ForSpec::new(), 0..n, |i| {
                    let i = i as usize;
                    // SAFETY: disjoint indices.
                    unsafe {
                        let f = f_s.get(i);
                        let v = vel_s.get_mut(i);
                        let x = pos_s.get_mut(i);
                        for c in 0..3 {
                            v[c] += 0.5 * DT * f[c];
                            x[c] += DT * v[c];
                        }
                    }
                });
                potential = compute_forces(ctx);
                ctx.for_each(ForSpec::new(), 0..n, |i| {
                    let i = i as usize;
                    // SAFETY: disjoint indices.
                    unsafe {
                        let f = f_s.get(i);
                        let v = vel_s.get_mut(i);
                        for c in 0..3 {
                            v[c] += 0.5 * DT * f[c];
                        }
                    }
                });
            }
            ctx.master(|| *potential_out.lock() = potential);
        });
    }
    (pos, potential_out.into_inner())
}

/// Compiled: boxed-value coordinate lists (flat `3n` lists).
pub fn dynamic(p: &Params, threads: usize) -> (Vec<[f64; 3]>, f64) {
    let (pos0, vel0) = particles(p.n, 10.0, p.seed);
    let n = p.n;
    let boxed =
        |src: &Vec<[f64; 3]>| Value::list(src.iter().flatten().map(|&v| Value::Float(v)).collect());
    let pos = boxed(&pos0);
    let vel = boxed(&vel0);
    let forces = Value::list(vec![Value::Float(0.0); 3 * n]);
    let potential_out = Mutex::new(0.0f64);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    let getf = |l: &Value, i: usize| -> f64 {
        match l {
            Value::List(v) => v.read()[i].as_float().expect("f"),
            _ => unreachable!(),
        }
    };
    let setf = |l: &Value, i: usize, x: f64| {
        if let Value::List(v) = l {
            v.write()[i] = Value::Float(x);
        }
    };
    parallel_region(&cfg, |ctx| {
        let compute_forces = |ctx: &omp4rs::WorkerCtx<'_>| -> f64 {
            ctx.for_reduce(
                ForSpec::new(),
                0..n as i64,
                0.0f64,
                |i, acc| {
                    let i = i as usize;
                    let pi = [
                        getf(&pos, 3 * i),
                        getf(&pos, 3 * i + 1),
                        getf(&pos, 3 * i + 2),
                    ];
                    let mut f = [0.0; 3];
                    for j in 0..n {
                        if i != j {
                            let pj = [
                                getf(&pos, 3 * j),
                                getf(&pos, 3 * j + 1),
                                getf(&pos, 3 * j + 2),
                            ];
                            let (fij, v) = pair(pi, pj);
                            f[0] += fij[0];
                            f[1] += fij[1];
                            f[2] += fij[2];
                            *acc += 0.5 * v;
                        }
                    }
                    for (c, fc) in f.iter().enumerate() {
                        setf(&forces, 3 * i + c, *fc);
                    }
                },
                |a, b| a + b,
            )
        };
        let mut potential = compute_forces(ctx);
        for _ in 0..p.steps {
            ctx.for_each(ForSpec::new(), 0..n as i64, |i| {
                let i = i as usize;
                for c in 0..3 {
                    let v = getf(&vel, 3 * i + c) + 0.5 * DT * getf(&forces, 3 * i + c);
                    setf(&vel, 3 * i + c, v);
                    setf(&pos, 3 * i + c, getf(&pos, 3 * i + c) + DT * v);
                }
            });
            potential = compute_forces(ctx);
            ctx.for_each(ForSpec::new(), 0..n as i64, |i| {
                let i = i as usize;
                for c in 0..3 {
                    let v = getf(&vel, 3 * i + c) + 0.5 * DT * getf(&forces, 3 * i + c);
                    setf(&vel, 3 * i + c, v);
                }
            });
        }
        ctx.master(|| *potential_out.lock() = potential);
    });
    let out: Vec<[f64; 3]> = match &pos {
        Value::List(l) => {
            let l = l.read();
            (0..n)
                .map(|i| {
                    [
                        l[3 * i].as_float().expect("x"),
                        l[3 * i + 1].as_float().expect("y"),
                        l[3 * i + 2].as_float().expect("z"),
                    ]
                })
                .collect()
        }
        _ => unreachable!(),
    };
    (out, potential_out.into_inner())
}

/// The minipy source (Pure/Hybrid). Flat coordinate lists, two parallel
/// constructs per step as in the native version.
pub const SOURCE: &str = r#"
from omp4py import *

EPS = 0.5
DT = 0.001

@omp
def forces_step(pos, forces, n):
    potential = 0.0
    with omp("parallel for reduction(+:potential)"):
        for i in range(n):
            fx = 0.0
            fy = 0.0
            fz = 0.0
            xi = pos[3 * i]
            yi = pos[3 * i + 1]
            zi = pos[3 * i + 2]
            for j in range(n):
                if i != j:
                    dx = xi - pos[3 * j]
                    dy = yi - pos[3 * j + 1]
                    dz = zi - pos[3 * j + 2]
                    r2 = dx * dx + dy * dy + dz * dz + EPS
                    f = 2.0 / (r2 * r2)
                    fx += f * dx
                    fy += f * dy
                    fz += f * dz
                    potential += 0.5 / r2
            forces[3 * i] = fx
            forces[3 * i + 1] = fy
            forces[3 * i + 2] = fz
    return potential

@omp
def integrate(pos, vel, forces, n, with_position):
    with omp("parallel for"):
        for i in range(3 * n):
            v = vel[i] + 0.5 * DT * forces[i]
            vel[i] = v
            if with_position:
                pos[i] = pos[i] + DT * v
    return 0

def md(pos, vel, forces, n, steps, nthreads):
    omp_set_num_threads(nthreads)
    potential = forces_step(pos, forces, n)
    for s in range(steps):
        integrate(pos, vel, forces, n, True)
        potential = forces_step(pos, forces, n)
        integrate(pos, vel, forces, n, False)
    return potential
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> (Vec<[f64; 3]>, f64) {
    let (pos0, vel0) = particles(p.n, 10.0, p.seed);
    let runner = interpreted_runner(mode, SOURCE);
    let boxed =
        |src: &Vec<[f64; 3]>| Value::list(src.iter().flatten().map(|&v| Value::Float(v)).collect());
    let pos = boxed(&pos0);
    let vel = boxed(&vel0);
    let forces = Value::list(vec![Value::Float(0.0); 3 * p.n]);
    let potential = runner
        .call_global(
            "md",
            vec![
                pos.clone(),
                vel,
                forces,
                Value::Int(p.n as i64),
                Value::Int(p.steps as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("md benchmark failed")
        .as_float()
        .expect("potential");
    let out: Vec<[f64; 3]> = match &pos {
        Value::List(l) => {
            let l = l.read();
            (0..p.n)
                .map(|i| {
                    [
                        l[3 * i].as_float().expect("x"),
                        l[3 * i + 1].as_float().expect("y"),
                        l[3 * i + 2].as_float().expect("z"),
                    ]
                })
                .collect()
        }
        _ => unreachable!(),
    };
    (out, potential)
}

/// PyOMP baseline: static pranges over `f64` buffers.
pub fn pyomp_baseline(p: &Params, threads: usize) -> (Vec<[f64; 3]>, f64) {
    let (mut pos, mut vel) = particles(p.n, 10.0, p.seed);
    let mut forces = vec![[0.0f64; 3]; p.n];
    let n = p.n as i64;
    let mut potential;
    {
        let pos_s = SharedSlice::new(&mut pos);
        let vel_s = SharedSlice::new(&mut vel);
        let f_s = SharedSlice::new(&mut forces);
        let compute = |threads: usize| {
            pyomp::prange_reduce_sum(threads, n, |i| {
                let i = i as usize;
                // SAFETY: positions stable during force phases.
                let pi = unsafe { pos_s.get(i) };
                let mut f = [0.0; 3];
                let mut acc = 0.0;
                for j in 0..p.n {
                    if i != j {
                        let (fij, v) = pair(pi, unsafe { pos_s.get(j) });
                        f[0] += fij[0];
                        f[1] += fij[1];
                        f[2] += fij[2];
                        acc += 0.5 * v;
                    }
                }
                // SAFETY: disjoint indices.
                unsafe { f_s.set(i, f) };
                acc
            })
        };
        potential = compute(threads);
        for _ in 0..p.steps {
            pyomp::prange(threads, n, |i| {
                let i = i as usize;
                // SAFETY: disjoint indices.
                unsafe {
                    let f = f_s.get(i);
                    let v = vel_s.get_mut(i);
                    let x = pos_s.get_mut(i);
                    for c in 0..3 {
                        v[c] += 0.5 * DT * f[c];
                        x[c] += DT * v[c];
                    }
                }
            });
            potential = compute(threads);
            pyomp::prange(threads, n, |i| {
                let i = i as usize;
                // SAFETY: disjoint indices.
                unsafe {
                    let f = f_s.get(i);
                    let v = vel_s.get_mut(i);
                    for c in 0..3 {
                        v[c] += 0.5 * DT * f[c];
                    }
                }
            });
        }
    }
    (pos, potential)
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Never fails: every mode supports *md*.
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    let ((pos, _potential), seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => timed(|| pyomp_baseline(p, threads)),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&pos),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            n: 24,
            steps: 2,
            seed: 17,
        }
    }

    #[test]
    fn seq_is_deterministic_and_finite() {
        let p = small();
        let (pos1, e1) = seq(&p);
        let (pos2, e2) = seq(&p);
        assert_eq!(checksum(&pos1), checksum(&pos2));
        assert_eq!(e1, e2);
        assert!(e1.is_finite() && e1 > 0.0);
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let (pos_ref, e_ref) = seq(&p);
        for threads in [1, 4] {
            let (pos, e) = native(&p, threads);
            assert!(
                close(checksum(&pos), checksum(&pos_ref), 1e-9),
                "t={threads}"
            );
            assert!(close(e, e_ref, 1e-9));
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        let (pos_ref, e_ref) = seq(&p);
        let (pos, e) = dynamic(&p, 3);
        assert!(close(checksum(&pos), checksum(&pos_ref), 1e-9));
        assert!(close(e, e_ref, 1e-9));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            n: 10,
            steps: 1,
            seed: 17,
        };
        let (pos_ref, e_ref) = seq(&p);
        for mode in [Mode::Pure, Mode::Hybrid] {
            let (pos, e) = interpreted(mode, &p, 2);
            assert!(close(checksum(&pos), checksum(&pos_ref), 1e-8), "{mode}");
            assert!(close(e, e_ref, 1e-8), "{mode}");
        }
    }

    #[test]
    fn pyomp_matches_seq() {
        let p = small();
        let (pos_ref, e_ref) = seq(&p);
        let (pos, e) = pyomp_baseline(&p, 4);
        assert!(close(checksum(&pos), checksum(&pos_ref), 1e-9));
        assert!(close(e, e_ref, 1e-9));
    }
}
