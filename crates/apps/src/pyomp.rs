//! The PyOMP-style baseline layer.
//!
//! PyOMP (Numba fork) compiles a restricted Python subset to native code:
//! NumPy `f64` buffers only, **static scheduling only** (the paper: "PyOMP
//! only supports the static scheduling policy", and `nowait` is also
//! missing), no `task` + `if` (qsort unimplementable), no dynamic containers
//! (dicts — wordcount), no external libraries (NetworkX — clustering,
//! mpi4py — hybrid). The paper also reports a Numba error running *bfs*.
//!
//! This module reproduces that capability envelope: native-speed static
//! loops over `f64` buffers, plus [`supports`]/[`unsupported_reason`]
//! encoding exactly which benchmarks the baseline can run.

use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;

/// Which benchmarks PyOMP can run, mirroring §IV of the paper.
pub fn supports(benchmark: &str) -> bool {
    unsupported_reason(benchmark).is_none()
}

/// Why a benchmark cannot run under the baseline (paper §IV-A/§IV-B).
pub fn unsupported_reason(benchmark: &str) -> Option<&'static str> {
    match benchmark {
        "qsort" => {
            Some("parallel recursive tasks with the if clause are not supported by PyOMP v0.2.0")
        }
        "bfs" | "maze" => Some("PyOMP raises a Numba compilation error on this benchmark"),
        "clustering" | "graphic" => {
            Some("Numba cannot compile NetworkX's Graph object and related functions")
        }
        "wordcount" => Some("PyOMP's Numba release lacks support for Python dictionaries"),
        "hybrid" | "jacobi_mpi" => {
            Some("Numba cannot integrate mpi4py calls into compiled functions")
        }
        "wavefront" | "sparselu" | "pagerank" => {
            Some("PyOMP has no task depend clause or taskgroup support (task-graph suite)")
        }
        _ => None,
    }
}

/// Static-only parallel range: applies `body` to every `i` in `0..n` with
/// PyOMP's (only) schedule. Returns nothing; the body writes into buffers.
pub fn prange(threads: usize, n: i64, body: impl Fn(i64) + Sync) {
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        ctx.for_each(ForSpec::new(), 0..n, &body);
    });
}

/// Static-only parallel sum reduction over `0..n`.
pub fn prange_reduce_sum(threads: usize, n: i64, body: impl Fn(i64) -> f64 + Sync) -> f64 {
    let result = parking_lot::Mutex::new(0.0f64);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let local = ctx.for_reduce(
            ForSpec::new(),
            0..n,
            0.0f64,
            |i, acc| *acc += body(i),
            |a, b| a + b,
        );
        ctx.master(|| *result.lock() = local);
    });
    result.into_inner()
}

/// Static-only parallel max reduction over `0..n`.
pub fn prange_reduce_max(threads: usize, n: i64, body: impl Fn(i64) -> f64 + Sync) -> f64 {
    let result = parking_lot::Mutex::new(f64::NEG_INFINITY);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        let local = ctx.for_reduce(
            ForSpec::new(),
            0..n,
            f64::NEG_INFINITY,
            |i, acc| *acc = acc.max(body(i)),
            |a, b| a.max(b),
        );
        ctx.master(|| *result.lock() = local);
    });
    result.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn capability_envelope_matches_paper() {
        for ok in ["pi", "fft", "jacobi", "lu", "md"] {
            assert!(supports(ok), "{ok} should be supported");
        }
        for bad in ["qsort", "bfs", "clustering", "wordcount", "hybrid"] {
            assert!(!supports(bad), "{bad} should be unsupported");
            assert!(unsupported_reason(bad).is_some());
        }
    }

    #[test]
    fn prange_covers_space() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        prange(4, 50, |i| {
            hits[i as usize].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn reductions_work() {
        let sum = prange_reduce_sum(3, 100, |i| i as f64);
        assert_eq!(sum, 4950.0);
        let max = prange_reduce_max(3, 100, |i| (i as f64 - 50.0).abs());
        assert_eq!(max, 50.0);
    }
}
