//! Block LU factorization as a task graph (BOTS *sparselu*-style).
//!
//! The matrix is split into `nb × nb` blocks of `bs × bs`; each elimination
//! step `k` runs four kernels — `lu0` on the diagonal block, `fwd`/`bdiv`
//! on the panel blocks, `bmod` on the trailing blocks — and the *entire*
//! graph for all steps is submitted eagerly from a `single` with
//! `depend(in/out/inout)` block keys. Unlike the loop-parallel `lu`
//! benchmark, steps overlap: a trailing `bmod` of step `k` can run
//! concurrently with step `k+1`'s panel once its own inputs retire. Block
//! LU without pivoting computes the same factors as the scalar Doolittle
//! reference, which is how results are verified.

use minipy::Value;
use omp4rs::exec::{parallel_region, DepSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{diag_dominant_system, DEFAULT_SEED};

/// Table I-style feature row for this benchmark.
pub const FEATURES: &str = "parallel, single, task depend(in/inout) | LU task DAG";

/// Problem parameters: an `(nb·bs) × (nb·bs)` matrix in `nb × nb` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Blocks per side.
    pub nb: usize,
    /// Block side length.
    pub bs: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            nb: 6,
            bs: 12,
            seed: DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Full matrix side length.
    pub fn n(&self) -> usize {
        self.nb * self.bs
    }
}

/// The input matrix as row-major blocks: `blocks[bi * nb + bj]` is the
/// `bs × bs` block at block row `bi`, block column `bj` (row-major inside).
pub fn input_blocks(p: &Params) -> Vec<Vec<f64>> {
    let (a, _) = diag_dominant_system(p.n(), p.seed);
    let (nb, bs) = (p.nb, p.bs);
    let mut blocks = vec![vec![0.0; bs * bs]; nb * nb];
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            blocks[(i / bs) * nb + (j / bs)][(i % bs) * bs + (j % bs)] = v;
        }
    }
    blocks
}

/// Reassemble blocks into a flat row-major `n × n` matrix.
pub fn flatten(p: &Params, blocks: &[Vec<f64>]) -> Vec<f64> {
    let (nb, bs, n) = (p.nb, p.bs, p.n());
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = blocks[(i / bs) * nb + (j / bs)][(i % bs) * bs + (j % bs)];
        }
    }
    a
}

/// Sequential reference: scalar in-place Doolittle LU on the full matrix
/// (identical factors to the block algorithm).
pub fn seq(p: &Params) -> Vec<f64> {
    let n = p.n();
    let (rows, _) = diag_dominant_system(n, p.seed);
    let mut a: Vec<f64> = rows.into_iter().flatten().collect();
    for k in 0..n {
        for i in (k + 1)..n {
            let factor = a[i * n + k] / a[k * n + k];
            a[i * n + k] = factor;
            for j in (k + 1)..n {
                a[i * n + j] -= factor * a[k * n + j];
            }
        }
    }
    a
}

/// Checksum of a factorization (flat matrix).
pub fn checksum(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

// ------------------------------------------------------------- kernels
// All four operate on row-major `bs × bs` blocks, in place.

/// Scalar LU of the diagonal block.
fn lu0(d: &mut [f64], bs: usize) {
    for k in 0..bs {
        for i in (k + 1)..bs {
            let factor = d[i * bs + k] / d[k * bs + k];
            d[i * bs + k] = factor;
            for j in (k + 1)..bs {
                d[i * bs + j] -= factor * d[k * bs + j];
            }
        }
    }
}

/// Forward-substitute the unit-lower factor of `d` through a row-panel
/// block: `a := L(d)⁻¹ · a`.
fn fwd(d: &[f64], a: &mut [f64], bs: usize) {
    for r in 1..bs {
        for rr in 0..r {
            let l = d[r * bs + rr];
            for c in 0..bs {
                a[r * bs + c] -= l * a[rr * bs + c];
            }
        }
    }
}

/// Divide a column-panel block by the upper factor of `d`: `a := a · U(d)⁻¹`.
fn bdiv(d: &[f64], a: &mut [f64], bs: usize) {
    for r in 0..bs {
        for c in 0..bs {
            let mut v = a[r * bs + c];
            for cc in 0..c {
                v -= a[r * bs + cc] * d[cc * bs + c];
            }
            a[r * bs + c] = v / d[c * bs + c];
        }
    }
}

/// Trailing update: `a := a − l · u` (GEMM).
fn bmod(l: &[f64], u: &[f64], a: &mut [f64], bs: usize) {
    for r in 0..bs {
        for k in 0..bs {
            let lv = l[r * bs + k];
            for c in 0..bs {
                a[r * bs + c] -= lv * u[k * bs + c];
            }
        }
    }
}

/// Dependence key for block `(bi, bj)`.
fn key(bi: usize, bj: usize) -> u64 {
    ((bi as u64) << 32) | bj as u64
}

/// CompiledDT: native blocks, the full task DAG submitted eagerly.
pub fn native(p: &Params, threads: usize) -> Vec<f64> {
    let (nb, bs) = (p.nb, p.bs);
    let mut blocks = input_blocks(p);
    {
        let shared: Vec<SharedSlice<'_, f64>> =
            blocks.iter_mut().map(|b| SharedSlice::new(b)).collect();
        let shared = &shared[..];
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        // SAFETY (all task bodies): the dependence clauses below reproduce
        // the data-flow of block LU exactly — every task takes `inout` on
        // the block it writes and `in` on the blocks it reads, so the
        // graph serializes conflicting block accesses.
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                for k in 0..nb {
                    ctx.task_depend(DepSpec::new().inout(key(k, k)), move |_| unsafe {
                        lu0(
                            std::slice::from_raw_parts_mut(shared[k * nb + k].get_mut(0), bs * bs),
                            bs,
                        );
                    });
                    for j in (k + 1)..nb {
                        ctx.task_depend(
                            DepSpec::new().input(key(k, k)).inout(key(k, j)),
                            move |_| unsafe {
                                fwd(
                                    std::slice::from_raw_parts(
                                        shared[k * nb + k].get_mut(0),
                                        bs * bs,
                                    ),
                                    std::slice::from_raw_parts_mut(
                                        shared[k * nb + j].get_mut(0),
                                        bs * bs,
                                    ),
                                    bs,
                                );
                            },
                        );
                    }
                    for i in (k + 1)..nb {
                        ctx.task_depend(
                            DepSpec::new().input(key(k, k)).inout(key(i, k)),
                            move |_| unsafe {
                                bdiv(
                                    std::slice::from_raw_parts(
                                        shared[k * nb + k].get_mut(0),
                                        bs * bs,
                                    ),
                                    std::slice::from_raw_parts_mut(
                                        shared[i * nb + k].get_mut(0),
                                        bs * bs,
                                    ),
                                    bs,
                                );
                            },
                        );
                    }
                    for i in (k + 1)..nb {
                        for j in (k + 1)..nb {
                            ctx.task_depend(
                                DepSpec::new()
                                    .input(key(i, k))
                                    .input(key(k, j))
                                    .inout(key(i, j)),
                                move |_| unsafe {
                                    bmod(
                                        std::slice::from_raw_parts(
                                            shared[i * nb + k].get_mut(0),
                                            bs * bs,
                                        ),
                                        std::slice::from_raw_parts(
                                            shared[k * nb + j].get_mut(0),
                                            bs * bs,
                                        ),
                                        std::slice::from_raw_parts_mut(
                                            shared[i * nb + j].get_mut(0),
                                            bs * bs,
                                        ),
                                        bs,
                                    );
                                },
                            );
                        }
                    }
                }
            });
        });
    }
    flatten(p, &blocks)
}

/// Compiled: boxed-value blocks, same DAG, kernels through block locks.
pub fn dynamic(p: &Params, threads: usize) -> Vec<f64> {
    let (nb, bs) = (p.nb, p.bs);
    let blocks: Vec<Value> = input_blocks(p)
        .into_iter()
        .map(|b| Value::list(b.into_iter().map(Value::Float).collect()))
        .collect();

    fn load(b: &Value) -> Vec<f64> {
        match b {
            Value::List(l) => l.read().iter().map(|v| v.as_float().expect("b")).collect(),
            _ => unreachable!(),
        }
    }
    fn store(b: &Value, data: &[f64]) {
        if let Value::List(l) = b {
            let mut l = l.write();
            for (slot, &v) in l.iter_mut().zip(data) {
                *slot = Value::Float(v);
            }
        }
    }

    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    {
        let blocks = &blocks[..];
        parallel_region(&cfg, |ctx| {
            ctx.single_nowait(|| {
                for k in 0..nb {
                    ctx.task_depend(DepSpec::new().inout(key(k, k)), move |_| {
                        let mut d = load(&blocks[k * nb + k]);
                        lu0(&mut d, bs);
                        store(&blocks[k * nb + k], &d);
                    });
                    for j in (k + 1)..nb {
                        ctx.task_depend(
                            DepSpec::new().input(key(k, k)).inout(key(k, j)),
                            move |_| {
                                let d = load(&blocks[k * nb + k]);
                                let mut a = load(&blocks[k * nb + j]);
                                fwd(&d, &mut a, bs);
                                store(&blocks[k * nb + j], &a);
                            },
                        );
                    }
                    for i in (k + 1)..nb {
                        ctx.task_depend(
                            DepSpec::new().input(key(k, k)).inout(key(i, k)),
                            move |_| {
                                let d = load(&blocks[k * nb + k]);
                                let mut a = load(&blocks[i * nb + k]);
                                bdiv(&d, &mut a, bs);
                                store(&blocks[i * nb + k], &a);
                            },
                        );
                    }
                    for i in (k + 1)..nb {
                        for j in (k + 1)..nb {
                            ctx.task_depend(
                                DepSpec::new()
                                    .input(key(i, k))
                                    .input(key(k, j))
                                    .inout(key(i, j)),
                                move |_| {
                                    let l = load(&blocks[i * nb + k]);
                                    let u = load(&blocks[k * nb + j]);
                                    let mut a = load(&blocks[i * nb + j]);
                                    bmod(&l, &u, &mut a, bs);
                                    store(&blocks[i * nb + j], &a);
                                },
                            );
                        }
                    }
                }
            });
        });
    }
    let native_blocks: Vec<Vec<f64>> = blocks.iter().map(load).collect();
    flatten(p, &native_blocks)
}

/// The minipy source (Pure/Hybrid): the same four kernels and the same
/// eagerly-submitted DAG, with tuple `depend` keys per block.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def lu0(d, bs):
    for k in range(bs):
        for i in range(k + 1, bs):
            factor = d[i * bs + k] / d[k * bs + k]
            d[i * bs + k] = factor
            for j in range(k + 1, bs):
                d[i * bs + j] = d[i * bs + j] - factor * d[k * bs + j]
    return 0

@omp
def fwd(d, a, bs):
    for r in range(1, bs):
        for rr in range(r):
            l = d[r * bs + rr]
            for c in range(bs):
                a[r * bs + c] = a[r * bs + c] - l * a[rr * bs + c]
    return 0

@omp
def bdiv(d, a, bs):
    for r in range(bs):
        for c in range(bs):
            v = a[r * bs + c]
            for cc in range(c):
                v = v - a[r * bs + cc] * d[cc * bs + c]
            a[r * bs + c] = v / d[c * bs + c]
    return 0

@omp
def bmod(l, u, a, bs):
    for r in range(bs):
        for k in range(bs):
            lv = l[r * bs + k]
            for c in range(bs):
                a[r * bs + c] = a[r * bs + c] - lv * u[k * bs + c]
    return 0

@omp
def sparselu(blocks, nb, bs, nthreads):
    with omp("parallel num_threads(nthreads)"):
        with omp("single"):
            for k in range(nb):
                with omp("task depend(inout: (k, k)) firstprivate(k)"):
                    lu0(blocks[k * nb + k], bs)
                for j in range(k + 1, nb):
                    with omp("task depend(in: (k, k)) depend(inout: (k, j)) firstprivate(k, j)"):
                        fwd(blocks[k * nb + k], blocks[k * nb + j], bs)
                for i in range(k + 1, nb):
                    with omp("task depend(in: (k, k)) depend(inout: (i, k)) firstprivate(i, k)"):
                        bdiv(blocks[k * nb + k], blocks[i * nb + k], bs)
                for i in range(k + 1, nb):
                    for j in range(k + 1, nb):
                        with omp("task depend(in: (i, k), (k, j)) depend(inout: (i, j)) firstprivate(i, j, k)"):
                            bmod(blocks[i * nb + k], blocks[k * nb + j], blocks[i * nb + j], bs)
    return 0
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<f64> {
    let (nb, bs) = (p.nb, p.bs);
    let runner = interpreted_runner(mode, SOURCE);
    let blocks = Value::list(
        input_blocks(p)
            .into_iter()
            .map(|b| Value::list(b.into_iter().map(Value::Float).collect()))
            .collect(),
    );
    runner
        .call_global(
            "sparselu",
            vec![
                blocks.clone(),
                Value::Int(nb as i64),
                Value::Int(bs as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("sparselu benchmark failed");
    let native_blocks: Vec<Vec<f64>> = match &blocks {
        Value::List(bl) => bl
            .read()
            .iter()
            .map(|b| match b {
                Value::List(l) => l.read().iter().map(|v| v.as_float().expect("b")).collect(),
                _ => unreachable!(),
            })
            .collect(),
        _ => unreachable!(),
    };
    flatten(p, &native_blocks)
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Returns the PyOMP capability error for [`Mode::PyOmp`] (no `depend`).
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    if mode == Mode::PyOmp {
        return Err(pyomp::unsupported_reason("sparselu")
            .expect("sparselu unsupported")
            .to_owned());
    }
    let (a, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => unreachable!(),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&a),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            nb: 4,
            bs: 6,
            seed: 17,
        }
    }

    #[test]
    fn seq_matches_scalar_lu_reconstruction() {
        // Reconstruct A from the in-place factors and compare.
        let p = small();
        let n = p.n();
        let lu = seq(&p);
        let (rows, _) = diag_dominant_system(n, p.seed);
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    let l = if k < i {
                        lu[i * n + k]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[k * n + j] } else { 0.0 };
                    v += l * u;
                }
                worst = worst.max((v - rows[i][j]).abs());
            }
        }
        assert!(worst < 1e-9, "reconstruction error {worst}");
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = checksum(&seq(&p));
        for threads in [1, 4] {
            assert!(
                close(checksum(&native(&p, threads)), reference, 1e-9),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert!(close(checksum(&dynamic(&p, 3)), checksum(&seq(&p)), 1e-9));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            nb: 3,
            bs: 4,
            seed: 19,
        };
        let reference = checksum(&seq(&p));
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(
                close(checksum(&interpreted(mode, &p, 2)), reference, 1e-8),
                "{mode}"
            );
        }
    }

    #[test]
    fn pyomp_reports_capability_error() {
        let err = run(Mode::PyOmp, 2, &small()).unwrap_err();
        assert!(err.contains("depend"), "{err}");
    }
}
