//! Jacobi iterative solver for `A·x = b` (paper §IV-A *jacobi*).
//!
//! Table I features: `parallel`, `for reduction(+)`, `single`, **explicit
//! barrier**. One long-lived parallel region drives the whole iteration
//! loop: a work-shared update of `x_new`, a max-norm error reduction, a
//! `single` that commits `x ← x_new`, and an explicit barrier before every
//! thread tests convergence.

use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;
use parking_lot::Mutex;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{diag_dominant_system, DEFAULT_SEED};

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, for reduction(+), single | explicit barrier";

/// Problem parameters (paper: 3k×3k, ≤1000 iterations, tol 1e-6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Matrix dimension.
    pub n: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence tolerance (max-norm of the update).
    pub tol: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 96,
            max_iters: 1000,
            tol: 1e-6,
            seed: DEFAULT_SEED,
        }
    }
}

/// Sequential reference; returns the solution vector.
pub fn seq(p: &Params) -> Vec<f64> {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let mut x = vec![0.0; p.n];
    let mut x_new = vec![0.0; p.n];
    for _ in 0..p.max_iters {
        let mut err = 0.0f64;
        for i in 0..p.n {
            let mut s = 0.0;
            for j in 0..p.n {
                if j != i {
                    s += a[i][j] * x[j];
                }
            }
            let v = (b[i] - s) / a[i][i];
            err = err.max((v - x[i]).abs());
            x_new[i] = v;
        }
        std::mem::swap(&mut x, &mut x_new);
        if err < p.tol {
            break;
        }
    }
    x
}

/// Residual max-norm `‖A·x − b‖∞` (verification).
pub fn residual(p: &Params, x: &[f64]) -> f64 {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    (0..p.n)
        .map(|i| {
            let ax: f64 = (0..p.n).map(|j| a[i][j] * x[j]).sum();
            (ax - b[i]).abs()
        })
        .fold(0.0, f64::max)
}

/// Checksum of a solution vector.
pub fn checksum(x: &[f64]) -> f64 {
    x.iter().sum()
}

fn native_impl(p: &Params, threads: usize, backend: Backend) -> Vec<f64> {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let n = p.n as i64;
    let mut x = vec![0.0f64; p.n];
    let mut x_new = vec![0.0f64; p.n];
    {
        let x_s = SharedSlice::new(&mut x);
        let x_new_s = SharedSlice::new(&mut x_new);
        let err_slot = Mutex::new(f64::INFINITY);
        let cfg = ParallelConfig::new().num_threads(threads).backend(backend);
        parallel_region(&cfg, |ctx| {
            for _ in 0..p.max_iters {
                let err = ctx.for_reduce(
                    ForSpec::new(),
                    0..n,
                    0.0f64,
                    |i, acc| {
                        let i = i as usize;
                        let row = &a[i];
                        let mut s = 0.0;
                        for (j, &aij) in row.iter().enumerate() {
                            if j != i {
                                // SAFETY: x is only written inside the
                                // `single` below, behind barriers.
                                s += aij * unsafe { x_s.get(j) };
                            }
                        }
                        let v = (b[i] - s) / row[i];
                        // SAFETY: index i is owned by this thread's chunk.
                        let old = unsafe { x_s.get(i) };
                        unsafe { x_new_s.set(i, v) };
                        *acc = acc.max((v - old).abs());
                    },
                    f64::max,
                );
                ctx.single(|| {
                    for j in 0..p.n {
                        // SAFETY: all other threads wait at the single's
                        // implicit barrier.
                        unsafe { x_s.set(j, x_new_s.get(j)) };
                    }
                    *err_slot.lock() = err;
                });
                // Explicit barrier before the convergence test (Table I).
                ctx.barrier();
                if *err_slot.lock() < p.tol {
                    break;
                }
            }
        });
    }
    x
}

/// CompiledDT: native `f64` arrays.
pub fn native(p: &Params, threads: usize) -> Vec<f64> {
    native_impl(p, threads, Backend::Atomic)
}

/// Compiled: the same structure over boxed values. The hot inner product
/// runs on `minipy::Value` lists, reproducing Cython's generic-object path.
pub fn dynamic(p: &Params, threads: usize) -> Vec<f64> {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let n = p.n as i64;
    // Dynamic-value copies of the system.
    let a_v: Vec<Vec<Value>> = a
        .iter()
        .map(|row| row.iter().map(|&v| Value::Float(v)).collect())
        .collect();
    let b_v: Vec<Value> = b.iter().map(|&v| Value::Float(v)).collect();
    let x = Value::list(vec![Value::Float(0.0); p.n]);
    let x_new = Value::list(vec![Value::Float(0.0); p.n]);
    let err_slot = Mutex::new(f64::INFINITY);
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        for _ in 0..p.max_iters {
            let err = ctx.for_reduce(
                ForSpec::new(),
                0..n,
                0.0f64,
                |i, acc| {
                    let i = i as usize;
                    let row = &a_v[i];
                    let mut s = 0.0f64;
                    let x_list = match &x {
                        Value::List(l) => l.read(),
                        _ => unreachable!(),
                    };
                    for (j, aij) in row.iter().enumerate() {
                        if j != i {
                            // Boxed loads + dynamic dispatch per element.
                            s += aij.as_float().expect("a") * x_list[j].as_float().expect("x");
                        }
                    }
                    let v = (b_v[i].as_float().expect("b") - s) / row[i].as_float().expect("diag");
                    let old = x_list[i].as_float().expect("x_i");
                    drop(x_list);
                    if let Value::List(l) = &x_new {
                        l.write()[i] = Value::Float(v);
                    }
                    *acc = acc.max((v - old).abs());
                },
                f64::max,
            );
            ctx.single(|| {
                if let (Value::List(xs), Value::List(xn)) = (&x, &x_new) {
                    let src = xn.read();
                    let mut dst = xs.write();
                    dst.clone_from_slice(&src);
                }
                *err_slot.lock() = err;
            });
            ctx.barrier();
            if *err_slot.lock() < p.tol {
                break;
            }
        }
    });
    match &x {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("x")).collect(),
        _ => unreachable!(),
    }
}

/// The minipy source (Pure/Hybrid).
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def jacobi(a, b, n, max_iters, tol, nthreads):
    x = [0.0] * n
    x_new = [0.0] * n
    err = 0.0
    with omp("parallel num_threads(nthreads)"):
        it = 0
        while it < max_iters:
            with omp("single"):
                err = 0.0
            with omp("for reduction(max:err)"):
                for i in range(n):
                    row = a[i]
                    s = 0.0
                    for j in range(n):
                        if j != i:
                            s += row[j] * x[j]
                    v = (b[i] - s) / row[i]
                    d = v - x[i]
                    if d < 0.0:
                        d = -d
                    x_new[i] = v
                    err = max(err, d)
            with omp("single"):
                for j in range(n):
                    x[j] = x_new[j]
            local_err = err
            omp("barrier")
            if local_err < tol:
                break
            it += 1
    return x
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<f64> {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let runner = interpreted_runner(mode, SOURCE);
    let a_v = Value::list(
        a.iter()
            .map(|row| Value::list(row.iter().map(|&v| Value::Float(v)).collect()))
            .collect(),
    );
    let b_v = Value::list(b.iter().map(|&v| Value::Float(v)).collect());
    let result = runner
        .call_global(
            "jacobi",
            vec![
                a_v,
                b_v,
                Value::Int(p.n as i64),
                Value::Int(p.max_iters as i64),
                Value::Float(p.tol),
                Value::Int(threads as i64),
            ],
        )
        .expect("jacobi benchmark failed");
    match result {
        Value::List(l) => l.read().iter().map(|v| v.as_float().expect("x")).collect(),
        other => panic!("jacobi returned {}", other.type_name()),
    }
}

/// PyOMP baseline: static-schedule loops over `f64` buffers. The iterative
/// structure uses repeated parallel regions (PyOMP's prange idiom).
pub fn pyomp_baseline(p: &Params, threads: usize) -> Vec<f64> {
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let n = p.n as i64;
    let mut x = vec![0.0f64; p.n];
    let mut x_new = vec![0.0f64; p.n];
    for _ in 0..p.max_iters {
        let err = {
            let x_ref = &x;
            let x_new_s = SharedSlice::new(&mut x_new);
            pyomp::prange_reduce_max(threads, n, |i| {
                let i = i as usize;
                let mut s = 0.0;
                for (j, &aij) in a[i].iter().enumerate() {
                    if j != i {
                        s += aij * x_ref[j];
                    }
                }
                let v = (b[i] - s) / a[i][i];
                // SAFETY: disjoint indices per thread.
                unsafe { x_new_s.set(i, v) };
                (v - x_ref[i]).abs()
            })
        };
        std::mem::swap(&mut x, &mut x_new);
        if err < p.tol {
            break;
        }
    }
    x
}

/// Run in any mode, timed (setup excluded where possible).
///
/// # Errors
///
/// Never fails: every mode supports jacobi.
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    let (x, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => timed(|| pyomp_baseline(p, threads)),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&x),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            n: 24,
            max_iters: 500,
            tol: 1e-9,
            seed: 11,
        }
    }

    #[test]
    fn seq_converges_to_solution() {
        let p = small();
        let x = seq(&p);
        assert!(residual(&p, &x) < 1e-6, "residual {}", residual(&p, &x));
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = checksum(&seq(&p));
        for threads in [1, 4] {
            assert!(close(checksum(&native(&p, threads)), reference, 1e-8));
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert!(close(checksum(&dynamic(&p, 3)), checksum(&seq(&p)), 1e-8));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params {
            n: 10,
            max_iters: 200,
            tol: 1e-8,
            seed: 11,
        };
        let reference = checksum(&seq(&p));
        for mode in [Mode::Pure, Mode::Hybrid] {
            let x = interpreted(mode, &p, 2);
            assert!(close(checksum(&x), reference, 1e-6), "{mode}");
        }
    }

    #[test]
    fn pyomp_matches_seq() {
        let p = small();
        assert!(close(
            checksum(&pyomp_baseline(&p, 4)),
            checksum(&seq(&p)),
            1e-8
        ));
    }
}
