//! LU decomposition without pivoting (paper §IV-A *lu*).
//!
//! Table I features: `parallel`, multiple `for` loops, `single`, implicit
//! barriers. One parallel region sweeps the elimination steps: a `single`
//! prepares each step, then a work-shared loop updates the trailing rows.
//! Diagonally dominant inputs keep the factorization stable without
//! pivoting.

use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::pyomp;
use crate::util::SharedSlice;
use crate::workloads::{diag_dominant_system, DEFAULT_SEED};

/// Table I row for this benchmark.
pub const FEATURES: &str = "parallel, multiple for loops, single | implicit barriers";

/// Problem parameters (paper: 2k×2k matrix; scaled default below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Matrix dimension.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 64,
            seed: DEFAULT_SEED,
        }
    }
}

/// The input matrix (rows).
pub fn input(p: &Params) -> Vec<Vec<f64>> {
    diag_dominant_system(p.n, p.seed).0
}

/// Sequential in-place LU (Doolittle, L below the diagonal, U on/above).
pub fn seq(p: &Params) -> Vec<Vec<f64>> {
    let mut a = input(p);
    let n = p.n;
    for k in 0..n {
        for i in (k + 1)..n {
            let factor = a[i][k] / a[k][k];
            a[i][k] = factor;
            // Textbook index form; rows i and k alias under iterators.
            #[allow(clippy::needless_range_loop)]
            for j in (k + 1)..n {
                a[i][j] -= factor * a[k][j];
            }
        }
    }
    a
}

/// Max-norm of `L·U − A` (verification).
pub fn factorization_error(p: &Params, lu: &[Vec<f64>]) -> f64 {
    let a = input(p);
    let n = p.n;
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0;
            for (k, row_k) in lu.iter().enumerate().take(n) {
                let l = if k < i {
                    lu[i][k]
                } else if k == i {
                    1.0
                } else {
                    0.0
                };
                let u = if k <= j { row_k[j] } else { 0.0 };
                v += l * u;
            }
            worst = worst.max((v - a[i][j]).abs());
        }
    }
    worst
}

/// Checksum of a factorization.
pub fn checksum(a: &[Vec<f64>]) -> f64 {
    a.iter().flatten().map(|v| v.abs()).sum()
}

/// CompiledDT: native `f64` rows.
pub fn native(p: &Params, threads: usize) -> Vec<Vec<f64>> {
    let mut a = input(p);
    let n = p.n;
    {
        // One SharedSlice per row: a step's updates touch disjoint rows.
        let rows: Vec<SharedSlice<'_, f64>> =
            a.iter_mut().map(|row| SharedSlice::new(row)).collect();
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            for k in 0..n {
                // SAFETY: row k is read-only during this step; rows below k
                // are partitioned by the work-sharing loop.
                let pivot = unsafe { rows[k].get(k) };
                ctx.for_each(ForSpec::new(), (k + 1) as i64..n as i64, |i| {
                    let i = i as usize;
                    // SAFETY: each worker owns whole distinct rows i.
                    unsafe {
                        let factor = rows[i].get(k) / pivot;
                        rows[i].set(k, factor);
                        for j in (k + 1)..n {
                            let v = rows[i].get(j) - factor * rows[k].get(j);
                            rows[i].set(j, v);
                        }
                    }
                });
                // Implicit barrier: step k+1 reads the updated row k+1.
            }
        });
    }
    a
}

/// Compiled: boxed-value rows.
pub fn dynamic(p: &Params, threads: usize) -> Vec<Vec<f64>> {
    let a0 = input(p);
    let n = p.n;
    let a: Vec<Value> = a0
        .iter()
        .map(|row| Value::list(row.iter().map(|&v| Value::Float(v)).collect()))
        .collect();
    let cfg = ParallelConfig::new()
        .num_threads(threads)
        .backend(Backend::Atomic);
    parallel_region(&cfg, |ctx| {
        for k in 0..n {
            let pivot = match &a[k] {
                Value::List(l) => l.read()[k].as_float().expect("pivot"),
                _ => unreachable!(),
            };
            ctx.for_each(ForSpec::new(), (k + 1) as i64..n as i64, |i| {
                let i = i as usize;
                let row_k: Vec<f64> = match &a[k] {
                    Value::List(l) => l.read()[k + 1..n]
                        .iter()
                        .map(|v| v.as_float().expect("u"))
                        .collect(),
                    _ => unreachable!(),
                };
                if let Value::List(l) = &a[i] {
                    let mut row = l.write();
                    let factor = row[k].as_float().expect("l") / pivot;
                    row[k] = Value::Float(factor);
                    for (off, &ukj) in row_k.iter().enumerate() {
                        let j = k + 1 + off;
                        let v = row[j].as_float().expect("a") - factor * ukj;
                        row[j] = Value::Float(v);
                    }
                }
            });
        }
    });
    a.iter()
        .map(|row| match row {
            Value::List(l) => l.read().iter().map(|v| v.as_float().expect("a")).collect(),
            _ => unreachable!(),
        })
        .collect()
}

/// The minipy source (Pure/Hybrid). Uses `single` to stage the pivot and
/// multiple work-shared loops, matching Table I.
pub const SOURCE: &str = r#"
from omp4py import *

@omp
def lu(a, n, nthreads):
    pivot = [0.0]
    with omp("parallel num_threads(nthreads)"):
        k = 0
        while k < n:
            with omp("single"):
                pivot[0] = a[k][k]
            with omp("for"):
                for i in range(k + 1, n):
                    row = a[i]
                    row_k = a[k]
                    factor = row[k] / pivot[0]
                    row[k] = factor
                    for j in range(k + 1, n):
                        row[j] = row[j] - factor * row_k[j]
            k += 1
    return 0
"#;

/// Pure/Hybrid: interpreted execution.
pub fn interpreted(mode: Mode, p: &Params, threads: usize) -> Vec<Vec<f64>> {
    let a0 = input(p);
    let runner = interpreted_runner(mode, SOURCE);
    let a = Value::list(
        a0.iter()
            .map(|row| Value::list(row.iter().map(|&v| Value::Float(v)).collect()))
            .collect(),
    );
    runner
        .call_global(
            "lu",
            vec![
                a.clone(),
                Value::Int(p.n as i64),
                Value::Int(threads as i64),
            ],
        )
        .expect("lu benchmark failed");
    match &a {
        Value::List(rows) => rows
            .read()
            .iter()
            .map(|row| match row {
                Value::List(l) => l.read().iter().map(|v| v.as_float().expect("a")).collect(),
                _ => unreachable!(),
            })
            .collect(),
        _ => unreachable!(),
    }
}

/// PyOMP baseline: one static prange per elimination step.
pub fn pyomp_baseline(p: &Params, threads: usize) -> Vec<Vec<f64>> {
    let mut a = input(p);
    let n = p.n;
    {
        let rows: Vec<SharedSlice<'_, f64>> =
            a.iter_mut().map(|row| SharedSlice::new(row)).collect();
        for k in 0..n {
            // SAFETY: row k is frozen during step k.
            let pivot = unsafe { rows[k].get(k) };
            pyomp::prange(threads, (n - k - 1) as i64, |off| {
                let i = k + 1 + off as usize;
                // SAFETY: whole distinct rows per worker.
                unsafe {
                    let factor = rows[i].get(k) / pivot;
                    rows[i].set(k, factor);
                    for j in (k + 1)..n {
                        let v = rows[i].get(j) - factor * rows[k].get(j);
                        rows[i].set(j, v);
                    }
                }
            });
        }
    }
    a
}

/// Run in any mode, timed.
///
/// # Errors
///
/// Never fails: every mode supports *lu*.
pub fn run(mode: Mode, threads: usize, p: &Params) -> Result<BenchOutput, String> {
    let (a, seconds) = match mode {
        Mode::Pure | Mode::Hybrid => timed(|| interpreted(mode, p, threads)),
        Mode::Compiled => timed(|| dynamic(p, threads)),
        Mode::CompiledDT => timed(|| native(p, threads)),
        Mode::PyOmp => timed(|| pyomp_baseline(p, threads)),
    };
    Ok(BenchOutput {
        seconds,
        check: checksum(&a),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::close;

    fn small() -> Params {
        Params { n: 20, seed: 13 }
    }

    #[test]
    fn seq_factorization_reconstructs() {
        let p = small();
        let lu = seq(&p);
        assert!(factorization_error(&p, &lu) < 1e-9);
    }

    #[test]
    fn native_matches_seq() {
        let p = small();
        let reference = checksum(&seq(&p));
        for threads in [1, 4] {
            assert!(close(checksum(&native(&p, threads)), reference, 1e-10));
        }
    }

    #[test]
    fn dynamic_matches_seq() {
        let p = small();
        assert!(close(checksum(&dynamic(&p, 3)), checksum(&seq(&p)), 1e-10));
    }

    #[test]
    fn interpreted_matches_seq() {
        let p = Params { n: 8, seed: 13 };
        let reference = checksum(&seq(&p));
        for mode in [Mode::Pure, Mode::Hybrid] {
            assert!(
                close(checksum(&interpreted(mode, &p, 2)), reference, 1e-9),
                "{mode}"
            );
        }
    }

    #[test]
    fn pyomp_matches_seq() {
        let p = small();
        assert!(close(
            checksum(&pyomp_baseline(&p, 4)),
            checksum(&seq(&p)),
            1e-10
        ));
    }
}
