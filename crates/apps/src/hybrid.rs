//! Hybrid MPI/OpenMP Jacobi (paper §IV-C, Fig. 8).
//!
//! MPI distributes the rows of `A` and the entries of `b` across ranks;
//! within each iteration every rank updates its block of `x` with OpenMP,
//! the updated vector is exchanged with `MPI_Allgather`, and convergence is
//! checked with `MPI_Allreduce` — exactly the paper's structure, with
//! `minimpi` standing in for mpi4py and a [`minimpi::NetModel`] charging
//! inter-node transfer costs.

use minimpi::{Comm, NetModel, World};
use minipy::Value;
use omp4rs::exec::{parallel_region, ForSpec, ParallelConfig};
use omp4rs::Backend;
use parking_lot::Mutex;

use crate::modes::{interpreted_runner, timed, BenchOutput, Mode};
use crate::workloads::{diag_dominant_system, DEFAULT_SEED};

/// Problem parameters (paper: 3k×3k, 20k×20k for CompiledDT; scaled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Matrix dimension (must be a multiple of the rank count).
    pub n: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 96,
            max_iters: 400,
            tol: 1e-6,
            seed: DEFAULT_SEED,
        }
    }
}

/// One rank's local block update in CompiledDT mode; returns
/// `(x_new_local, local_err)`.
fn local_update_native(
    a_rows: &[Vec<f64>],
    b_local: &[f64],
    x: &[f64],
    row_start: usize,
    threads: usize,
) -> (Vec<f64>, f64) {
    let rows = a_rows.len();
    let mut x_new = vec![0.0f64; rows];
    let err_out = Mutex::new(0.0f64);
    {
        let x_new_s = crate::util::SharedSlice::new(&mut x_new);
        let cfg = ParallelConfig::new()
            .num_threads(threads)
            .backend(Backend::Atomic);
        parallel_region(&cfg, |ctx| {
            let err = ctx.for_reduce(
                ForSpec::new(),
                0..rows as i64,
                0.0f64,
                |i, acc| {
                    let i = i as usize;
                    let gi = row_start + i;
                    let row = &a_rows[i];
                    let mut s = 0.0;
                    for (j, &aij) in row.iter().enumerate() {
                        if j != gi {
                            s += aij * x[j];
                        }
                    }
                    let v = (b_local[i] - s) / row[gi];
                    // SAFETY: disjoint indices per thread.
                    unsafe { x_new_s.set(i, v) };
                    *acc = acc.max((v - x[gi]).abs());
                },
                f64::max,
            );
            ctx.master(|| *err_out.lock() = err);
        });
    }
    (x_new, err_out.into_inner())
}

/// Interpreted local update source (Pure/Hybrid ranks).
const LOCAL_SOURCE: &str = r#"
from omp4py import *

@omp
def local_update(a_rows, b_local, x, row_start, rows, nthreads):
    err = 0.0
    x_new = [0.0] * rows
    with omp("parallel for reduction(max:err) num_threads(nthreads)"):
        for i in range(rows):
            gi = row_start + i
            row = a_rows[i]
            s = 0.0
            for j in range(len(row)):
                if j != gi:
                    s += row[j] * x[j]
            v = (b_local[i] - s) / row[gi]
            d = v - x[gi]
            if d < 0.0:
                d = -d
            x_new[i] = v
            err = max(err, d)
    return [err, x_new]
"#;

/// Deadline on each solution exchange when no fault is injected: generous
/// enough that a healthy run never trips it.
const HEALTHY_EXCHANGE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// Fault injection for [`solve_with_fault`]: `rank` goes silent (drops all
/// outgoing messages) at the start of iteration `at_iter`, and every healthy
/// rank's exchange runs under `timeout`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFault {
    /// Rank that fails.
    pub rank: usize,
    /// Iteration at which it fails (0-based).
    pub at_iter: usize,
    /// Exchange deadline for the surviving ranks.
    pub timeout: std::time::Duration,
}

/// Run the hybrid jacobi: `nodes` MPI ranks × `threads` OpenMP threads.
/// Returns the converged solution (gathered) for verification.
///
/// # Errors
///
/// Fails for [`Mode::PyOmp`] (Numba cannot integrate mpi4py) and when `n`
/// is not divisible by `nodes`.
pub fn solve(
    mode: Mode,
    nodes: usize,
    threads: usize,
    p: &Params,
    net: NetModel,
) -> Result<Vec<f64>, String> {
    solve_with_fault(mode, nodes, threads, p, net, None)
}

/// [`solve`] with optional rank-failure injection. The solution-vector
/// exchange uses minimpi's deadline collectives, so a dead rank surfaces as
/// an error return on every surviving rank instead of a hang.
///
/// # Errors
///
/// See [`solve`]; additionally, every exchange that exceeds its deadline
/// (because a rank died) reports the underlying [`minimpi::MpiError`].
pub fn solve_with_fault(
    mode: Mode,
    nodes: usize,
    threads: usize,
    p: &Params,
    net: NetModel,
    fault: Option<RankFault>,
) -> Result<Vec<f64>, String> {
    if mode == Mode::PyOmp {
        return Err(crate::pyomp::unsupported_reason("hybrid")
            .expect("hybrid unsupported")
            .to_owned());
    }
    if !p.n.is_multiple_of(nodes) {
        return Err(format!("n={} must be divisible by nodes={nodes}", p.n));
    }
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let rows_per_rank = p.n / nodes;
    let p = *p;

    let timeout = fault.map_or(HEALTHY_EXCHANGE_TIMEOUT, |f| f.timeout);

    let results = World::run_with_net(nodes, net, move |comm: &Comm| {
        let rank = comm.rank();
        let row_start = rank * rows_per_rank;
        let a_rows: Vec<Vec<f64>> = a[row_start..row_start + rows_per_rank].to_vec();
        let b_local: Vec<f64> = b[row_start..row_start + rows_per_rank].to_vec();
        let mut x = vec![0.0f64; p.n];

        // Interpreted ranks set up their interpreter once.
        let runner = mode
            .exec_mode()
            .map(|_| interpreted_runner(mode, LOCAL_SOURCE));
        let a_boxed: Option<Value> = runner.as_ref().map(|_| {
            Value::list(
                a_rows
                    .iter()
                    .map(|row| Value::list(row.iter().map(|&v| Value::Float(v)).collect()))
                    .collect(),
            )
        });
        let b_boxed: Option<Value> = runner
            .as_ref()
            .map(|_| Value::list(b_local.iter().map(|&v| Value::Float(v)).collect()));

        for iter in 0..p.max_iters {
            if let Some(f) = fault {
                if f.rank == rank && f.at_iter == iter {
                    comm.inject_failure();
                    return Err(format!("rank {rank} failed at iteration {iter} (injected)"));
                }
            }
            let (x_new, local_err) = match (&runner, mode) {
                (Some(runner), Mode::Pure | Mode::Hybrid) => {
                    let x_boxed = Value::list(x.iter().map(|&v| Value::Float(v)).collect());
                    let out = runner
                        .call_global(
                            "local_update",
                            vec![
                                a_boxed.clone().expect("boxed a"),
                                b_boxed.clone().expect("boxed b"),
                                x_boxed,
                                Value::Int(row_start as i64),
                                Value::Int(rows_per_rank as i64),
                                Value::Int(threads as i64),
                            ],
                        )
                        .expect("local_update failed");
                    match &out {
                        Value::List(l) => {
                            let l = l.read();
                            let err = l[0].as_float().expect("err");
                            let x_new: Vec<f64> = match &l[1] {
                                Value::List(xs) => {
                                    xs.read().iter().map(|v| v.as_float().expect("x")).collect()
                                }
                                _ => unreachable!(),
                            };
                            (x_new, err)
                        }
                        _ => unreachable!(),
                    }
                }
                // Compiled and CompiledDT share the native kernel; the
                // Compiled variant's boxing overhead is second-order next to
                // the MPI exchange this experiment studies.
                _ => local_update_native(&a_rows, &b_local, &x, row_start, threads),
            };
            // Exchange the solution vector (paper: MPI_Allgather)…
            x = comm
                .allgather_timeout(x_new, timeout)
                .map_err(|e| format!("rank {rank}, iteration {iter}: {e}"))?;
            // …and evaluate the stopping criterion (paper: MPI_Allreduce).
            let global_err = comm
                .allreduce_max_timeout(local_err, timeout)
                .map_err(|e| format!("rank {rank}, iteration {iter}: {e}"))?;
            if global_err < p.tol {
                break;
            }
        }
        Ok(x)
    });
    let mut solutions = Vec::with_capacity(results.len());
    for r in results {
        solutions.push(r?);
    }
    Ok(solutions.into_iter().next().expect("rank 0 result"))
}

/// [`solve`] with every exchange routed through minimpi's reliable layer
/// (`allgather_resilient` / `allreduce_max_resilient`): transient message
/// loss from a lossy [`NetModel`] is absorbed by `policy`'s retransmits,
/// so the solve converges to the same solution it would on a reliable
/// interconnect — the paper-Fig. 8 workload surviving a lossy netmodel.
///
/// Only the CompiledDT kernel is exercised here (the exchange layer under
/// test is mode-independent).
///
/// # Errors
///
/// Decomposition errors as in [`solve`]; additionally
/// [`minimpi::MpiError::RetriesExhausted`] (stringified, with rank and
/// iteration) when loss persists past the retry budget.
pub fn solve_resilient(
    nodes: usize,
    threads: usize,
    p: &Params,
    net: NetModel,
    policy: &minimpi::RetryPolicy,
) -> Result<Vec<f64>, String> {
    if !p.n.is_multiple_of(nodes) {
        return Err(format!("n={} must be divisible by nodes={nodes}", p.n));
    }
    let (a, b) = diag_dominant_system(p.n, p.seed);
    let rows_per_rank = p.n / nodes;
    let p = *p;

    let results: Vec<Result<Vec<f64>, String>> =
        World::run_with_net(nodes, net, move |comm: &Comm| {
            let rank = comm.rank();
            let row_start = rank * rows_per_rank;
            let a_rows: Vec<Vec<f64>> = a[row_start..row_start + rows_per_rank].to_vec();
            let b_local: Vec<f64> = b[row_start..row_start + rows_per_rank].to_vec();
            let mut x = vec![0.0f64; p.n];
            for iter in 0..p.max_iters {
                let (x_new, local_err) =
                    local_update_native(&a_rows, &b_local, &x, row_start, threads);
                x = comm
                    .allgather_resilient(x_new, policy)
                    .map_err(|e| format!("rank {rank}, iteration {iter}: {e}"))?;
                let global_err = comm
                    .allreduce_max_resilient(local_err, policy)
                    .map_err(|e| format!("rank {rank}, iteration {iter}: {e}"))?;
                if global_err < p.tol {
                    break;
                }
            }
            Ok(x)
        });
    let mut solutions = Vec::with_capacity(results.len());
    for r in results {
        solutions.push(r?);
    }
    Ok(solutions.into_iter().next().expect("rank 0 result"))
}

/// Run + time; check is the solution checksum.
///
/// # Errors
///
/// See [`solve`].
pub fn run(
    mode: Mode,
    nodes: usize,
    threads: usize,
    p: &Params,
    net: NetModel,
) -> Result<BenchOutput, String> {
    let (result, seconds) = timed(|| solve(mode, nodes, threads, p, net));
    let x = result?;
    Ok(BenchOutput {
        seconds,
        check: x.iter().sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi;
    use crate::modes::close;

    fn small() -> Params {
        Params {
            n: 24,
            max_iters: 400,
            tol: 1e-9,
            seed: 11,
        }
    }

    #[test]
    fn single_rank_matches_sequential_jacobi() {
        let p = small();
        let jp = jacobi::Params {
            n: p.n,
            max_iters: p.max_iters,
            tol: p.tol,
            seed: p.seed,
        };
        let reference = jacobi::checksum(&jacobi::seq(&jp));
        let x = solve(Mode::CompiledDT, 1, 2, &p, NetModel::local()).unwrap();
        assert!(close(x.iter().sum(), reference, 1e-7));
    }

    #[test]
    fn multi_rank_agrees_with_single_rank() {
        let p = small();
        let x1 = solve(Mode::CompiledDT, 1, 1, &p, NetModel::local()).unwrap();
        for nodes in [2, 4] {
            let xn = solve(Mode::CompiledDT, nodes, 1, &p, NetModel::local()).unwrap();
            assert!(
                close(x1.iter().sum(), xn.iter().sum(), 1e-8),
                "nodes={nodes}"
            );
        }
    }

    #[test]
    fn interpreted_ranks_agree() {
        let p = Params {
            n: 12,
            max_iters: 200,
            tol: 1e-8,
            seed: 11,
        };
        let reference: f64 = solve(Mode::CompiledDT, 2, 1, &p, NetModel::local())
            .unwrap()
            .iter()
            .sum();
        for mode in [Mode::Pure, Mode::Hybrid] {
            let x = solve(mode, 2, 2, &p, NetModel::local()).unwrap();
            assert!(close(x.iter().sum(), reference, 1e-6), "{mode}");
        }
    }

    #[test]
    fn net_model_does_not_change_result() {
        let p = small();
        let local = solve(Mode::CompiledDT, 2, 1, &p, NetModel::local()).unwrap();
        let cluster = solve(Mode::CompiledDT, 2, 1, &p, NetModel::cluster(1)).unwrap();
        assert!(close(local.iter().sum(), cluster.iter().sum(), 1e-12));
    }

    #[test]
    fn dead_rank_yields_error_not_hang() {
        use std::time::Duration;
        let p = small();
        let start = std::time::Instant::now();
        let fault = RankFault {
            rank: 1,
            at_iter: 2,
            timeout: Duration::from_millis(300),
        };
        let out = solve_with_fault(Mode::CompiledDT, 3, 1, &p, NetModel::local(), Some(fault));
        let msg = out.expect_err("a dead rank must surface as an error");
        assert!(
            msg.contains("injected") || msg.contains("timed out") || msg.contains("exited"),
            "unexpected error: {msg}"
        );
        assert!(start.elapsed() < Duration::from_secs(30), "must not hang");
    }

    #[test]
    fn resilient_solve_survives_a_lossy_net() {
        use std::time::Duration;
        let p = small();
        let reference: f64 = solve(Mode::CompiledDT, 2, 1, &p, NetModel::local())
            .unwrap()
            .iter()
            .sum();
        // 10% deterministic message loss: the plain exchange would hang or
        // time out, the resilient exchange retransmits and converges to the
        // same solution.
        let net = NetModel::local().with_loss(0.10, 23);
        let policy = minimpi::RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(1),
            per_attempt_timeout: Duration::from_millis(150),
            seed: 5,
        };
        let x = solve_resilient(2, 1, &p, net, &policy).unwrap();
        assert!(close(x.iter().sum(), reference, 1e-9));
    }

    #[test]
    fn rejects_bad_decomposition() {
        let p = Params { n: 10, ..small() };
        assert!(solve(Mode::CompiledDT, 3, 1, &p, NetModel::local()).is_err());
        assert!(solve(Mode::PyOmp, 2, 1, &small(), NetModel::local()).is_err());
    }
}
