//! Execution-mode plumbing shared by all benchmarks.

use std::fmt;
use std::time::Instant;

use omp4rs_pyfront::{ExecMode, Runner};

/// The paper's execution modes plus the PyOMP baseline (artifact §D:
/// `0` Pure, `1` Hybrid, `2` Compiled, `3` CompiledDT, `-1` PyOMP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Interpreted user code, mutex runtime internals.
    Pure,
    /// Interpreted user code, atomic runtime internals.
    Hybrid,
    /// Native closures over boxed dynamic values (Cython, generic objects).
    Compiled,
    /// Native closures over native numeric types (Cython + `int`/`float`).
    CompiledDT,
    /// The restricted Numba-style baseline.
    PyOmp,
}

impl Mode {
    /// All five modes, in the paper's presentation order.
    pub fn all() -> [Mode; 5] {
        [
            Mode::Pure,
            Mode::Hybrid,
            Mode::Compiled,
            Mode::CompiledDT,
            Mode::PyOmp,
        ]
    }

    /// The four OMP4Py modes (excluding the baseline).
    pub fn omp4py_modes() -> [Mode; 4] {
        [Mode::Pure, Mode::Hybrid, Mode::Compiled, Mode::CompiledDT]
    }

    /// Parse the artifact's numeric code or a name.
    pub fn parse(text: &str) -> Option<Mode> {
        Some(match text.trim() {
            "0" | "pure" | "Pure" => Mode::Pure,
            "1" | "hybrid" | "Hybrid" => Mode::Hybrid,
            "2" | "compiled" | "Compiled" => Mode::Compiled,
            "3" | "compileddt" | "CompiledDT" | "compiled_dt" => Mode::CompiledDT,
            "-1" | "pyomp" | "PyOMP" | "PyOmp" => Mode::PyOmp,
            _ => return None,
        })
    }

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Pure => "Pure",
            Mode::Hybrid => "Hybrid",
            Mode::Compiled => "Compiled",
            Mode::CompiledDT => "CompiledDT",
            Mode::PyOmp => "PyOMP",
        }
    }

    /// Whether the mode runs through the minipy interpreter.
    pub fn is_interpreted(self) -> bool {
        matches!(self, Mode::Pure | Mode::Hybrid)
    }

    /// The pyfront execution mode for interpreted modes.
    pub fn exec_mode(self) -> Option<ExecMode> {
        match self {
            Mode::Pure => Some(ExecMode::Pure),
            Mode::Hybrid => Some(ExecMode::Hybrid),
            _ => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The timed result of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchOutput {
    /// Wall-clock seconds of the computation (excluding setup/transform).
    pub seconds: f64,
    /// A mode-independent checksum of the result, for cross-mode checks.
    pub check: f64,
}

/// Time a closure, returning its result and elapsed seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Build an interpreted-mode runner with the benchmark source loaded.
///
/// # Panics
///
/// Panics if the embedded benchmark source fails to load — a bug, not a
/// user error.
pub fn interpreted_runner(mode: Mode, source: &str) -> Runner {
    let exec = mode
        .exec_mode()
        .expect("interpreted_runner requires Pure/Hybrid");
    let runner = Runner::new(exec);
    runner
        .run(source)
        .unwrap_or_else(|e| panic!("benchmark source failed to load: {e}"));
    runner
}

/// Relative-tolerance float comparison for result verification.
pub fn close(a: f64, b: f64, rel_tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel_tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_matches_artifact_codes() {
        assert_eq!(Mode::parse("0"), Some(Mode::Pure));
        assert_eq!(Mode::parse("1"), Some(Mode::Hybrid));
        assert_eq!(Mode::parse("2"), Some(Mode::Compiled));
        assert_eq!(Mode::parse("3"), Some(Mode::CompiledDT));
        assert_eq!(Mode::parse("-1"), Some(Mode::PyOmp));
        assert_eq!(Mode::parse("pyomp"), Some(Mode::PyOmp));
        assert_eq!(Mode::parse("bogus"), None);
    }

    #[test]
    fn names_round_trip() {
        for mode in Mode::all() {
            assert_eq!(Mode::parse(mode.name()), Some(mode), "{mode}");
        }
    }

    #[test]
    fn close_tolerances() {
        assert!(close(1.0, 1.0 + 1e-9, 1e-6));
        assert!(!close(1.0, 1.1, 1e-6));
        assert!(close(0.0, 1e-9, 1e-6));
    }
}
