//! Seeded workload generators (artifact: "synthetic data generated from a
//! fixed seed").

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default seed used throughout the benchmark suite.
pub const DEFAULT_SEED: u64 = 0x0_5EED;

/// Uniform random `f64`s in `[0, 1)`.
pub fn random_f64s(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// A diagonally dominant `n × n` matrix (as rows) and RHS vector, the
/// classic convergent Jacobi/LU input.
pub fn diag_dominant_system(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![0.0; n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for (j, slot) in a[i].iter_mut().enumerate() {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..1.0);
                *slot = v;
                row_sum += v.abs();
            }
        }
        a[i][i] = row_sum + rng.gen_range(1.0..2.0);
        b[i] = rng.gen_range(-10.0..10.0);
    }
    (a, b)
}

/// Particle initial positions/velocities for the MD benchmark: `n`
/// particles in a `[0, box_side)^3` box.
pub fn particles(n: usize, box_side: f64, seed: u64) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = (0..n)
        .map(|_| {
            [
                rng.gen::<f64>() * box_side,
                rng.gen::<f64>() * box_side,
                rng.gen::<f64>() * box_side,
            ]
        })
        .collect();
    let vel = (0..n)
        .map(|_| {
            [
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ]
        })
        .collect();
    (pos, vel)
}

/// A synthetic Zipf-distributed word corpus: `lines` lines of `words_per_line`
/// words drawn from a vocabulary of `vocab` words with Zipf exponent ~1.1
/// (the artifact's fallback when no Wikipedia dump is supplied; Zipf matches
/// natural-language token distribution, which is what drives wordcount's
/// dict behaviour and the load imbalance Fig. 7 exercises).
///
/// Line lengths vary (±50%) to create the imbalance dynamic scheduling
/// exploits.
pub fn zipf_corpus(lines: usize, words_per_line: usize, vocab: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = vocab.max(2);
    let zipf = ZipfSampler::new(vocab, 1.1);
    let words: Vec<String> = (0..vocab).map(word_for_index).collect();
    (0..lines)
        .map(|_| {
            let len_scale = rng.gen_range(0.5..1.5);
            let len = ((words_per_line as f64 * len_scale) as usize).max(1);
            let mut line = String::new();
            for k in 0..len {
                if k > 0 {
                    line.push(' ');
                }
                line.push_str(&words[zipf.sample(&mut rng)]);
            }
            line
        })
        .collect()
}

/// Human-ish word for a vocabulary index (deterministic).
fn word_for_index(mut i: usize) -> String {
    const SYLLABLES: [&str; 16] = [
        "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu", "na", "pe", "qui", "ro", "su",
        "ta",
    ];
    let mut s = String::new();
    loop {
        s.push_str(SYLLABLES[i % SYLLABLES.len()]);
        i /= SYLLABLES.len();
        if i == 0 {
            break;
        }
    }
    s
}

/// Simple Zipf sampler over ranks `0..n` with exponent `s` (inverse-CDF on a
/// precomputed table).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> ZipfSampler {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl Distribution<usize> for ZipfSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_f64s_deterministic() {
        assert_eq!(random_f64s(10, 1), random_f64s(10, 1));
        assert_ne!(random_f64s(10, 1), random_f64s(10, 2));
        assert!(random_f64s(100, 3).iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn diag_dominance_holds() {
        let (a, b) = diag_dominant_system(20, 7);
        assert_eq!(b.len(), 20);
        for (i, row) in a.iter().enumerate() {
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(row[i].abs() > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn particles_in_box() {
        let (pos, vel) = particles(50, 10.0, 3);
        assert_eq!(pos.len(), 50);
        assert_eq!(vel.len(), 50);
        assert!(pos.iter().flatten().all(|&c| (0.0..10.0).contains(&c)));
    }

    #[test]
    fn corpus_is_deterministic_and_zipfy() {
        let c1 = zipf_corpus(200, 20, 500, 9);
        let c2 = zipf_corpus(200, 20, 500, 9);
        assert_eq!(c1, c2);
        // The most frequent word should dominate: count ranks.
        let mut counts = std::collections::HashMap::new();
        for line in &c1 {
            for w in line.split(' ') {
                *counts.entry(w.to_owned()).or_insert(0usize) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs[0] > freqs[freqs.len() / 2] * 5,
            "distribution should be skewed"
        );
    }

    #[test]
    fn corpus_line_lengths_vary() {
        let c = zipf_corpus(100, 30, 100, 11);
        let lens: Vec<usize> = c.iter().map(|l| l.split(' ').count()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "line lengths must vary for Fig. 7's imbalance");
    }

    #[test]
    fn words_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(word_for_index(i)), "collision at {i}");
        }
    }
}
