//! # omp4rs-apps — the OMP4Py paper's benchmark suite
//!
//! Every application of the paper's evaluation (§IV), each implemented in
//! all applicable execution modes:
//!
//! | module | paper benchmark | Table I features |
//! |---|---|---|
//! | [`fft`] | Fast Fourier Transform | `parallel`, `for` |
//! | [`jacobi`] | Jacobi method | `parallel`, `for reduction(+)`, `single`, explicit barrier |
//! | [`lu`] | LU decomposition | `parallel`, multiple `for` loops, `single` |
//! | [`md`] | molecular dynamics | `parallel reduction(+)` with inner `for`, `parallel for` |
//! | [`pi`] | Riemann integration | `parallel for reduction(+)` |
//! | [`qsort`] | quicksort | `parallel`, `single`, `task` with `if` clause |
//! | [`bfs`] | maze pathfinding | `parallel`, `single`, `task` |
//! | [`clustering`] | clustering coefficient (NetworkX) | `parallel for` (library calls) |
//! | [`wordcount`] | word count (dict/str heavy) | `parallel for` + `critical` merge |
//! | [`wavefront`] | doacross block stencil | `parallel`, `single`, `task depend(in/out)` |
//! | [`sparselu`] | block LU task DAG | `parallel`, `single`, `task depend(in/inout)` |
//! | [`pagerank`] | PageRank pipeline (minigraph) | `task depend` + `priority` |
//!
//! Modes ([`Mode`]): **Pure** and **Hybrid** run the benchmark's minipy
//! source through the `omp4rs-pyfront` transformer; **Compiled** runs native
//! Rust closures over boxed dynamic values (`minipy::Value`, the Cython
//! generic-object analogue); **CompiledDT** runs native Rust over `f64`/`i64`
//! (the Cython typed analogue); **PyOmp** is the restricted Numba-style
//! baseline ([`pyomp`]).
//!
//! Every module has a sequential reference and `verify` helpers; the
//! cross-mode integration tests assert all modes agree.

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod bfs;
pub mod clustering;
pub mod fft;
pub mod hybrid;
pub mod jacobi;
pub mod lu;
pub mod md;
pub mod modes;
pub mod pagerank;
pub mod pi;
pub mod pyomp;
pub mod qsort;
pub mod sparselu;
pub mod util;
pub mod wavefront;
pub mod wordcount;
pub mod workloads;

pub use modes::{BenchOutput, Mode};
