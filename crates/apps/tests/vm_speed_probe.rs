//! Diagnostic: raw single-thread interpreter vs VM throughput on the π body.

use minipy::bytecode::{self, VmMode};
use minipy::{Interp, Value};

const SRC: &str = "def f(n):\n    w = 1.0 / n\n    acc = 0.0\n    for i in range(n):\n        local = (i + 0.5) * w\n        acc += 4.0 / (1.0 + local * local)\n    return acc * w\n";

#[test]
fn sequential_body_throughput() {
    // Debug builds interpret ~20x slower; keep tier-1 `cargo test` fast.
    let n = if cfg!(debug_assertions) {
        20_000i64
    } else {
        500_000i64
    };
    let mut results = Vec::new();
    for (label, mode) in [("tree", VmMode::Off), ("vm", VmMode::On)] {
        let prev = bytecode::set_mode(mode);
        let interp = Interp::new();
        interp.run(SRC).unwrap();
        let f = interp.get_global("f").unwrap();
        let start = std::time::Instant::now();
        let v = interp.call(&f, vec![Value::Int(n)]).unwrap();
        let elapsed = start.elapsed();
        bytecode::set_mode(prev);
        println!(
            "{label}: {:.1} ms ({:.0} ns/iter) result={:.9}",
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e9 / n as f64,
            v.as_float().unwrap()
        );
        results.push(elapsed);
    }
    let speedup = results[0].as_secs_f64() / results[1].as_secs_f64();
    println!("speedup: {speedup:.2}x");
    // Only release builds make a meaningful throughput claim.
    if !cfg!(debug_assertions) {
        assert!(
            speedup > 2.0,
            "VM should clearly outrun the tree-walker (got {speedup:.2}x)"
        );
    }
}
