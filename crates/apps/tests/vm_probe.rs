//! Diagnostic probe: confirm the bytecode tier actually executes the
//! pyfront-transformed π body (frames > 0) and surface fallback reasons.

use omp4rs::{Icvs, MinipyVm};
use omp4rs_apps::{pi, Mode};

#[test]
fn pure_pi_runs_on_the_vm() {
    // `install` mirrors the ICV into `minipy::bytecode`, so the mode must be
    // set where the bridge reads it, not directly on the interpreter crate.
    let before = Icvs::current();
    Icvs::update(|i| i.minipy_vm = MinipyVm::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    let out = pi::run(Mode::Pure, 2, &pi::Params { n: 20_000 }).expect("pi runs");
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    Icvs::reset(before);
    println!(
        "check={:.9} compiles={} fallbacks={} frames={} ops={}",
        out.check, stats.vm_compiles, stats.vm_fallbacks, stats.vm_frames, stats.vm_ops
    );
    println!(
        "fallback reasons: {:?}",
        minipy::bytecode::fallback_reasons()
    );
    assert!(stats.vm_frames > 0, "VM executed no frames");
}
