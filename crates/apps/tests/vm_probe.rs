//! Diagnostic probe: confirm the bytecode tier actually executes the
//! pyfront-transformed π body (frames > 0), surface fallback reasons, and
//! hold the quickening/inline-cache counter invariants.

use omp4rs::{Icvs, MinipyQuicken, MinipyVm};
use omp4rs_apps::{pi, Mode};

/// Serialize tests that flip the process-global ICVs / interpreter modes.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn pure_pi_runs_on_the_vm() {
    let _guard = lock();
    // `install` mirrors the ICV into `minipy::bytecode`, so the mode must be
    // set where the bridge reads it, not directly on the interpreter crate.
    let before = Icvs::current();
    Icvs::update(|i| i.minipy_vm = MinipyVm::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    let out = pi::run(Mode::Pure, 2, &pi::Params { n: 20_000 }).expect("pi runs");
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    Icvs::reset(before);
    println!(
        "check={:.9} compiles={} fallbacks={} frames={} ops={}",
        out.check, stats.vm_compiles, stats.vm_fallbacks, stats.vm_frames, stats.vm_ops
    );
    println!(
        "fallback reasons: {:?}",
        minipy::bytecode::fallback_reasons()
    );
    assert!(stats.vm_frames > 0, "VM executed no frames");
}

#[test]
fn quicken_counters_hold_their_invariants_on_pure_pi() {
    let _guard = lock();
    let before = Icvs::current();
    Icvs::update(|i| {
        i.minipy_vm = MinipyVm::On;
        i.minipy_quicken = MinipyQuicken::On;
    });
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    let out = pi::run(Mode::Pure, 2, &pi::Params { n: 20_000 }).expect("pi runs");
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    Icvs::reset(before);
    println!(
        "check={:.9} rewrites={} deopts={} ic_hits={} ic_misses={} obj_locks={}",
        out.check,
        stats.quicken_rewrites,
        stats.quicken_deopts,
        stats.ic_hits,
        stats.ic_misses,
        stats.obj_lock_acquisitions
    );
    assert!((out.check - std::f64::consts::PI).abs() < 1e-6);
    assert!(
        stats.quicken_rewrites > 0,
        "the numeric π body never specialized an instruction"
    );
    // Each slot rewrites at most once and deopts at most once, both behind
    // a CAS — the deopt count can never pass the rewrite count.
    assert!(
        stats.quicken_deopts <= stats.quicken_rewrites,
        "deopts ({}) exceed rewrites ({})",
        stats.quicken_deopts,
        stats.quicken_rewrites
    );
    // PR 3 drove Pure-mode π's per-object lock traffic down to a constant
    // handful (the shared accumulator); the quickened tier must not reopen
    // that regression by boxing through locked containers.
    assert!(
        stats.obj_lock_acquisitions <= 4,
        "Pure π took {} obj-lock acquisitions (floor is 4)",
        stats.obj_lock_acquisitions
    );
}

#[test]
fn ic_totals_match_dispatch_counts_on_a_known_program() {
    let _guard = lock();
    // Counted against the program below, per call of `f`: one `LoadFree`
    // execution (the `range` cell fill, then hits) and `n` `CallMethod`
    // executions (`xs.append`), and nothing else consults a dispatch IC.
    let prev = minipy::bytecode::set_mode(minipy::bytecode::VmMode::On);
    let prev_q = minipy::bytecode::set_quicken_mode(minipy::bytecode::QuickenMode::On);
    minipy::stats::reset();
    minipy::stats::set_enabled(true);
    let interp = minipy::Interp::new().capture_output();
    interp
        .run("def f(xs, n):\n    for i in range(n):\n        xs.append(i)\n    return xs\nf([], 10)\n")
        .expect("program runs");
    let stats = minipy::stats::snapshot();
    minipy::stats::set_enabled(false);
    minipy::bytecode::set_quicken_mode(prev_q);
    minipy::bytecode::set_mode(prev);
    let dispatches = 1 + 10; // LoadFree(range) + 10 x CallMethod(append)
    assert_eq!(
        stats.ic_hits + stats.ic_misses,
        dispatches,
        "IC events (hits {} + misses {}) must equal dispatch executions",
        stats.ic_hits,
        stats.ic_misses
    );
    // First execution of each site misses and fills; the rest hit.
    assert_eq!(stats.ic_misses, 2, "one fill per IC site");
    assert_eq!(stats.ic_hits, dispatches - 2);
}
