//! Typed communication failures.

use std::time::Duration;

/// A failed point-to-point or collective operation.
///
/// The blocking API (`send`, `recv`, `allgather`, …) keeps MPI's classic
/// contract — a lost peer is a panic or a hang. The `_timeout` variants
/// return this error instead, so a hybrid computation can detect a dead or
/// partitioned rank and degrade gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// No matching message arrived from `peer` within the deadline.
    Timeout {
        /// Rank the receive was matching against.
        peer: usize,
        /// Message tag the receive was matching against.
        tag: u64,
        /// How long the operation waited before giving up.
        waited: Duration,
    },
    /// The peer's rank has exited and its channel endpoint is gone.
    Disconnected {
        /// Rank whose endpoint disappeared.
        peer: usize,
        /// Message tag of the failed operation.
        tag: u64,
    },
    /// A reliable operation (`send_reliable` / `_resilient` collective)
    /// gave up after exhausting its [`crate::RetryPolicy`] attempt budget.
    /// Transient loss is absorbed by the retries; this error means the
    /// failure persisted across every attempt (dead or partitioned peer).
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error the final attempt observed.
        last: Box<MpiError>,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Timeout { peer, tag, waited } => write!(
                f,
                "timed out after {waited:?} waiting for rank {peer} (tag {tag})"
            ),
            MpiError::Disconnected { peer, tag } => {
                write!(f, "rank {peer} has exited (tag {tag})")
            }
            MpiError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for MpiError {}
