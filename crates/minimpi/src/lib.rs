//! # minimpi — an in-process message-passing substrate
//!
//! A from-scratch MPI subset standing in for mpi4py + a cluster in the
//! OMP4Py reproduction's hybrid MPI/OpenMP experiment (paper Fig. 8).
//! "Processes" are OS threads with private state communicating only through
//! typed channels; collectives (`allgather`, `allreduce`, `bcast`, …) match
//! MPI semantics. A configurable [`NetModel`] charges per-message latency
//! and per-byte transfer time so multi-node scaling behaviour can be
//! emulated on one machine.
//!
//! # Examples
//!
//! ```
//! use minimpi::World;
//!
//! let sums = World::run(4, |comm| {
//!     comm.allreduce_sum((comm.rank() + 1) as f64)
//! });
//! assert_eq!(sums, vec![10.0, 10.0, 10.0, 10.0]);
//! ```

// Public API items carry doc comments; enum struct-variant fields are
// documented at the variant level.
#![warn(missing_docs)]
#![allow(missing_docs)]

pub mod comm;
pub mod error;
pub mod netmodel;
pub mod retry;
pub mod world;

pub use comm::Comm;
pub use error::MpiError;
pub use netmodel::NetModel;
pub use retry::RetryPolicy;
pub use world::World;
