//! Retry policy for transient-failure recovery.
//!
//! A lossy interconnect ([`crate::NetModel`] with a nonzero drop
//! probability) turns sends into best-effort deliveries. [`RetryPolicy`]
//! bundles the knobs a reliable layer needs — attempt cap, per-attempt
//! receive deadline, and exponential backoff with deterministic jitter — so
//! `Comm::send_reliable` / the `_resilient` collectives can recover from
//! transient loss while still converting a permanently dead peer into a
//! typed [`crate::MpiError::RetriesExhausted`] within bounded time.

use std::time::Duration;

/// SplitMix64: tiny, seedable, statistically fine for jitter and loss
/// decisions. Deterministic — the same seed replays the same schedule,
/// which the chaos-soak harness relies on for exact counter assertions.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to a uniform float in `[0, 1)`.
pub(crate) fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Knobs for the reliable point-to-point and collective operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total delivery attempts before giving up (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before attempt `k` (1-based retries) is
    /// `base_backoff * 2^(k-1)`, scaled by a jitter factor in `[0.5, 1.5)`.
    pub base_backoff: Duration,
    /// Deadline applied to each attempt's acknowledgement / receive wait.
    pub per_attempt_timeout: Duration,
    /// Jitter seed; the same seed yields the same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            per_attempt_timeout: Duration::from_millis(200),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// Build a policy from the `MINIMPI_RETRY` environment variable.
    ///
    /// Grammar: comma-separated `key:value` pairs, e.g.
    /// `attempts:4,backoff_ms:5,timeout_ms:200,seed:1`. Unknown keys and
    /// malformed pairs are ignored; absent keys keep their defaults, and an
    /// unset variable yields `RetryPolicy::default()`.
    pub fn from_env() -> RetryPolicy {
        match std::env::var("MINIMPI_RETRY") {
            Ok(spec) => RetryPolicy::parse(&spec),
            Err(_) => RetryPolicy::default(),
        }
    }

    /// Parse a `MINIMPI_RETRY`-style spec (see [`RetryPolicy::from_env`]).
    pub fn parse(spec: &str) -> RetryPolicy {
        let mut policy = RetryPolicy::default();
        for pair in spec.split(',') {
            let Some((key, value)) = pair.split_once(':') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            match (key, value.parse::<u64>()) {
                ("attempts", Ok(n)) if n >= 1 => policy.max_attempts = n as u32,
                ("backoff_ms", Ok(ms)) => policy.base_backoff = Duration::from_millis(ms),
                ("timeout_ms", Ok(ms)) if ms >= 1 => {
                    policy.per_attempt_timeout = Duration::from_millis(ms);
                }
                ("seed", Ok(s)) => policy.seed = s,
                _ => {}
            }
        }
        policy
    }

    /// Backoff to sleep before retry number `attempt` (1-based; attempt 0
    /// is the initial try and never sleeps): exponential in the attempt
    /// number with a deterministic jitter factor in `[0.5, 1.5)` so
    /// simultaneous retriers decorrelate.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let jitter = 0.5 + unit(splitmix64(self.seed ^ u64::from(attempt)));
        exp.mul_f64(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        let b1 = p.backoff(1);
        let b3 = p.backoff(3);
        // Jitter is bounded to [0.5, 1.5): growth dominates it by attempt 3.
        assert!(b3 > b1, "{b3:?} vs {b1:?}");
        assert_eq!(p.backoff(2), p.backoff(2), "same seed, same schedule");
        assert!(b1 >= Duration::from_millis(1) && b1 < Duration::from_millis(3));
    }

    #[test]
    fn env_grammar_overrides_defaults() {
        // Parse directly (no process-global env mutation in tests): this is
        // the same function from_env feeds.
        let p = RetryPolicy::parse("attempts:7, backoff_ms:9, timeout_ms:50, seed:3, junk, bad:x");
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.base_backoff, Duration::from_millis(9));
        assert_eq!(p.per_attempt_timeout, Duration::from_millis(50));
        assert_eq!(p.seed, 3);
    }

    #[test]
    fn malformed_specs_fall_back_to_defaults() {
        assert_eq!(RetryPolicy::parse(""), RetryPolicy::default());
        assert_eq!(RetryPolicy::parse("attempts:0"), RetryPolicy::default());
        assert_eq!(RetryPolicy::parse(":::,,,"), RetryPolicy::default());
    }

    #[test]
    fn unit_is_in_range() {
        for i in 0..1000u64 {
            let u = unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
