//! Interconnect cost model.
//!
//! Real multi-node runs pay network latency and bandwidth on every message;
//! an in-process reproduction must charge an equivalent cost or multi-node
//! scaling curves (paper Fig. 8) would look implausibly flat. [`NetModel`]
//! spins for `latency + bytes / bandwidth` on messages that cross a node
//! boundary (ranks are grouped into nodes round-robin by
//! `ranks_per_node`).

use std::time::{Duration, Instant};

/// Network cost model for inter-node messages.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// Per-message one-way latency for inter-node messages.
    pub latency: Duration,
    /// Inter-node bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Number of ranks hosted per emulated node (intra-node messages are
    /// free). `usize::MAX` puts every rank on one node.
    pub ranks_per_node: usize,
    /// Probability in `[0, 1)` that any given payload message is silently
    /// dropped in flight (fault injection for the retry layer). `0.0`
    /// (default) models a reliable transport. Acknowledgement messages are
    /// exempt — see `Comm::send_reliable`.
    pub loss: f64,
    /// Seed for the deterministic per-message loss decision: the same seed
    /// drops the same messages, so chaos runs replay exactly.
    pub loss_seed: u64,
}

impl Default for NetModel {
    /// Everything on one node: no charges, no loss.
    fn default() -> NetModel {
        NetModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            ranks_per_node: usize::MAX,
            loss: 0.0,
            loss_seed: 0,
        }
    }
}

impl NetModel {
    /// A zero-cost model (single node).
    pub fn local() -> NetModel {
        NetModel::default()
    }

    /// A model resembling a commodity cluster interconnect
    /// (~1.5 µs latency, ~12.5 GB/s ≈ 100 Gb/s links).
    pub fn cluster(ranks_per_node: usize) -> NetModel {
        NetModel {
            latency: Duration::from_micros(2),
            bandwidth: 12.5e9,
            ranks_per_node: ranks_per_node.max(1),
            ..NetModel::default()
        }
    }

    /// Builder: this model with a message-loss probability and seed (see
    /// the [`NetModel::loss`] field).
    pub fn with_loss(self, loss: f64, seed: u64) -> NetModel {
        NetModel {
            loss: loss.clamp(0.0, 0.999_999),
            loss_seed: seed,
            ..self
        }
    }

    /// Deterministic per-message loss decision: whether the `seq`-th
    /// message sent by rank `from` is dropped in flight. Pure function of
    /// `(loss_seed, from, seq)` so a replay with the same seed loses the
    /// same messages.
    pub fn drops(&self, from: usize, seq: u64) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        let h = crate::retry::splitmix64(
            self.loss_seed ^ (from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seq,
        );
        crate::retry::unit(crate::retry::splitmix64(h)) < self.loss
    }

    /// The emulated node index of a rank.
    pub fn node_of(&self, rank: usize) -> usize {
        if self.ranks_per_node == usize::MAX {
            0
        } else {
            rank / self.ranks_per_node.max(1)
        }
    }

    /// Whether a message between two ranks crosses nodes.
    pub fn crosses_nodes(&self, from: usize, to: usize) -> bool {
        self.node_of(from) != self.node_of(to)
    }

    /// Transfer cost of a message of `bytes` between two ranks.
    pub fn cost(&self, from: usize, to: usize, bytes: usize) -> Duration {
        if !self.crosses_nodes(from, to) {
            return Duration::ZERO;
        }
        let transfer = if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }

    /// Charge the cost of a message (spin-wait: sleeping has too coarse a
    /// granularity for microsecond latencies).
    pub fn charge(&self, from: usize, to: usize, bytes: usize) {
        let cost = self.cost(from, to, bytes);
        if cost.is_zero() {
            return;
        }
        let start = Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_free() {
        let m = NetModel::default();
        assert!(!m.crosses_nodes(0, 7));
        assert_eq!(m.cost(0, 7, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn node_grouping() {
        let m = NetModel {
            ranks_per_node: 4,
            ..NetModel::cluster(4)
        };
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert!(!m.crosses_nodes(0, 3));
        assert!(m.crosses_nodes(3, 4));
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = NetModel {
            latency: Duration::from_micros(1),
            bandwidth: 1e9,
            ranks_per_node: 1,
            ..NetModel::default()
        };
        let small = m.cost(0, 1, 1_000);
        let big = m.cost(0, 1, 1_000_000);
        assert!(big > small);
        assert!(big >= Duration::from_micros(1000));
    }

    #[test]
    fn loss_is_deterministic_and_roughly_calibrated() {
        let m = NetModel::local().with_loss(0.3, 17);
        let dropped = (0..10_000).filter(|&s| m.drops(1, s)).count();
        // Same seed, same decisions.
        let again = (0..10_000).filter(|&s| m.drops(1, s)).count();
        assert_eq!(dropped, again);
        // Loose calibration band: the decision really tracks `loss`.
        assert!((2_500..3_500).contains(&dropped), "dropped {dropped}");
        // loss = 0 never drops.
        assert!(!(0..1000).any(|s| NetModel::local().drops(0, s)));
    }

    #[test]
    fn charge_spins_for_cost() {
        let m = NetModel {
            latency: Duration::from_micros(200),
            bandwidth: f64::INFINITY,
            ranks_per_node: 1,
            ..NetModel::default()
        };
        let start = Instant::now();
        m.charge(0, 1, 8);
        assert!(start.elapsed() >= Duration::from_micros(150));
    }
}
