//! World launcher: spawn ranks, wire channels, collect results.

use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::comm::Comm;
use crate::netmodel::NetModel;

/// An MPI-style world of `size` ranks.
#[derive(Debug)]
pub struct World;

impl World {
    /// Run `f` on `size` ranks (threads) with a zero-cost network and
    /// return the results in rank order.
    ///
    /// # Panics
    ///
    /// Propagates the first rank's panic after all ranks have been joined.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        World::run_with_net(size, NetModel::local(), f)
    }

    /// Run `f` on `size` ranks under an explicit [`NetModel`].
    ///
    /// # Panics
    ///
    /// Propagates the first rank's panic after all ranks have been joined.
    pub fn run_with_net<R, F>(size: usize, net: NetModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        let size = size.max(1);
        let net = Arc::new(net);
        let barrier = Arc::new(std::sync::Barrier::new(size));

        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, (rx, slot)) in receivers.iter_mut().zip(results.iter_mut()).enumerate() {
                let comm = Comm::new(
                    rank,
                    size,
                    senders.clone(),
                    rx.take().expect("receiver taken once"),
                    Arc::clone(&barrier),
                    Arc::clone(&net),
                );
                let f = &f;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("minimpi-rank-{rank}"))
                        .stack_size(16 * 1024 * 1024)
                        .spawn_scoped(scope, move || {
                            *slot = Some(f(&comm));
                        })
                        .expect("failed to spawn rank"),
                );
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_size() {
        let out = World::run(3, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as f64]);
            comm.recv(prev, 7)[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn recv_matches_by_tag() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0]);
                comm.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order: matching must buffer.
                let b = comm.recv(0, 2)[0];
                let a = comm.recv(0, 1)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = World::run(4, |comm| {
            let data = if comm.rank() == 2 {
                vec![9.0, 8.0]
            } else {
                Vec::new()
            };
            comm.bcast(2, data)
        });
        assert!(out.iter().all(|v| v == &vec![9.0, 8.0]));
    }

    #[test]
    fn gather_in_rank_order() {
        let out = World::run(3, |comm| comm.gather(0, vec![comm.rank() as f64 * 2.0]));
        assert_eq!(out[0], Some(vec![vec![0.0], vec![2.0], vec![4.0]]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn allgather_concatenates() {
        let out = World::run(3, |comm| {
            comm.allgather(vec![comm.rank() as f64, comm.rank() as f64 + 0.5])
        });
        for v in out {
            assert_eq!(v, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5]);
        }
    }

    #[test]
    fn scatter_distributes() {
        let out = World::run(3, |comm| {
            let parts = if comm.rank() == 0 {
                Some(vec![vec![0.0], vec![10.0], vec![20.0]])
            } else {
                None
            };
            comm.scatter(0, parts)[0]
        });
        assert_eq!(out, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn reductions() {
        let out = World::run(4, |comm| {
            let sum = comm.allreduce_sum(comm.rank() as f64 + 1.0);
            let max = comm.allreduce_max(comm.rank() as f64);
            (sum, max)
        });
        assert!(out.iter().all(|&(s, m)| s == 10.0 && m == 3.0));
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = World::run(2, |comm| {
            comm.allreduce_sum_vec(vec![comm.rank() as f64, 1.0])
        });
        assert!(out.iter().all(|v| v == &vec![1.0, 2.0]));
    }

    #[test]
    fn barrier_works() {
        let out = World::run(4, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            1
        });
        assert_eq!(out.iter().sum::<i32>(), 4);
    }

    #[test]
    fn collectives_under_net_model() {
        let net = NetModel::cluster(2);
        let out = World::run_with_net(4, net, |comm| comm.allreduce_sum(1.0));
        assert!(out.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn recv_timeout_success_and_failure() {
        use std::time::Duration;
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![42.0]);
                // Nothing is ever sent with tag 6: rank 0 times out.
                comm.recv_timeout(1, 6, Duration::from_millis(50))
            } else {
                comm.recv_timeout(0, 5, Duration::from_secs(5))
            }
        });
        assert!(matches!(
            out[0],
            Err(crate::MpiError::Timeout {
                peer: 1,
                tag: 6,
                ..
            })
        ));
        assert_eq!(out[1], Ok(vec![42.0]));
    }

    #[test]
    fn dead_rank_degrades_collectives_to_timeout() {
        use std::time::Duration;
        let start = std::time::Instant::now();
        let out = World::run(3, |comm| {
            if comm.rank() == 2 {
                // Fault injection: this rank goes silent mid-computation.
                comm.inject_failure();
            }
            comm.allgather_timeout(vec![comm.rank() as f64], Duration::from_millis(200))
        });
        // Healthy ranks observe a typed timeout instead of hanging.
        assert!(matches!(
            out[0],
            Err(crate::MpiError::Timeout { peer: 2, .. })
        ));
        assert!(out[1].is_err());
        assert!(start.elapsed() < Duration::from_secs(10), "must not hang");
    }

    #[test]
    fn timed_allreduce_matches_blocking_when_healthy() {
        use std::time::Duration;
        let out = World::run(4, |comm| {
            let sum = comm
                .allreduce_sum_timeout(comm.rank() as f64 + 1.0, Duration::from_secs(5))
                .unwrap();
            let max = comm
                .allreduce_max_timeout(comm.rank() as f64, Duration::from_secs(5))
                .unwrap();
            (sum, max)
        });
        assert!(out.iter().all(|&(s, m)| s == 10.0 && m == 3.0));
    }

    #[test]
    fn reliable_p2p_survives_a_lossy_net() {
        use std::time::Duration;
        // 40% deterministic loss: the blocking API would hang, the reliable
        // layer retransmits until the payload lands. Seeded, so this either
        // always passes or always fails — no flake window.
        let net = NetModel::local().with_loss(0.4, 42);
        let policy = crate::RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(1),
            per_attempt_timeout: Duration::from_millis(100),
            seed: 7,
        };
        let out = World::run_with_net(2, net, |comm| {
            if comm.rank() == 0 {
                comm.send_reliable(1, 3, vec![1.25], &policy).map(|()| 0.0)
            } else {
                comm.recv_reliable(0, 3, &policy).map(|d| d[0])
            }
        });
        assert_eq!(out[0], Ok(0.0));
        assert_eq!(out[1], Ok(1.25));
    }

    #[test]
    fn resilient_collectives_survive_a_lossy_net() {
        use std::time::Duration;
        let net = NetModel::local().with_loss(0.25, 9);
        let policy = crate::RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(1),
            per_attempt_timeout: Duration::from_millis(100),
            seed: 3,
        };
        let out = World::run_with_net(3, net, |comm| {
            let sum = comm
                .allreduce_sum_resilient(comm.rank() as f64 + 1.0, &policy)
                .unwrap();
            let max = comm
                .allreduce_max_resilient(comm.rank() as f64, &policy)
                .unwrap();
            let all = comm
                .allgather_resilient(vec![comm.rank() as f64], &policy)
                .unwrap();
            (sum, max, all)
        });
        for (sum, max, all) in out {
            assert_eq!(sum, 6.0);
            assert_eq!(max, 2.0);
            assert_eq!(all, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn dead_rank_exhausts_retries_with_typed_error() {
        use std::time::Duration;
        let policy = crate::RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            per_attempt_timeout: Duration::from_millis(40),
            seed: 1,
        };
        let start = std::time::Instant::now();
        let out = World::run(2, |comm| {
            if comm.rank() == 1 {
                // Permanently dead: drops payloads *and* its own ACKs.
                comm.inject_failure();
                comm.recv_reliable(0, 3, &policy).map(|_| ())
            } else {
                comm.send_reliable(1, 3, vec![5.0], &policy)
            }
        });
        assert!(
            matches!(
                out[0],
                Err(crate::MpiError::RetriesExhausted { attempts: 2, .. })
            ),
            "got {:?}",
            out[0]
        );
        assert!(start.elapsed() < Duration::from_secs(10), "bounded give-up");
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.allgather(vec![5.0]), vec![5.0]);
            comm.allreduce_sum(3.0)
        });
        assert_eq!(out, vec![3.0]);
    }
}
