//! Communicators: point-to-point messaging and collectives.

use std::cell::RefCell;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use crate::netmodel::NetModel;

/// A message in flight: (source rank, tag, payload).
type Packet = (usize, u64, Vec<f64>);

/// Tag space reserved for collectives (user tags must stay below this).
const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// A communicator handle owned by one rank.
///
/// Not `Sync`: each rank keeps its own `Comm`, like an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    pending: RefCell<Vec<Packet>>,
    barrier: Arc<std::sync::Barrier>,
    net: Arc<NetModel>,
    collective_seq: RefCell<u64>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm").field("rank", &self.rank).field("size", &self.size).finish()
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Packet>>,
        receiver: Receiver<Packet>,
        barrier: Arc<std::sync::Barrier>,
        net: Arc<NetModel>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            receiver,
            pending: RefCell::new(Vec::new()),
            barrier,
            net,
            collective_seq: RefCell::new(0),
        }
    }

    /// This rank's index (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network model in effect.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Blocking send (`MPI_Send`). User tags must be `< 2^48`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or the world has been torn down.
    pub fn send(&self, dest: usize, tag: u64, data: Vec<f64>) {
        assert!(tag < COLLECTIVE_TAG_BASE, "tag too large (reserved for collectives)");
        self.send_raw(dest, tag, data);
    }

    fn send_raw(&self, dest: usize, tag: u64, data: Vec<f64>) {
        self.net.charge(self.rank, dest, data.len() * 8);
        self.senders[dest]
            .send((self.rank, tag, data))
            .expect("destination rank has exited");
    }

    /// Blocking receive (`MPI_Recv`) matching source and tag.
    ///
    /// # Panics
    ///
    /// Panics if the world has been torn down before a match arrives.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        assert!(tag < COLLECTIVE_TAG_BASE, "tag too large (reserved for collectives)");
        self.recv_raw(src, tag)
    }

    fn recv_raw(&self, src: usize, tag: u64) -> Vec<f64> {
        // Check messages that arrived earlier but did not match then.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|(s, t, _)| *s == src && *t == tag) {
                return pending.remove(pos).2;
            }
        }
        loop {
            let packet = self.receiver.recv().expect("world torn down during recv");
            if packet.0 == src && packet.1 == tag {
                return packet.2;
            }
            self.pending.borrow_mut().push(packet);
        }
    }

    fn next_collective_tag(&self) -> u64 {
        let mut seq = self.collective_seq.borrow_mut();
        *seq += 1;
        COLLECTIVE_TAG_BASE + *seq
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// `MPI_Bcast`: returns the root's data on every rank.
    pub fn bcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, data.clone());
                }
            }
            data
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// `MPI_Gather`: root receives every rank's contribution (in rank
    /// order); non-roots receive `None`.
    pub fn gather(&self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for src in 0..self.size {
                if src != root {
                    out[src] = self.recv_raw(src, tag);
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, data);
            None
        }
    }

    /// `MPI_Allgather`: every rank receives every contribution, in rank
    /// order, concatenated (the jacobi exchange in the paper uses this to
    /// reassemble the solution vector).
    pub fn allgather(&self, data: Vec<f64>) -> Vec<f64> {
        let gathered = self.gather(0, data);
        let flat = match gathered {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast(0, flat)
    }

    /// `MPI_Scatter`: root splits `parts` (one entry per rank); each rank
    /// receives its part.
    ///
    /// # Panics
    ///
    /// Panics on the root if `parts.len() != size`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size, "scatter needs one part per rank");
            let mut own = Vec::new();
            for (dest, part) in parts.into_iter().enumerate() {
                if dest == root {
                    own = part;
                } else {
                    self.send_raw(dest, tag, part);
                }
            }
            own
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// `MPI_Reduce(MPI_SUM)` on a scalar; root gets the sum.
    pub fn reduce_sum(&self, root: usize, value: f64) -> Option<f64> {
        self.gather(root, vec![value]).map(|parts| parts.iter().map(|p| p[0]).sum())
    }

    /// `MPI_Allreduce(MPI_SUM)` on a scalar.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let sum = self.reduce_sum(0, value);
        self.bcast(0, vec![sum.unwrap_or(0.0)])[0]
    }

    /// `MPI_Allreduce(MPI_MAX)` on a scalar (the jacobi convergence check).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let parts = self.gather(0, vec![value]);
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        self.bcast(0, vec![max])[0]
    }

    /// Element-wise `MPI_Allreduce(MPI_SUM)` on equal-length vectors.
    pub fn allreduce_sum_vec(&self, value: Vec<f64>) -> Vec<f64> {
        let n = value.len();
        let parts = self.gather(0, value);
        let combined = parts.map(|parts| {
            let mut acc = vec![0.0; n];
            for part in parts {
                for (a, v) in acc.iter_mut().zip(part) {
                    *a += v;
                }
            }
            acc
        });
        self.bcast(0, combined.unwrap_or_default())
    }
}
