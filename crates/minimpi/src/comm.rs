//! Communicators: point-to-point messaging and collectives.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::error::MpiError;
use crate::netmodel::NetModel;
use crate::retry::RetryPolicy;

/// A message in flight: (source rank, tag, payload).
type Packet = (usize, u64, Vec<f64>);

/// Tag space reserved for collectives (user tags must stay below this).
const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// Tag space reserved for the reliable layer's acknowledgements: the ACK
/// for a message on `tag` travels on `ACK_TAG_BASE + tag`. Above both the
/// user and collective tag spaces, so it never collides with either.
const ACK_TAG_BASE: u64 = 1 << 60;

/// A communicator handle owned by one rank.
///
/// Not `Sync`: each rank keeps its own `Comm`, like an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    pending: RefCell<Vec<Packet>>,
    barrier: Arc<std::sync::Barrier>,
    net: Arc<NetModel>,
    collective_seq: RefCell<u64>,
    /// Monotonic outgoing-message counter, feeding the network model's
    /// deterministic per-message loss decision.
    send_seq: Cell<u64>,
    /// Fault injection: a silenced rank drops every outgoing message,
    /// emulating a crashed or partitioned process.
    silenced: Cell<bool>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Packet>>,
        receiver: Receiver<Packet>,
        barrier: Arc<std::sync::Barrier>,
        net: Arc<NetModel>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            receiver,
            pending: RefCell::new(Vec::new()),
            barrier,
            net,
            collective_seq: RefCell::new(0),
            send_seq: Cell::new(0),
            silenced: Cell::new(false),
        }
    }

    /// This rank's index (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network model in effect.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Blocking send (`MPI_Send`). User tags must be `< 2^48`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or the world has been torn down.
    pub fn send(&self, dest: usize, tag: u64, data: Vec<f64>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.send_raw(dest, tag, data)
            .expect("destination rank has exited");
    }

    fn send_raw(&self, dest: usize, tag: u64, data: Vec<f64>) -> Result<(), MpiError> {
        if self.silenced.get() {
            return Ok(());
        }
        self.net.charge(self.rank, dest, data.len() * 8);
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        // Injected transient loss: payload vanishes in flight (after its
        // cost has been charged, like a real dropped packet). ACKs are
        // exempt — modelling ACK loss would demand duplicate suppression at
        // the receiver, complexity the retry layer under test doesn't need:
        // a retry here happens if and only if the payload was not
        // delivered.
        if tag < ACK_TAG_BASE && self.net.drops(self.rank, seq) {
            return Ok(());
        }
        self.senders[dest]
            .send((self.rank, tag, data))
            .map_err(|_| MpiError::Disconnected { peer: dest, tag })
    }

    /// Fault injection: silence this rank. Every later outgoing message is
    /// dropped, so peers blocked in the `_timeout` receive/collective
    /// variants observe [`MpiError::Timeout`] instead of hanging forever
    /// (the blocking variants would hang, exactly like real MPI).
    pub fn inject_failure(&self) {
        self.silenced.set(true);
    }

    /// Whether [`Comm::inject_failure`] has silenced this rank.
    pub fn is_silenced(&self) -> bool {
        self.silenced.get()
    }

    /// Blocking receive (`MPI_Recv`) matching source and tag.
    ///
    /// # Panics
    ///
    /// Panics if the world has been torn down before a match arrives.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.recv_raw(src, tag)
    }

    fn recv_raw(&self, src: usize, tag: u64) -> Vec<f64> {
        // Check messages that arrived earlier but did not match then.
        if let Some(data) = self.take_pending(src, tag) {
            return data;
        }
        loop {
            let packet = self.receiver.recv().expect("world torn down during recv");
            if packet.0 == src && packet.1 == tag {
                return packet.2;
            }
            self.pending.borrow_mut().push(packet);
        }
    }

    fn take_pending(&self, src: usize, tag: u64) -> Option<Vec<f64>> {
        let mut pending = self.pending.borrow_mut();
        let pos = pending
            .iter()
            .position(|(s, t, _)| *s == src && *t == tag)?;
        Some(pending.remove(pos).2)
    }

    /// Blocking receive with a deadline. Returns [`MpiError::Timeout`] if no
    /// matching message arrives in time; non-matching messages received
    /// while waiting are buffered as usual.
    pub fn recv_timeout(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.recv_raw_deadline(src, tag, Instant::now() + timeout)
    }

    fn recv_raw_deadline(
        &self,
        src: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<f64>, MpiError> {
        if let Some(data) = self.take_pending(src, tag) {
            return Ok(data);
        }
        let start = Instant::now();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(MpiError::Timeout {
                    peer: src,
                    tag,
                    waited: start.elapsed(),
                });
            }
            match self.receiver.recv_timeout(remaining) {
                Ok(packet) => {
                    if packet.0 == src && packet.1 == tag {
                        return Ok(packet.2);
                    }
                    self.pending.borrow_mut().push(packet);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MpiError::Timeout {
                        peer: src,
                        tag,
                        waited: start.elapsed(),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::Disconnected { peer: src, tag })
                }
            }
        }
    }

    fn next_collective_tag(&self) -> u64 {
        let mut seq = self.collective_seq.borrow_mut();
        *seq += 1;
        COLLECTIVE_TAG_BASE + *seq
    }

    /// Reliable send over a lossy transport: deliver, then wait for the
    /// receiver's acknowledgement; on a missing ACK, back off per `policy`
    /// and retransmit. Recovers from transient injected loss
    /// ([`NetModel::loss`]); a permanently dead peer (silenced or exited)
    /// surfaces as [`MpiError::RetriesExhausted`] once the attempt budget
    /// is spent. The receiver must use [`Comm::recv_reliable`].
    ///
    /// At-least-once delivery: if the ACK (not the payload) is lost the
    /// receiver may buffer a duplicate — use a fresh tag per logical
    /// message (as the `_resilient` collectives do) to keep duplicates
    /// unmatchable.
    ///
    /// # Errors
    ///
    /// [`MpiError::RetriesExhausted`] wrapping the final attempt's error.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is in the reserved collective range or `dest` is out
    /// of range.
    pub fn send_reliable(
        &self,
        dest: usize,
        tag: u64,
        data: Vec<f64>,
        policy: &RetryPolicy,
    ) -> Result<(), MpiError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.send_reliable_tag(dest, tag, data, policy)
    }

    fn send_reliable_tag(
        &self,
        dest: usize,
        tag: u64,
        data: Vec<f64>,
        policy: &RetryPolicy,
    ) -> Result<(), MpiError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt));
            }
            if let Err(e) = self.send_raw(dest, tag, data.clone()) {
                last = Some(e);
                continue;
            }
            match self.recv_raw_deadline(
                dest,
                ACK_TAG_BASE + tag,
                Instant::now() + policy.per_attempt_timeout,
            ) {
                Ok(_) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(MpiError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Receive the reliable counterpart of [`Comm::send_reliable`]: wait
    /// for the payload (bounded per attempt by the policy's timeout, with
    /// the same attempt budget as the sender) and acknowledge it.
    ///
    /// # Errors
    ///
    /// [`MpiError::RetriesExhausted`] when no payload arrives across the
    /// whole attempt budget.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is in the reserved collective range.
    pub fn recv_reliable(
        &self,
        src: usize,
        tag: u64,
        policy: &RetryPolicy,
    ) -> Result<Vec<f64>, MpiError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.recv_reliable_tag(src, tag, policy)
    }

    fn recv_reliable_tag(
        &self,
        src: usize,
        tag: u64,
        policy: &RetryPolicy,
    ) -> Result<Vec<f64>, MpiError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            // The receive window must outlast the sender's backoff before
            // its next retransmission, or the two can interleave so that
            // every wait expires just before its payload lands.
            let window = policy.per_attempt_timeout + policy.backoff(attempt + 1);
            match self.recv_raw_deadline(src, tag, Instant::now() + window) {
                Ok(data) => {
                    // ACK delivery is best-effort (an exited peer is fine:
                    // it can no longer care).
                    let _ = self.send_raw(src, ACK_TAG_BASE + tag, Vec::new());
                    return Ok(data);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(MpiError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// [`Comm::gather`] over the reliable layer: every hop retries under
    /// `policy`, so the collective survives transient message loss.
    ///
    /// # Errors
    ///
    /// [`MpiError::RetriesExhausted`] when a contribution is permanently
    /// lost (dead rank).
    pub fn gather_resilient(
        &self,
        root: usize,
        data: Vec<f64>,
        policy: &RetryPolicy,
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_reliable_tag(src, tag, policy)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send_reliable_tag(root, tag, data, policy)?;
            Ok(None)
        }
    }

    /// [`Comm::bcast`] over the reliable layer.
    ///
    /// # Errors
    ///
    /// See [`Comm::gather_resilient`].
    pub fn bcast_resilient(
        &self,
        root: usize,
        data: Vec<f64>,
        policy: &RetryPolicy,
    ) -> Result<Vec<f64>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_reliable_tag(dest, tag, data.clone(), policy)?;
                }
            }
            Ok(data)
        } else {
            self.recv_reliable_tag(root, tag, policy)
        }
    }

    /// [`Comm::allgather`] over the reliable layer (gather to rank 0, then
    /// broadcast) — the hybrid Jacobi's exchange under a lossy net.
    ///
    /// # Errors
    ///
    /// See [`Comm::gather_resilient`].
    pub fn allgather_resilient(
        &self,
        data: Vec<f64>,
        policy: &RetryPolicy,
    ) -> Result<Vec<f64>, MpiError> {
        let flat = match self.gather_resilient(0, data, policy)? {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast_resilient(0, flat, policy)
    }

    /// `MPI_Allreduce(MPI_MAX)` over the reliable layer.
    ///
    /// # Errors
    ///
    /// See [`Comm::gather_resilient`].
    pub fn allreduce_max_resilient(
        &self,
        value: f64,
        policy: &RetryPolicy,
    ) -> Result<f64, MpiError> {
        let parts = self.gather_resilient(0, vec![value], policy)?;
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        Ok(self.bcast_resilient(0, vec![max], policy)?[0])
    }

    /// `MPI_Allreduce(MPI_SUM)` over the reliable layer.
    ///
    /// # Errors
    ///
    /// See [`Comm::gather_resilient`].
    pub fn allreduce_sum_resilient(
        &self,
        value: f64,
        policy: &RetryPolicy,
    ) -> Result<f64, MpiError> {
        let parts = self.gather_resilient(0, vec![value], policy)?;
        let sum = parts.map(|p| p.iter().map(|v| v[0]).sum()).unwrap_or(0.0);
        Ok(self.bcast_resilient(0, vec![sum], policy)?[0])
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// `MPI_Bcast`: returns the root's data on every rank.
    pub fn bcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, data.clone())
                        .expect("destination rank has exited");
                }
            }
            data
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// [`Comm::bcast`] with a deadline applied to every internal receive.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when the root's
    /// message never arrives (non-roots) or a destination endpoint is gone.
    pub fn bcast_timeout(
        &self,
        root: usize,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        self.bcast_deadline(root, data, Instant::now() + timeout)
    }

    fn bcast_deadline(
        &self,
        root: usize,
        data: Vec<f64>,
        deadline: Instant,
    ) -> Result<Vec<f64>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, data.clone())?;
                }
            }
            Ok(data)
        } else {
            self.recv_raw_deadline(root, tag, deadline)
        }
    }

    /// `MPI_Gather`: root receives every rank's contribution (in rank
    /// order); non-roots receive `None`.
    pub fn gather(&self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw(src, tag);
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, data)
                .expect("destination rank has exited");
            None
        }
    }

    /// [`Comm::gather`] with a deadline applied to every internal receive.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when any
    /// contribution fails to arrive at the root in time.
    pub fn gather_timeout(
        &self,
        root: usize,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        self.gather_deadline(root, data, Instant::now() + timeout)
    }

    fn gather_deadline(
        &self,
        root: usize,
        data: Vec<f64>,
        deadline: Instant,
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw_deadline(src, tag, deadline)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send_raw(root, tag, data)?;
            Ok(None)
        }
    }

    /// `MPI_Allgather`: every rank receives every contribution, in rank
    /// order, concatenated (the jacobi exchange in the paper uses this to
    /// reassemble the solution vector).
    pub fn allgather(&self, data: Vec<f64>) -> Vec<f64> {
        let gathered = self.gather(0, data);
        let flat = match gathered {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast(0, flat)
    }

    /// [`Comm::allgather`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when any rank's
    /// contribution is lost — every healthy rank returns the error within
    /// the deadline instead of hanging.
    pub fn allgather_timeout(
        &self,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        let deadline = Instant::now() + timeout;
        let flat = match self.gather_deadline(0, data, deadline)? {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast_deadline(0, flat, deadline)
    }

    /// [`Comm::allreduce_max`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// See [`Comm::allgather_timeout`].
    pub fn allreduce_max_timeout(&self, value: f64, timeout: Duration) -> Result<f64, MpiError> {
        let deadline = Instant::now() + timeout;
        let parts = self.gather_deadline(0, vec![value], deadline)?;
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        Ok(self.bcast_deadline(0, vec![max], deadline)?[0])
    }

    /// [`Comm::allreduce_sum`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// See [`Comm::allgather_timeout`].
    pub fn allreduce_sum_timeout(&self, value: f64, timeout: Duration) -> Result<f64, MpiError> {
        let deadline = Instant::now() + timeout;
        let parts = self.gather_deadline(0, vec![value], deadline)?;
        let sum = parts.map(|p| p.iter().map(|v| v[0]).sum()).unwrap_or(0.0);
        Ok(self.bcast_deadline(0, vec![sum], deadline)?[0])
    }

    /// `MPI_Scatter`: root splits `parts` (one entry per rank); each rank
    /// receives its part.
    ///
    /// # Panics
    ///
    /// Panics on the root if `parts.len() != size`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size, "scatter needs one part per rank");
            let mut own = Vec::new();
            for (dest, part) in parts.into_iter().enumerate() {
                if dest == root {
                    own = part;
                } else {
                    self.send_raw(dest, tag, part)
                        .expect("destination rank has exited");
                }
            }
            own
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// `MPI_Reduce(MPI_SUM)` on a scalar; root gets the sum.
    pub fn reduce_sum(&self, root: usize, value: f64) -> Option<f64> {
        self.gather(root, vec![value])
            .map(|parts| parts.iter().map(|p| p[0]).sum())
    }

    /// `MPI_Allreduce(MPI_SUM)` on a scalar.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let sum = self.reduce_sum(0, value);
        self.bcast(0, vec![sum.unwrap_or(0.0)])[0]
    }

    /// `MPI_Allreduce(MPI_MAX)` on a scalar (the jacobi convergence check).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let parts = self.gather(0, vec![value]);
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        self.bcast(0, vec![max])[0]
    }

    /// Element-wise `MPI_Allreduce(MPI_SUM)` on equal-length vectors.
    pub fn allreduce_sum_vec(&self, value: Vec<f64>) -> Vec<f64> {
        let n = value.len();
        let parts = self.gather(0, value);
        let combined = parts.map(|parts| {
            let mut acc = vec![0.0; n];
            for part in parts {
                for (a, v) in acc.iter_mut().zip(part) {
                    *a += v;
                }
            }
            acc
        });
        self.bcast(0, combined.unwrap_or_default())
    }
}
