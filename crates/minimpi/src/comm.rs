//! Communicators: point-to-point messaging and collectives.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::error::MpiError;
use crate::netmodel::NetModel;

/// A message in flight: (source rank, tag, payload).
type Packet = (usize, u64, Vec<f64>);

/// Tag space reserved for collectives (user tags must stay below this).
const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// A communicator handle owned by one rank.
///
/// Not `Sync`: each rank keeps its own `Comm`, like an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    pending: RefCell<Vec<Packet>>,
    barrier: Arc<std::sync::Barrier>,
    net: Arc<NetModel>,
    collective_seq: RefCell<u64>,
    /// Fault injection: a silenced rank drops every outgoing message,
    /// emulating a crashed or partitioned process.
    silenced: Cell<bool>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Packet>>,
        receiver: Receiver<Packet>,
        barrier: Arc<std::sync::Barrier>,
        net: Arc<NetModel>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            receiver,
            pending: RefCell::new(Vec::new()),
            barrier,
            net,
            collective_seq: RefCell::new(0),
            silenced: Cell::new(false),
        }
    }

    /// This rank's index (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network model in effect.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Blocking send (`MPI_Send`). User tags must be `< 2^48`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or the world has been torn down.
    pub fn send(&self, dest: usize, tag: u64, data: Vec<f64>) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.send_raw(dest, tag, data)
            .expect("destination rank has exited");
    }

    fn send_raw(&self, dest: usize, tag: u64, data: Vec<f64>) -> Result<(), MpiError> {
        if self.silenced.get() {
            return Ok(());
        }
        self.net.charge(self.rank, dest, data.len() * 8);
        self.senders[dest]
            .send((self.rank, tag, data))
            .map_err(|_| MpiError::Disconnected { peer: dest, tag })
    }

    /// Fault injection: silence this rank. Every later outgoing message is
    /// dropped, so peers blocked in the `_timeout` receive/collective
    /// variants observe [`MpiError::Timeout`] instead of hanging forever
    /// (the blocking variants would hang, exactly like real MPI).
    pub fn inject_failure(&self) {
        self.silenced.set(true);
    }

    /// Whether [`Comm::inject_failure`] has silenced this rank.
    pub fn is_silenced(&self) -> bool {
        self.silenced.get()
    }

    /// Blocking receive (`MPI_Recv`) matching source and tag.
    ///
    /// # Panics
    ///
    /// Panics if the world has been torn down before a match arrives.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.recv_raw(src, tag)
    }

    fn recv_raw(&self, src: usize, tag: u64) -> Vec<f64> {
        // Check messages that arrived earlier but did not match then.
        if let Some(data) = self.take_pending(src, tag) {
            return data;
        }
        loop {
            let packet = self.receiver.recv().expect("world torn down during recv");
            if packet.0 == src && packet.1 == tag {
                return packet.2;
            }
            self.pending.borrow_mut().push(packet);
        }
    }

    fn take_pending(&self, src: usize, tag: u64) -> Option<Vec<f64>> {
        let mut pending = self.pending.borrow_mut();
        let pos = pending
            .iter()
            .position(|(s, t, _)| *s == src && *t == tag)?;
        Some(pending.remove(pos).2)
    }

    /// Blocking receive with a deadline. Returns [`MpiError::Timeout`] if no
    /// matching message arrives in time; non-matching messages received
    /// while waiting are buffered as usual.
    pub fn recv_timeout(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag too large (reserved for collectives)"
        );
        self.recv_raw_deadline(src, tag, Instant::now() + timeout)
    }

    fn recv_raw_deadline(
        &self,
        src: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<f64>, MpiError> {
        if let Some(data) = self.take_pending(src, tag) {
            return Ok(data);
        }
        let start = Instant::now();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(MpiError::Timeout {
                    peer: src,
                    tag,
                    waited: start.elapsed(),
                });
            }
            match self.receiver.recv_timeout(remaining) {
                Ok(packet) => {
                    if packet.0 == src && packet.1 == tag {
                        return Ok(packet.2);
                    }
                    self.pending.borrow_mut().push(packet);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MpiError::Timeout {
                        peer: src,
                        tag,
                        waited: start.elapsed(),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::Disconnected { peer: src, tag })
                }
            }
        }
    }

    fn next_collective_tag(&self) -> u64 {
        let mut seq = self.collective_seq.borrow_mut();
        *seq += 1;
        COLLECTIVE_TAG_BASE + *seq
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// `MPI_Bcast`: returns the root's data on every rank.
    pub fn bcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, data.clone())
                        .expect("destination rank has exited");
                }
            }
            data
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// [`Comm::bcast`] with a deadline applied to every internal receive.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when the root's
    /// message never arrives (non-roots) or a destination endpoint is gone.
    pub fn bcast_timeout(
        &self,
        root: usize,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        self.bcast_deadline(root, data, Instant::now() + timeout)
    }

    fn bcast_deadline(
        &self,
        root: usize,
        data: Vec<f64>,
        deadline: Instant,
    ) -> Result<Vec<f64>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, data.clone())?;
                }
            }
            Ok(data)
        } else {
            self.recv_raw_deadline(root, tag, deadline)
        }
    }

    /// `MPI_Gather`: root receives every rank's contribution (in rank
    /// order); non-roots receive `None`.
    pub fn gather(&self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw(src, tag);
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, data)
                .expect("destination rank has exited");
            None
        }
    }

    /// [`Comm::gather`] with a deadline applied to every internal receive.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when any
    /// contribution fails to arrive at the root in time.
    pub fn gather_timeout(
        &self,
        root: usize,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        self.gather_deadline(root, data, Instant::now() + timeout)
    }

    fn gather_deadline(
        &self,
        root: usize,
        data: Vec<f64>,
        deadline: Instant,
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw_deadline(src, tag, deadline)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send_raw(root, tag, data)?;
            Ok(None)
        }
    }

    /// `MPI_Allgather`: every rank receives every contribution, in rank
    /// order, concatenated (the jacobi exchange in the paper uses this to
    /// reassemble the solution vector).
    pub fn allgather(&self, data: Vec<f64>) -> Vec<f64> {
        let gathered = self.gather(0, data);
        let flat = match gathered {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast(0, flat)
    }

    /// [`Comm::allgather`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// [`MpiError::Timeout`]/[`MpiError::Disconnected`] when any rank's
    /// contribution is lost — every healthy rank returns the error within
    /// the deadline instead of hanging.
    pub fn allgather_timeout(
        &self,
        data: Vec<f64>,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiError> {
        let deadline = Instant::now() + timeout;
        let flat = match self.gather_deadline(0, data, deadline)? {
            Some(parts) => parts.concat(),
            None => Vec::new(),
        };
        self.bcast_deadline(0, flat, deadline)
    }

    /// [`Comm::allreduce_max`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// See [`Comm::allgather_timeout`].
    pub fn allreduce_max_timeout(&self, value: f64, timeout: Duration) -> Result<f64, MpiError> {
        let deadline = Instant::now() + timeout;
        let parts = self.gather_deadline(0, vec![value], deadline)?;
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        Ok(self.bcast_deadline(0, vec![max], deadline)?[0])
    }

    /// [`Comm::allreduce_sum`] with a deadline over the whole exchange.
    ///
    /// # Errors
    ///
    /// See [`Comm::allgather_timeout`].
    pub fn allreduce_sum_timeout(&self, value: f64, timeout: Duration) -> Result<f64, MpiError> {
        let deadline = Instant::now() + timeout;
        let parts = self.gather_deadline(0, vec![value], deadline)?;
        let sum = parts.map(|p| p.iter().map(|v| v[0]).sum()).unwrap_or(0.0);
        Ok(self.bcast_deadline(0, vec![sum], deadline)?[0])
    }

    /// `MPI_Scatter`: root splits `parts` (one entry per rank); each rank
    /// receives its part.
    ///
    /// # Panics
    ///
    /// Panics on the root if `parts.len() != size`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size, "scatter needs one part per rank");
            let mut own = Vec::new();
            for (dest, part) in parts.into_iter().enumerate() {
                if dest == root {
                    own = part;
                } else {
                    self.send_raw(dest, tag, part)
                        .expect("destination rank has exited");
                }
            }
            own
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// `MPI_Reduce(MPI_SUM)` on a scalar; root gets the sum.
    pub fn reduce_sum(&self, root: usize, value: f64) -> Option<f64> {
        self.gather(root, vec![value])
            .map(|parts| parts.iter().map(|p| p[0]).sum())
    }

    /// `MPI_Allreduce(MPI_SUM)` on a scalar.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let sum = self.reduce_sum(0, value);
        self.bcast(0, vec![sum.unwrap_or(0.0)])[0]
    }

    /// `MPI_Allreduce(MPI_MAX)` on a scalar (the jacobi convergence check).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let parts = self.gather(0, vec![value]);
        let max = parts
            .map(|p| p.iter().map(|v| v[0]).fold(f64::NEG_INFINITY, f64::max))
            .unwrap_or(f64::NEG_INFINITY);
        self.bcast(0, vec![max])[0]
    }

    /// Element-wise `MPI_Allreduce(MPI_SUM)` on equal-length vectors.
    pub fn allreduce_sum_vec(&self, value: Vec<f64>) -> Vec<f64> {
        let n = value.len();
        let parts = self.gather(0, value);
        let combined = parts.map(|parts| {
            let mut acc = vec![0.0; n];
            for part in parts {
                for (a, v) in acc.iter_mut().zip(part) {
                    *a += v;
                }
            }
            acc
        });
        self.bcast(0, combined.unwrap_or_default())
    }
}
