#!/usr/bin/env bash
# Documentation drift gate (run by scripts/ci.sh).
#
# Two invariants, both enforced by grepping the code rather than a manually
# maintained list, so a new knob or counter cannot land undocumented:
#
#   1. every OMP_*/OMP4RS_*/MINIMPI_* environment variable the workspace
#      reads appears in docs/ENVIRONMENT.md;
#   2. every omp4rs.*/minipy.* counter the workspace publishes appears in
#      docs/OBSERVABILITY.md (the dynamic minipy.vm.fallback.<reason>
#      family is checked by its literal prefix).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. environment variables ---------------------------------------------
# Readers use std::env::var / the icv.rs helpers env_usize / env_bool; the
# variable name is always a string literal right after the open paren.
env_vars=$(grep -rhoE '(var|env_usize|env_bool)\(\s*"(OMP4RS|OMP|MINIMPI)_[A-Z0-9_]+"' \
        crates/ --include='*.rs' \
    | grep -oE '"(OMP4RS|OMP|MINIMPI)_[A-Z0-9_]+"' | tr -d '"' | sort -u)

for v in $env_vars; do
    if ! grep -q "$v" docs/ENVIRONMENT.md; then
        echo "check_docs: env var $v is read by the code but missing from docs/ENVIRONMENT.md" >&2
        fail=1
    fi
done

# --- 2. counters -----------------------------------------------------------
counters=$(grep -rhoE '"(omp4rs|minipy)\.[a-z_]+\.[a-z_.]+"' \
        crates/ --include='*.rs' | tr -d '"' | sort -u)

for c in $counters; do
    # minipy.vm.fallback. is a dynamic per-reason family; the prefix itself
    # must be documented, individual reasons need not be.
    if ! grep -qF "$c" docs/OBSERVABILITY.md; then
        echo "check_docs: counter $c is published by the code but missing from docs/OBSERVABILITY.md" >&2
        fail=1
    fi
done

count_env=$(echo "$env_vars" | wc -w)
count_ctr=$(echo "$counters" | wc -w)
if [ "$count_env" -lt 10 ] || [ "$count_ctr" -lt 10 ]; then
    # The greps returning almost nothing means the extraction patterns broke,
    # not that the code stopped reading the environment.
    echo "check_docs: extraction looks broken (env=$count_env counters=$count_ctr)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: OK ($count_env env vars, $count_ctr counters all documented)"
