#!/usr/bin/env bash
# Local CI: everything a PR must pass, in the order it usually fails.
#
#   ./scripts/ci.sh            # full gate
#   SKIP_SLOW=1 ./scripts/ci.sh  # skip the release build (debug test run only)
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

if [[ -z "${SKIP_SLOW:-}" ]]; then
    run cargo build --release
fi
run cargo test -q
run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo
echo "CI green."
