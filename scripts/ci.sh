#!/usr/bin/env bash
# Local CI: everything a PR must pass, in the order it usually fails.
#
#   ./scripts/ci.sh            # full gate
#   SKIP_SLOW=1 ./scripts/ci.sh  # skip the release build (debug test run only)
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

if [[ -z "${SKIP_SLOW:-}" ]]; then
    run cargo build --release
fi
run cargo test -q
# Bytecode-VM equivalence: both differential suites named explicitly so a
# test-filter or package-list change can never silently drop them, and under
# both quickening tiers — `off` pins the tier-1 baseline, `on` forces the
# quickened dispatch (specialized opcodes, inline caches, unboxed registers,
# fused range loops) through the same semantic oracle.
for quicken in off on; do
    run env OMP4RS_MINIPY_QUICKEN="$quicken" cargo test -q -p minipy --test vm_differential
    run env OMP4RS_MINIPY_QUICKEN="$quicken" cargo test -q -p omp4rs-apps --test vm_differential
done
# Task-dependence runtime: depgraph ordering (chain/diamond/WAR-WAW),
# child-scoped taskwait, observable priority, taskgroup cancellation and
# deadlines, the dep-release fault site, and the seeded chaos accounting
# invariant (deferred == released) — named explicitly for the same reason.
run cargo test -q -p omp4rs --test task_dependences
# Shard-geometry matrix: the pool lifecycle invariants (panic poisons the
# region not the pool, cancellation, pool-off bypass, hot-team reuse) must
# hold under every shard count, and the single-shard legacy-shape test only
# runs in a SHARDS=1 process (shard count freezes at first dispatch, so each
# geometry needs its own process).
for shards in 1 2 4 8; do
    run env OMP4RS_POOL_SHARDS="$shards" cargo test -q -p omp4rs --test pool_lifecycle
done
run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Documentation drift: every env var read and counter published must be
# documented (docs/ENVIRONMENT.md, docs/OBSERVABILITY.md).
run ./scripts/check_docs.sh

if [[ -z "${SKIP_SLOW:-}" ]]; then
    # Profiled smoke run: the walkthrough example must produce valid traces
    # (it validates them itself and panics otherwise).
    run cargo run --release --example profiling
    # Profiler overhead contract: a disabled profiler records zero events,
    # an enabled one produces a Chrome trace that passes the validator, the
    # lossy overflow policies report their drops (stats + trace footer), and
    # the block policy loses nothing.
    run cargo run --release -p omp4rs-bench --bin overhead -- --check
    # Construct-overhead contract: every syncbench cell (parallel, barrier,
    # reduction, single, task x backends x wait policies) completes and
    # reports a finite overhead, and fork/join *scales* — the 8-thread
    # parallel cost floor must stay within --scale-limit multiples of the
    # 1-thread cost (catches serialized dispatch / lost early-leave).
    run cargo run --release -p omp4rs-bench --bin syncbench -- --check --trials 2
    # Resilience contract: a short seeded chaos soak (injected worker panic
    # + injected stall + minimpi rank failures, simultaneously) must finish
    # with zero hangs, zero cascading panics, and exact degradation counts.
    run cargo run --release -p omp4rs-bench --bin soak -- --check
    # Task-dependence figure smoke: all three DAG apps in all four modes at a
    # small scale; the bin itself brackets the omp4rs.task.dep.* counters, so
    # a stranded successor (deferred != released) shows up in its output.
    run cargo run --release -p omp4rs-bench --bin figure_tasks -- --scale 0.05
fi

echo
echo "CI green."
