#!/usr/bin/env bash
# Machine-readable benchmark baseline: run the paper's pi benchmark across
# execution modes (and the minipy bytecode-VM tri-state for interpreted
# modes) and write per-mode medians +- sigma to BENCH_pi.json.
#
#   ./scripts/bench.sh                 # defaults: 4 threads, 5 repeats
#   THREADS=8 REPEAT=9 ./scripts/bench.sh
#
# BENCH_pi.json is tracked (see .gitignore): committing it alongside a perf
# PR records the before/after baseline the numbers in EXPERIMENTS.md quote.
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS=${THREADS:-4}
REPEAT=${REPEAT:-5}
SCALE=${SCALE:-1.0}
OUT=${OUT:-BENCH_pi.json}

cargo build --release -p omp4rs-bench --bin main
BIN=target/release/main

# mode-id:minipy-vm rows. Compiled never enters the interpreter, so the VM
# setting is irrelevant there; one row records it as "auto" for reference.
ROWS=(
    "0:off" "0:auto" "0:on"   # Pure: tree-walker vs bytecode VM
    "1:off" "1:auto" "1:on"   # Hybrid: same contrast, atomic runtime
    "2:auto"                  # Compiled: native closures (VM-independent)
)

runs=""
for row in "${ROWS[@]}"; do
    mode="${row%%:*}"
    vm="${row##*:}"
    echo "==> mode=$mode OMP4RS_MINIPY_VM=$vm threads=$THREADS repeat=$REPEAT" >&2
    line=$(OMP4RS_MINIPY_VM="$vm" "$BIN" "$mode" pi "$THREADS" "$SCALE" --json --repeat "$REPEAT")
    echo "    $line" >&2
    runs+="${runs:+,
  }$line"
done

cat > "$OUT" <<EOF
{
 "benchmark": "pi",
 "threads": $THREADS,
 "repeat": $REPEAT,
 "scale": $SCALE,
 "runs": [
  $runs
 ]
}
EOF
python3 -c "import json,sys; json.load(open('$OUT'))" 2>/dev/null \
    || { echo "$OUT is not valid JSON" >&2; exit 1; }
echo "wrote $OUT"
